"""SERVER — HTTP transport benchmark (direct vs coalesced vs cached).

Exercises the full asyncio transport end to end over real sockets and
reports requests/sec and client-observed latency percentiles for three
regimes:

1. **direct** — coalescing disabled (``coalesce_window=0``): every
   ``POST /v1/insights`` dispatches its own ``Workspace.handle``;
2. **coalesced** — concurrent singles micro-batch into
   ``Workspace.handle_many`` calls through the request coalescer;
3. **cached** — the same traffic repeated warm: the transport ceiling,
   every answer from the LRU result cache;
4. **saturated coalesce** — the coalesced workload against a tiny
   ``max_in_flight``: with coalescer-aware admission the riders of an
   open batch park without holding in-flight slots (the dispatched
   batch takes one), so the full client fan-in proceeds batched where
   per-request slot accounting would have stalled arrivals behind the
   window;
5. **tracing overhead** — the cached workload against a traced and an
   untraced (``ObsConfig(enabled=False)``) server running side by side,
   measured in alternating passes and repeated with creation order
   swapped (two in-process servers differ by a few percent from
   creation order alone; the swap cancels it): the throughput delta is
   the price of the always-on request tracing, budgeted at <3% (a
   breach warns rather than fails — single-core CI boxes make small
   deltas noisy);
6. **accounting overhead** — the same order-balanced pairing with
   resource accounting on vs off (``ObsConfig(resources_enabled=
   False)``): the price of per-request cost attribution and the
   incremental memory ledger on the cached hot path, under the same
   <3% warn-only budget.

Alongside the human-readable tables it emits ``BENCH_server.json`` (in
the working directory, overridable via ``BENCH_SERVER_JSON``) so CI can
archive the transport's perf trajectory across PRs.

Designed as a CI smoke benchmark: seconds on a laptop, and it exits
non-zero if the transport misbehaves (failed requests, coalescing not
engaging under concurrent load, metrics inconsistent with the traffic,
admission rejecting an unloaded workload).  Relative speedups print as
information only — single-core CI machines make them noisy.

Run with::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.data.datasets import make_numeric_table  # noqa: E402
from repro.obs import ObsConfig  # noqa: E402
from repro.server import ReproClient, ServerConfig, serving  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402
from bench_util import percentile  # noqa: E402

N_ROWS = 10_000
N_COLUMNS = 24
CLASSES = ("dispersion", "skew", "heavy_tails", "outliers", "normality")
N_THREADS = 8
N_REQUESTS = 24
ROUNDS = 3
COALESCE_WINDOW = 0.004
SATURATED_IN_FLIGHT = 2  # far fewer slots than concurrent clients
TRACING_OVERHEAD_BUDGET_PCT = 3.0
ACCOUNTING_OVERHEAD_BUDGET_PCT = 3.0


def _make_workspace(obs: ObsConfig | None = None) -> Workspace:
    table = make_numeric_table(n_rows=N_ROWS, n_columns=N_COLUMNS,
                               block_correlation=0.6, seed=7)
    workspace = Workspace(cache_size=256, obs=obs)
    workspace.register("bench", lambda: table)
    workspace.engine("bench")   # build outside the timed region
    return workspace


def _request_mix() -> list[InsightRequest]:
    requests = []
    for i in range(N_REQUESTS):
        classes = CLASSES[: 1 + (i % len(CLASSES))]
        requests.append(
            InsightRequest(dataset="bench", insight_classes=classes,
                           top_k=3 + (i % 4))
        )
    return requests


def _run_workload(address, requests, invalidate=None):
    """Fire ``requests`` from N_THREADS concurrent clients; best of ROUNDS."""
    best = None
    for _ in range(ROUNDS):
        if invalidate is not None:
            invalidate()
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(N_THREADS)
        work = list(enumerate(requests))

        def worker(thread_index: int) -> None:
            mine = work[thread_index::N_THREADS]
            with ReproClient(*address, timeout=120) as client:
                barrier.wait()
                for index, request in mine:
                    started = time.perf_counter()
                    try:
                        response = client.insights(request)
                    except Exception as exc:  # noqa: BLE001 - reported below
                        with lock:
                            failures.append(f"request {index}: {exc}")
                        continue
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
                    if response.dataset != "bench":
                        with lock:
                            failures.append(f"request {index}: bad dataset")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(N_THREADS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if failures:
            return {"failures": failures}
        stats = {
            "seconds": elapsed,
            "ops_sec": len(requests) / elapsed,
            "p50_seconds": percentile(latencies, 0.50),
            "p95_seconds": percentile(latencies, 0.95),
            "failures": [],
        }
        if best is None or stats["seconds"] < best["seconds"]:
            best = stats
    return best


def _overhead_pair(label_on, label_off, make_on, make_off, order_names,
                   requests, metrics_by_regime):
    """Order-balanced matched-pair overhead measurement.

    A sequential matched pair mismeasures small deltas badly: two
    identically configured in-process servers differ by several percent
    on the cached path purely by *creation order* (the second-created
    server is consistently faster — allocator and cache locality), and
    machine-speed drift between the two measurement windows adds more.
    So both servers run live at once and are measured in alternating
    passes (drift hits both sides equally), and the pairing runs twice
    with creation order swapped — the order bias cancels in the mean of
    the two estimates.  The measured passes hit only result-cache
    lookups, the path where per-request bookkeeping is the largest
    relative cost.

    Returns ``(pair_results, per_order_pct)`` where ``pair_results``
    maps each label to its best run and ``per_order_pct`` maps each of
    ``order_names`` to that ordering's overhead estimate in percent.
    Final /v1/metrics documents land in ``metrics_by_regime``.
    """
    pair: dict[str, dict] = {}
    per_order_pct: dict[str, float] = {}
    for on_first in (True, False):
        if on_first:
            on_ws = make_on()
            off_ws = make_off()
        else:
            off_ws = make_off()
            on_ws = make_on()
        pair_config = dict(coalesce_window=COALESCE_WINDOW,
                           coalesce_max_batch=N_THREADS,
                           max_in_flight=N_THREADS, queue_limit=256)
        with serving(on_ws, ServerConfig(port=0, **pair_config)) as on_handle, \
                serving(off_ws, ServerConfig(port=0, **pair_config)) as off_handle:
            handles = {label_on: on_handle, label_off: off_handle}
            for handle in handles.values():
                _run_workload(handle.address, requests)  # warm the cache
            order_best: dict[str, dict] = {}
            for index in range(2):
                labels = list(handles)
                if index % 2:
                    labels.reverse()
                for label in labels:
                    run = _run_workload(handles[label].address, requests)
                    held = order_best.get(label)
                    if (run.get("failures") or held is None
                            or run["seconds"] < held["seconds"]):
                        order_best[label] = run
                    if run.get("failures"):
                        break
            for label, run in order_best.items():
                held = pair.get(label)
                if (run.get("failures") or held is None
                        or run["seconds"] < held["seconds"]):
                    pair[label] = run
            for label, handle in handles.items():
                with ReproClient(*handle.address) as client:
                    metrics_by_regime[label] = client.metrics()
        on_run = order_best[label_on]
        off_run = order_best[label_off]
        if not (on_run.get("failures") or off_run.get("failures")):
            order = order_names[0] if on_first else order_names[1]
            per_order_pct[order] = (
                (on_run["seconds"] - off_run["seconds"])
                / off_run["seconds"] * 100.0)
    return pair, per_order_pct


def main() -> int:
    ok = True
    requests = _request_mix()
    results: dict[str, dict] = {}
    metrics_by_regime: dict[str, dict] = {}

    # -- regime 1: direct (no coalescing) ------------------------------------
    workspace = _make_workspace()
    config = ServerConfig(port=0, coalesce_window=0.0,
                          max_in_flight=N_THREADS, queue_limit=256)
    with serving(workspace, config) as handle:
        results["direct"] = _run_workload(
            handle.address, requests,
            invalidate=lambda: workspace.invalidate("bench"),
        )
        with ReproClient(*handle.address) as client:
            metrics_by_regime["direct"] = client.metrics()

    # -- regime 2: coalesced -------------------------------------------------
    workspace = _make_workspace()
    config = ServerConfig(port=0, coalesce_window=COALESCE_WINDOW,
                          coalesce_max_batch=N_THREADS,
                          max_in_flight=N_THREADS, queue_limit=256)
    with serving(workspace, config) as handle:
        results["coalesced"] = _run_workload(
            handle.address, requests,
            invalidate=lambda: workspace.invalidate("bench"),
        )
        # -- regime 3: cached (same server, nothing invalidated) -------------
        results["cached"] = _run_workload(handle.address, requests)
        with ReproClient(*handle.address) as client:
            metrics_by_regime["coalesced"] = client.metrics()

    # -- regime 4: saturated coalesce ----------------------------------------
    workspace = _make_workspace()
    config = ServerConfig(port=0, coalesce_window=COALESCE_WINDOW,
                          coalesce_max_batch=N_THREADS,
                          max_in_flight=SATURATED_IN_FLIGHT, queue_limit=256)
    with serving(workspace, config) as handle:
        results["saturated_coalesce"] = _run_workload(
            handle.address, requests,
            invalidate=lambda: workspace.invalidate("bench"),
        )
        with ReproClient(*handle.address) as client:
            metrics_by_regime["saturated"] = client.metrics()

    # -- regime 5: tracing overhead on the cached hot path --------------------
    overhead_pair, per_order_pct = _overhead_pair(
        "cached_traced", "cached_untraced",
        _make_workspace,
        lambda: _make_workspace(obs=ObsConfig(enabled=False)),
        ("traced_first", "untraced_first"),
        requests, metrics_by_regime,
    )
    results.update(overhead_pair)

    # -- regime 6: accounting overhead on the cached hot path -----------------
    # Same discipline, isolating the resource-accounting layer alone:
    # both servers trace, only one bills (cost counters, CPU windows,
    # memory ledger updates).
    accounting_pair, accounting_order_pct = _overhead_pair(
        "cached_accounted", "cached_unaccounted",
        _make_workspace,
        lambda: _make_workspace(obs=ObsConfig(resources_enabled=False)),
        ("accounted_first", "unaccounted_first"),
        requests, metrics_by_regime,
    )
    results.update(accounting_pair)

    for regime, stats in results.items():
        if stats.get("failures"):
            print(f"FAIL: {regime} workload had failures: "
                  f"{stats['failures'][:3]}", file=sys.stderr)
            ok = False
    if not ok:
        return 1

    # -- smoke checks against the metrics surface ----------------------------
    direct_coalesce = metrics_by_regime["direct"]["server"]["coalesce"]
    if direct_coalesce["batches"] != 0:
        print("FAIL: coalescing engaged with a zero window", file=sys.stderr)
        ok = False
    coalesced_server = metrics_by_regime["coalesced"]["server"]
    # The coalescing server saw both the cold regime and the cached
    # regime, each ROUNDS full passes over the request mix.
    sent = len(requests) * ROUNDS * 2
    if coalesced_server["coalesce"]["coalesced_requests"] != sent:
        print(
            "FAIL: coalesced_requests "
            f"{coalesced_server['coalesce']['coalesced_requests']} != "
            f"{sent} singles sent",
            file=sys.stderr,
        )
        ok = False
    if coalesced_server["coalesce"]["max_batch_size"] < 2:
        print("FAIL: no multi-request batch formed under "
              f"{N_THREADS} concurrent clients", file=sys.stderr)
        ok = False
    admission = metrics_by_regime["coalesced"]["admission"]
    if admission["rejected_quota_total"] or admission["rejected_overload_total"]:
        print("FAIL: admission rejected requests in an unloaded benchmark",
              file=sys.stderr)
        ok = False
    saturated = metrics_by_regime["saturated"]["admission"]
    if saturated["rejected_quota_total"] or saturated["rejected_overload_total"]:
        print(
            "FAIL: saturated-coalesce run saw rejections — parked arrivals "
            "must not consume in-flight slots "
            f"(quota={saturated['rejected_quota_total']}, "
            f"overload={saturated['rejected_overload_total']})",
            file=sys.stderr,
        )
        ok = False
    if saturated["parked_total"] < len(requests) * ROUNDS:
        print(
            f"FAIL: parked_total {saturated['parked_total']} < "
            f"{len(requests) * ROUNDS} coalesced arrivals",
            file=sys.stderr,
        )
        ok = False
    if saturated["batches_dispatched_total"] < 1:
        print("FAIL: no batch passed through begin_batch accounting",
              file=sys.stderr)
        ok = False
    if saturated["peak_in_flight"] > SATURATED_IN_FLIGHT:
        print(
            f"FAIL: peak_in_flight {saturated['peak_in_flight']} exceeds "
            f"max_in_flight {SATURATED_IN_FLIGHT}",
            file=sys.stderr,
        )
        ok = False
    traced_obs = metrics_by_regime["cached_traced"]["obs"]["tracing"]
    untraced_obs = metrics_by_regime["cached_untraced"]["obs"]["tracing"]
    if not traced_obs["enabled"] or traced_obs["traces_recorded"] == 0:
        print("FAIL: default server did not record traces", file=sys.stderr)
        ok = False
    if untraced_obs["enabled"] or untraced_obs["traces_recorded"] != 0:
        print("FAIL: ObsConfig(enabled=False) server still traced",
              file=sys.stderr)
        ok = False
    accounted_res = metrics_by_regime["cached_accounted"]["resources"]
    unaccounted_res = metrics_by_regime["cached_unaccounted"]["resources"]
    if (not accounted_res["resources_enabled"]
            or accounted_res["costs"]["requests_total"] == 0):
        print("FAIL: default server recorded no request costs",
              file=sys.stderr)
        ok = False
    if (unaccounted_res["resources_enabled"]
            or unaccounted_res["costs"]["requests_total"] != 0):
        print("FAIL: ObsConfig(resources_enabled=False) server still billed",
              file=sys.stderr)
        ok = False

    # -- tracing overhead: warn past the budget, never fail -------------------
    traced = results["cached_traced"]
    untraced = results["cached_untraced"]
    overhead_pct = (sum(per_order_pct.values()) / len(per_order_pct)
                    if per_order_pct else 0.0)
    if overhead_pct > TRACING_OVERHEAD_BUDGET_PCT:
        print(
            f"WARN: tracing overhead {overhead_pct:+.1f}% on the cached "
            f"path exceeds the {TRACING_OVERHEAD_BUDGET_PCT:.0f}% budget "
            f"(per-order estimates {per_order_pct}) — rerun before "
            "trusting; single-core CI machines make this delta noisy",
            file=sys.stderr,
        )
    accounted = results["cached_accounted"]
    unaccounted = results["cached_unaccounted"]
    accounting_pct = (
        sum(accounting_order_pct.values()) / len(accounting_order_pct)
        if accounting_order_pct else 0.0)
    if accounting_pct > ACCOUNTING_OVERHEAD_BUDGET_PCT:
        print(
            f"WARN: accounting overhead {accounting_pct:+.1f}% on the "
            f"cached path exceeds the "
            f"{ACCOUNTING_OVERHEAD_BUDGET_PCT:.0f}% budget "
            f"(per-order estimates {accounting_order_pct}) — rerun before "
            "trusting; single-core CI machines make this delta noisy",
            file=sys.stderr,
        )

    # -- report ---------------------------------------------------------------
    rows = [
        {
            "regime": regime,
            "ops/sec": f"{stats['ops_sec']:.1f}",
            "p50": f"{stats['p50_seconds'] * 1000:.1f} ms",
            "p95": f"{stats['p95_seconds'] * 1000:.1f} ms",
        }
        for regime, stats in results.items()
    ]
    print()
    print(f"== SERVER: {N_REQUESTS} requests x {N_THREADS} client threads, "
          f"{N_ROWS} rows x {N_COLUMNS} cols ==")
    print(render_table(rows))
    print(
        f"coalesced batches: {coalesced_server['coalesce']['batches']} "
        f"(max size {coalesced_server['coalesce']['max_batch_size']})   "
        f"throughput direct -> coalesced: "
        f"{results['direct']['ops_sec']:.1f} -> "
        f"{results['coalesced']['ops_sec']:.1f} ops/sec   "
        f"cached ceiling: {results['cached']['ops_sec']:.1f} ops/sec"
    )
    print(
        f"saturated coalesce (max_in_flight={SATURATED_IN_FLIGHT}): "
        f"{results['saturated_coalesce']['ops_sec']:.1f} ops/sec, "
        f"parked_total {saturated['parked_total']}, "
        f"batches dispatched {saturated['batches_dispatched_total']}, "
        f"peak in-flight {saturated['peak_in_flight']}, 0 rejections"
    )
    print(
        f"tracing overhead (cached path): {overhead_pct:+.1f}% "
        "mean of order-balanced estimates "
        f"{ {k: round(v, 1) for k, v in per_order_pct.items()} } "
        f"(best traced {traced['ops_sec']:.1f} vs untraced "
        f"{untraced['ops_sec']:.1f} ops/sec, "
        f"budget {TRACING_OVERHEAD_BUDGET_PCT:.0f}%)"
    )
    print(
        f"accounting overhead (cached path): {accounting_pct:+.1f}% "
        "mean of order-balanced estimates "
        f"{ {k: round(v, 1) for k, v in accounting_order_pct.items()} } "
        f"(best accounted {accounted['ops_sec']:.1f} vs unaccounted "
        f"{unaccounted['ops_sec']:.1f} ops/sec, "
        f"budget {ACCOUNTING_OVERHEAD_BUDGET_PCT:.0f}%)"
    )

    payload = {
        "benchmark": "server_throughput",
        "workload": {
            "n_rows": N_ROWS,
            "n_columns": N_COLUMNS,
            "n_requests": N_REQUESTS,
            "n_threads": N_THREADS,
            "rounds": ROUNDS,
            "coalesce_window_seconds": COALESCE_WINDOW,
            "saturated_max_in_flight": SATURATED_IN_FLIGHT,
            "insight_classes": list(CLASSES),
        },
        "results": results,
        "coalesce": coalesced_server["coalesce"],
        "saturated_admission": saturated,
        "server_latency_histogram": coalesced_server["latency"],
        "tracing_overhead": {
            "budget_pct": TRACING_OVERHEAD_BUDGET_PCT,
            "overhead_pct": overhead_pct,
            "overhead_pct_by_order": per_order_pct,
            "within_budget": overhead_pct <= TRACING_OVERHEAD_BUDGET_PCT,
            "traced_ops_sec": traced["ops_sec"],
            "untraced_ops_sec": untraced["ops_sec"],
            "tracing": traced_obs,
        },
        "accounting_overhead": {
            "budget_pct": ACCOUNTING_OVERHEAD_BUDGET_PCT,
            "overhead_pct": accounting_pct,
            "overhead_pct_by_order": accounting_order_pct,
            "within_budget": accounting_pct <= ACCOUNTING_OVERHEAD_BUDGET_PCT,
            "accounted_ops_sec": accounted["ops_sec"],
            "unaccounted_ops_sec": unaccounted["ops_sec"],
            "costs": {
                "requests_total":
                    accounted_res["costs"]["requests_total"],
                "totals": accounted_res["costs"]["totals"],
            },
        },
        "ok": ok,
    }
    out_path = Path(os.environ.get("BENCH_SERVER_JSON", "BENCH_server.json"))
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
