"""FIG2 — Figure 2: the all-pairs correlation overview heat map.

Figure 2 shows the optional overview ("global") visualization of the
correlation insight class for the OECD dataset: a 24x24 heat map over the
abbreviated indicator names where the size and intensity of each circle
encode the strength of the pairwise correlation.  This benchmark regenerates
the heat map spec (exact and sketch-backed), checks its structure against the
figure, and times its construction.
"""

from __future__ import annotations

import numpy as np

from conftest import report
from repro.data.datasets import figure2_abbreviations
from repro.stats import correlation_matrix


def test_fig2_overview_structure(benchmark, oecd_engine):
    spec = benchmark.pedantic(
        oecd_engine.overview, args=("linear_relationship",),
        kwargs={"mode": "exact"}, rounds=1, iterations=1,
    )
    names = oecd_engine.table.numeric_names()
    d = len(names)

    # Figure 2 is a square grid over the 24 numeric indicators.
    assert d == 24
    assert spec.mark == "rect"
    assert spec.n_points() == d * d

    # The colour channel encodes the signed correlation on a [-1, 1] scale
    # and the size channel its magnitude, as in the figure.
    assert spec.encoding["color"]["field"] == "correlation"
    assert spec.encoding["color"]["scale"]["domain"] == [-1, 1]
    assert spec.encoding["size"]["field"] == "magnitude"

    # The cells agree with the exact correlation matrix.
    matrix, ordered = oecd_engine.table.numeric_matrix()
    exact = correlation_matrix(matrix)
    index = {name: i for i, name in enumerate(ordered)}
    for cell in spec.data[:200]:
        expected = exact[index[cell["row"]], index[cell["column"]]]
        assert cell["correlation"] == np.float64(expected)

    # Report the strongest off-diagonal cells using the Figure 2 abbreviations.
    abbreviations = figure2_abbreviations()
    cells = [c for c in spec.data if c["row"] != c["column"]]
    cells.sort(key=lambda c: -abs(c["correlation"]))
    rows = [
        {
            "pair": f"{abbreviations[c['row']]} x {abbreviations[c['column']]}",
            "correlation": c["correlation"],
        }
        for c in cells[:10:2]  # every pair appears twice (symmetric matrix)
    ]
    report("Figure 2 — strongest cells of the correlation overview", rows)


def test_fig2_sketch_overview_matches_exact(benchmark, oecd_engine):
    exact_spec = oecd_engine.overview("linear_relationship", mode="exact")
    sketch_spec = benchmark.pedantic(
        oecd_engine.overview, args=("linear_relationship",),
        kwargs={"mode": "approximate"}, rounds=1, iterations=1,
    )
    exact_cells = {(c["row"], c["column"]): c["correlation"] for c in exact_spec.data}
    sketch_cells = {(c["row"], c["column"]): c["correlation"] for c in sketch_spec.data}
    errors = [
        abs(exact_cells[key] - sketch_cells[key]) for key in exact_cells
    ]
    # 35-row columns give a noisy sketch; the overview still has to show the
    # same broad structure the analyst orients by.
    assert float(np.mean(errors)) < 0.25


def test_fig2_overview_latency(benchmark, oecd_engine):
    spec = benchmark(oecd_engine.overview, "linear_relationship")
    assert spec.n_points() == 24 * 24
