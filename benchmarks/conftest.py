"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment in DESIGN.md section 3 has a module here.  Benchmarks use
pytest-benchmark for timing and *also* print the rows that reproduce the
corresponding figure / claim (run with ``-s`` to see them inline); the
recorded numbers are summarised in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import Foresight
from repro.data.datasets import load_imdb, load_oecd, load_parkinson, make_numeric_table


def report(title: str, rows: list[dict]) -> None:
    """Print a reproduced table/figure in a uniform format."""
    from repro.viz.ascii import render_table

    print()
    print(f"== {title} ==")
    print(render_table(rows))


@pytest.fixture(scope="session")
def oecd_engine() -> Foresight:
    return Foresight(load_oecd())


@pytest.fixture(scope="session")
def parkinson_table():
    return load_parkinson()


@pytest.fixture(scope="session")
def imdb_table():
    return load_imdb()


@pytest.fixture(scope="session")
def interact_workload():
    """The 'interactive exploration' scale the paper targets (section 4.1):
    on the order of 100K data items and attributes numbering in the hundreds.
    Kept to 100k x 120 numeric columns so the whole harness stays laptop-scale."""
    return make_numeric_table(
        n_rows=100_000, n_columns=120, block_correlation=0.75, missing_rate=0.0, seed=11
    )


@pytest.fixture(scope="session")
def interact_engine(interact_workload) -> Foresight:
    return Foresight(interact_workload)
