"""ABL-K — ablation: accuracy / cost trade-off of the sketch width k.

DESIGN.md calls out the k = O(log² n) sizing rule as a design choice; this
ablation sweeps k and records estimate accuracy, top-k recall, construction
time and memory, validating that the suggested width sits on the knee of the
accuracy curve (doubling k beyond it buys little accuracy for twice the
cost).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import report
from repro.data.datasets import make_numeric_table
from repro.sketch.hyperplane import HyperplaneSketcher, suggest_width
from repro.stats.correlation import correlation_matrix

N_ROWS = 50_000
N_COLUMNS = 40
WIDTHS = [16, 64, 256, 1024, 2048]


def _workload():
    table = make_numeric_table(
        n_rows=N_ROWS, n_columns=N_COLUMNS, block_correlation=0.8, seed=13
    )
    matrix, names = table.numeric_matrix()
    return matrix, correlation_matrix(matrix)


def sweep_width(matrix: np.ndarray, exact: np.ndarray, width: int) -> dict[str, float]:
    start = time.perf_counter()
    sketcher = HyperplaneSketcher(n_rows=N_ROWS, width=width, seed=7)
    sketches = sketcher.sketch_matrix(matrix)
    construction = time.perf_counter() - start
    start = time.perf_counter()
    approx = sketcher.correlation_matrix(sketches)
    estimation = time.perf_counter() - start
    d = matrix.shape[1]
    pairs = [(i, j) for i in range(d) for j in range(i + 1, d)]
    exact_top = set(sorted(pairs, key=lambda p: -abs(exact[p]))[:30])
    sketch_top = set(sorted(pairs, key=lambda p: -abs(approx[p]))[:30])
    errors = np.abs(approx - exact)[np.triu_indices(d, 1)]
    return {
        "k": width,
        "mean |error|": float(errors.mean()),
        "max |error|": float(errors.max()),
        "top30 recall %": 100.0 * len(exact_top & sketch_top) / 30,
        "construction (s)": construction,
        "estimation (ms)": estimation * 1000,
        "memory (KiB)": sketcher.memory_bytes(d) / 1024,
    }


def test_width_ablation_accuracy_monotone(benchmark):
    matrix, exact = _workload()
    rows = benchmark.pedantic(
        lambda: [sweep_width(matrix, exact, width) for width in WIDTHS],
        rounds=1, iterations=1,
    )
    report(f"ABL-K — sketch width ablation (n = {N_ROWS}, |B| = {N_COLUMNS})", rows)

    errors = [row["mean |error|"] for row in rows]
    # Accuracy improves (error shrinks) as k grows ...
    assert errors[0] > errors[-1]
    assert all(earlier >= later * 0.8 for earlier, later in zip(errors, errors[1:]))
    # ... and the suggested width already achieves high recall.
    suggested = suggest_width(N_ROWS)
    at_suggested = sweep_width(matrix, exact, suggested)
    assert at_suggested["top30 recall %"] >= 80.0
    # Memory follows |B| * k exactly.
    for row in rows:
        assert row["memory (KiB)"] * 1024 == N_COLUMNS * row["k"] / 8


@pytest.mark.parametrize("width", [64, 1024])
def test_width_construction_benchmark(benchmark, width):
    matrix, _ = _workload()
    sketcher = HyperplaneSketcher(n_rows=N_ROWS, width=width, seed=8)
    sketches = benchmark.pedantic(sketcher.sketch_matrix, args=(matrix,), rounds=1, iterations=1)
    assert len(sketches) == N_COLUMNS
