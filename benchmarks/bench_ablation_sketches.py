"""ABL-EST — ablation: alternative sketch backends.

DESIGN.md lists two backend choices worth quantifying:

* heavy hitters: Misra–Gries vs Space-Saving vs Count-Min vs exact counting
  (accuracy of RelFreq(k, c) and of the recovered top-k set, plus time and
  memory);
* quantiles: Greenwald–Khanna rank error as a function of epsilon, against
  exact quantiles.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import report
from repro.data.datasets import make_zipf_categorical
from repro.sketch.countmin import CountMinSketch
from repro.sketch.frequent import MisraGriesSketch, SpaceSavingSketch, exact_counts
from repro.sketch.quantile import QuantileSketch
from repro.stats.frequency import relative_frequency_topk

N_ITEMS = 200_000
N_CATEGORIES = 2_000
TOP_K = 10


def _labels() -> list[str]:
    column = make_zipf_categorical(
        N_ITEMS, n_categories=N_CATEGORIES, exponent=1.3, seed=21
    )
    return column.valid_labels()


def _evaluate_heavy_hitter_backend(name: str, sketch, labels, truth) -> dict[str, float]:
    start = time.perf_counter()
    sketch.update_many(labels)
    build_seconds = time.perf_counter() - start
    true_top = [k for k, _ in sorted(truth.items(), key=lambda kv: -kv[1])[:TOP_K]]
    true_relfreq = relative_frequency_topk(labels, TOP_K)
    if isinstance(sketch, CountMinSketch):
        estimated_top = sorted(truth, key=lambda label: -sketch.estimate(label))[:TOP_K]
        estimated_relfreq = sum(sketch.estimate(label) for label in estimated_top) / len(labels)
    else:
        estimated_top = [k for k, _ in sketch.top_k(TOP_K)]
        estimated_relfreq = sketch.relative_frequency_topk(TOP_K)
    recall = len(set(true_top) & set(estimated_top)) / TOP_K
    return {
        "backend": name,
        "build (s)": build_seconds,
        "memory (KiB)": sketch.memory_bytes() / 1024,
        f"top{TOP_K} recall %": 100.0 * recall,
        "RelFreq error": abs(estimated_relfreq - true_relfreq),
    }


def test_heavy_hitter_backends(benchmark):
    labels = _labels()
    truth = exact_counts(labels)
    rows = benchmark.pedantic(
        lambda: [
            _evaluate_heavy_hitter_backend("misra-gries(256)", MisraGriesSketch(256), labels, truth),
            _evaluate_heavy_hitter_backend("space-saving(256)", SpaceSavingSketch(256), labels, truth),
            _evaluate_heavy_hitter_backend("count-min(1024x4)", CountMinSketch(1024, 4), labels, truth),
        ],
        rounds=1, iterations=1,
    )
    exact_start = time.perf_counter()
    exact_counts(labels)
    rows.append({
        "backend": "exact dict",
        "build (s)": time.perf_counter() - exact_start,
        "memory (KiB)": N_CATEGORIES * 64 / 1024,
        f"top{TOP_K} recall %": 100.0,
        "RelFreq error": 0.0,
    })
    report("ABL-EST — heavy-hitter backends on a Zipf(1.3) stream", rows)
    for row in rows[:3]:
        assert row[f"top{TOP_K} recall %"] >= 80.0
        assert row["RelFreq error"] < 0.08


@pytest.mark.parametrize("epsilon", [0.05, 0.01, 0.002])
def test_quantile_sketch_error_vs_epsilon(benchmark, epsilon):
    rng = np.random.default_rng(3)
    values = rng.lognormal(size=100_000)

    def build() -> QuantileSketch:
        built = QuantileSketch(epsilon=epsilon)
        built.update_array(values)
        return built

    sketch = benchmark.pedantic(build, rounds=1, iterations=1)
    ordered = np.sort(values)
    worst_rank_error = 0.0
    for q in np.linspace(0.05, 0.95, 19):
        estimate = sketch.quantile(float(q))
        rank = np.searchsorted(ordered, estimate, side="right")
        worst_rank_error = max(worst_rank_error, abs(rank - q * values.size) / values.size)
    report(
        f"ABL-EST — GK quantile sketch at epsilon={epsilon}",
        [{
            "epsilon": epsilon,
            "tuples stored": sketch.n_tuples,
            "memory (KiB)": sketch.memory_bytes() / 1024,
            "worst rank error": worst_rank_error,
        }],
    )
    assert worst_rank_error <= 2 * epsilon + 1e-3
    assert sketch.n_tuples < values.size / 10


def test_quantile_backend_benchmark(benchmark):
    rng = np.random.default_rng(4)
    values = rng.standard_normal(100_000)

    def build_and_query():
        sketch = QuantileSketch(epsilon=0.01)
        sketch.update_array(values)
        return sketch.five_number_summary()

    summary = benchmark(build_and_query)
    assert summary["q1"] <= summary["median"] <= summary["q3"]


def test_heavy_hitter_benchmark(benchmark):
    labels = _labels()

    def build():
        sketch = MisraGriesSketch(256)
        sketch.update_many(labels)
        return sketch

    sketch = benchmark.pedantic(build, rounds=1, iterations=1)
    assert sketch.count == len(labels)
