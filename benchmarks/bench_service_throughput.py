"""SERVE — serving-layer benchmark (cold vs cached, shared + parallel execution).

Exercises the Workspace/DTO serving path end to end and reports:

1. preprocessing time (engine build on first use of a lazily-loaded dataset),
   serial vs parallel per-column sketch building;
2. cold request latency (cache miss: full plan → enumerate → score → rank)
   and cached request latency (LRU hit on the identical canonical request);
3. multi-class execution with shared candidate enumeration vs the legacy
   per-class loop that re-enumerates for every insight class;
4. **parallel speedup** — the scoring-bound workload (exact-mode
   univariate metrics over a wide table) under ``max_workers=1`` vs
   ``max_workers=4`` sharded scoring, plus request throughput (ops/sec)
   for a sequential handle loop vs ``Workspace.handle_many``.

Alongside the human-readable tables it emits ``BENCH_service.json`` (in
the working directory, overridable via ``BENCH_SERVICE_JSON``) so CI can
archive the perf trajectory across PRs.

Designed as a CI smoke benchmark: it runs in seconds on a laptop-scale
workload and exits non-zero if the serving layer misbehaves (cache miss on
a repeat request, shared enumeration or scoring not engaging, parallel
results diverging from serial).  Speedups below target print a warning
rather than failing, since CI machines may be single-core.

Run with::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExecutorConfig, InsightRequest, Workspace  # noqa: E402
from repro.core.query import InsightQuery  # noqa: E402
from repro.data.datasets import make_numeric_table  # noqa: E402
from repro.service.pipeline import PipelineStats  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402

N_ROWS = 20_000
N_COLUMNS = 40
MULTI_CLASS = ("dispersion", "skew", "heavy_tails", "outliers",
               "normality", "multimodality")
REPEATS = 5
PARALLEL_WORKERS = 4
#: Minimum acceptable sharded-scoring speedup on a multi-core machine.
TARGET_SPEEDUP = 1.3
#: Distinct requests in the throughput batch (mix of classes and top_k).
BATCH_SIZE = 12


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _best_of(fn, repeats: int = REPEATS) -> float:
    return min(_timed(fn)[1] for _ in range(repeats))


def _make_table():
    return make_numeric_table(n_rows=N_ROWS, n_columns=N_COLUMNS,
                              block_correlation=0.6, seed=7)


def _batch_requests() -> list[InsightRequest]:
    """Distinct (uncacheable against each other) requests for throughput."""
    requests = []
    for i in range(BATCH_SIZE):
        classes = MULTI_CLASS[: 2 + (i % (len(MULTI_CLASS) - 1))]
        requests.append(
            InsightRequest(dataset="bench", insight_classes=classes,
                           top_k=3 + (i % 4), mode="exact")
        )
    return requests


def main() -> int:
    ok = True
    table = _make_table()

    serial_ws = Workspace(executor=ExecutorConfig(max_workers=1))
    serial_ws.register("bench", lambda: table)
    parallel_ws = Workspace(executor=ExecutorConfig(max_workers=PARALLEL_WORKERS))
    parallel_ws.register("bench", lambda: table)

    _, preprocess_serial = _timed(serial_ws.engine, "bench")
    _, preprocess_parallel = _timed(parallel_ws.engine, "bench")
    engine = serial_ws.engine("bench")
    parallel_engine = parallel_ws.engine("bench")

    # -- cold vs cached ------------------------------------------------------
    request = InsightRequest(dataset="bench", insight_classes=MULTI_CLASS, top_k=5)
    cold, cold_seconds = _timed(serial_ws.handle, request)
    warm, warm_seconds = _timed(serial_ws.handle, request)
    warm_best = _best_of(lambda: serial_ws.handle(request))
    if cold.provenance["cache"] != "miss" or warm.provenance["cache"] != "hit":
        print("FAIL: repeat request was not served from cache", file=sys.stderr)
        ok = False

    # -- shared enumeration vs per-class re-enumeration ----------------------
    queries = [InsightQuery(name, top_k=5) for name in MULTI_CLASS]
    shared_stats = PipelineStats()
    engine.rank_many(queries, stats=shared_stats)
    shared_seconds = _best_of(lambda: engine.rank_many(queries))
    legacy_seconds = _best_of(lambda: [engine.query(q) for q in queries])
    if shared_stats.enumerations != 1:
        print(
            f"FAIL: expected 1 shared enumeration for {len(MULTI_CLASS)} "
            f"same-arity classes, got {shared_stats.enumerations}",
            file=sys.stderr,
        )
        ok = False

    # -- sharded scoring: serial vs parallel on the scoring-bound workload ---
    scoring_queries = [InsightQuery(name, top_k=5, mode="exact")
                       for name in MULTI_CLASS]
    serial_results = engine.rank_many(scoring_queries)
    parallel_stats = PipelineStats()
    parallel_results = parallel_engine.rank_many(scoring_queries,
                                                 stats=parallel_stats)
    if [r.attribute_sets() for r in serial_results] != \
            [r.attribute_sets() for r in parallel_results]:
        print("FAIL: parallel scoring changed the rankings", file=sys.stderr)
        ok = False
    if parallel_stats.score_shards == 0:
        print("FAIL: sharded scoring did not engage under max_workers="
              f"{PARALLEL_WORKERS}", file=sys.stderr)
        ok = False
    scoring_serial = _best_of(lambda: engine.rank_many(scoring_queries), 3)
    scoring_parallel = _best_of(lambda: parallel_engine.rank_many(scoring_queries), 3)
    scoring_speedup = scoring_serial / max(scoring_parallel, 1e-9)

    # -- request throughput: sequential handle loop vs handle_many -----------
    batch = _batch_requests()

    def _serial_batch():
        serial_ws.invalidate("bench")
        for item in batch:
            serial_ws.handle(item)

    def _parallel_batch():
        parallel_ws.invalidate("bench")
        parallel_ws.handle_many(batch, max_workers=PARALLEL_WORKERS)

    serial_batch_seconds = _best_of(_serial_batch, 3)
    parallel_batch_seconds = _best_of(_parallel_batch, 3)
    ops_serial = len(batch) / serial_batch_seconds
    ops_parallel = len(batch) / parallel_batch_seconds
    throughput_speedup = ops_parallel / max(ops_serial, 1e-9)

    # -- cache hit rate over a warm batch ------------------------------------
    # Delta the counters around the warm run: lifetime totals would mix in
    # the deliberately-cold timing phases above.
    before = parallel_ws.cache_info()
    parallel_ws.handle_many(batch)  # all hits now: nothing invalidated since
    info = parallel_ws.cache_info()
    warm_hits = info["hits"] - before["hits"]
    warm_misses = info["misses"] - before["misses"]
    hit_rate = warm_hits / max(warm_hits + warm_misses, 1)
    if hit_rate < 1.0:
        print(f"FAIL: warm batch expected 100% cache hits, got {hit_rate:.2f}",
              file=sys.stderr)
        ok = False

    # -- report ---------------------------------------------------------------
    rows = [
        {"metric": "preprocess serial (1 worker)", "seconds": f"{preprocess_serial:.4f}"},
        {"metric": f"preprocess parallel ({PARALLEL_WORKERS} workers)",
         "seconds": f"{preprocess_parallel:.4f}"},
        {"metric": "cold request (cache miss)", "seconds": f"{cold_seconds:.4f}"},
        {"metric": "cached request (first hit)", "seconds": f"{warm_seconds:.4f}"},
        {"metric": "cached request (best of 5)", "seconds": f"{warm_best:.6f}"},
        {"metric": "multi-class, shared enumeration", "seconds": f"{shared_seconds:.4f}"},
        {"metric": "multi-class, per-class loop", "seconds": f"{legacy_seconds:.4f}"},
        {"metric": "scoring-bound workload, serial", "seconds": f"{scoring_serial:.4f}"},
        {"metric": f"scoring-bound workload, {PARALLEL_WORKERS} workers",
         "seconds": f"{scoring_parallel:.4f}"},
        {"metric": f"batch of {len(batch)} cold requests, sequential",
         "seconds": f"{serial_batch_seconds:.4f}"},
        {"metric": f"batch of {len(batch)} cold requests, handle_many",
         "seconds": f"{parallel_batch_seconds:.4f}"},
    ]
    print()
    print(f"== SERVE: {N_ROWS} rows x {N_COLUMNS} cols, "
          f"{len(MULTI_CLASS)} insight classes ==")
    print(render_table(rows))
    print(f"cache speedup: {cold_seconds / max(warm_best, 1e-9):.0f}x   "
          f"shared-enumeration speedup: {legacy_seconds / max(shared_seconds, 1e-9):.2f}x   "
          f"enumerations: {shared_stats.enumerations} "
          f"(shared queries: {shared_stats.shared_queries})")
    print()
    print("== parallel speedup ==")
    print(f"sharded scoring ({PARALLEL_WORKERS} workers, "
          f"{parallel_stats.score_shards} shards): {scoring_speedup:.2f}x   "
          f"handle_many throughput: {ops_serial:.1f} -> {ops_parallel:.1f} ops/sec "
          f"({throughput_speedup:.2f}x)   cache hit rate: {hit_rate:.2f}")
    if scoring_speedup < TARGET_SPEEDUP:
        print(f"WARN: sharded-scoring speedup {scoring_speedup:.2f}x is below the "
              f"{TARGET_SPEEDUP}x target (single-core CI machine?)", file=sys.stderr)

    payload = {
        "benchmark": "service_throughput",
        "workload": {
            "n_rows": N_ROWS,
            "n_columns": N_COLUMNS,
            "insight_classes": list(MULTI_CLASS),
            "batch_size": len(batch),
            "parallel_workers": PARALLEL_WORKERS,
        },
        "preprocess_seconds": {
            "serial": preprocess_serial,
            "parallel": preprocess_parallel,
        },
        "latency_seconds": {
            "cold": cold_seconds,
            "cached_first": warm_seconds,
            "cached_best": warm_best,
            "multi_class_shared": shared_seconds,
            "multi_class_legacy": legacy_seconds,
            "scoring_serial": scoring_serial,
            "scoring_parallel": scoring_parallel,
        },
        "throughput": {
            "ops_sec_serial": ops_serial,
            "ops_sec_parallel": ops_parallel,
            "speedup": throughput_speedup,
        },
        "parallel_scoring": {
            "speedup": scoring_speedup,
            "score_shards": parallel_stats.score_shards,
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": scoring_speedup >= TARGET_SPEEDUP,
        },
        "cache": {
            "hit_rate": hit_rate,
            **info,
        },
        "ok": ok,
    }
    out_path = Path(os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json"))
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
