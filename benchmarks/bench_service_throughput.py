"""SERVE — serving-layer smoke benchmark (cold vs cached, shared enumeration).

Exercises the Workspace/DTO serving path end to end and reports:

1. preprocessing time (engine build on first use of a lazily-loaded dataset);
2. cold request latency (cache miss: full plan → enumerate → score → rank);
3. cached request latency (LRU hit on the identical canonical request);
4. multi-class execution with shared candidate enumeration vs the legacy
   per-class loop that re-enumerates for every insight class.

Designed as a CI smoke benchmark: it runs in seconds on a laptop-scale
workload and exits non-zero if the serving layer misbehaves (cache miss on
a repeat request, or shared enumeration not engaging).

Run with::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.core.query import InsightQuery  # noqa: E402
from repro.data.datasets import make_numeric_table  # noqa: E402
from repro.service.pipeline import PipelineStats  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402

N_ROWS = 20_000
N_COLUMNS = 40
MULTI_CLASS = ("dispersion", "skew", "heavy_tails", "outliers",
               "normality", "multimodality")
REPEATS = 5


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _best_of(fn, repeats: int = REPEATS) -> float:
    return min(_timed(fn)[1] for _ in range(repeats))


def main() -> int:
    workspace = Workspace()
    workspace.register(
        "bench",
        lambda: make_numeric_table(n_rows=N_ROWS, n_columns=N_COLUMNS,
                                   block_correlation=0.6, seed=7),
    )

    _, preprocess_seconds = _timed(workspace.engine, "bench")
    engine = workspace.engine("bench")

    request = InsightRequest(dataset="bench", insight_classes=MULTI_CLASS, top_k=5)
    cold, cold_seconds = _timed(workspace.handle, request)
    warm, warm_seconds = _timed(workspace.handle, request)
    warm_best = _best_of(lambda: workspace.handle(request))

    ok = True
    if cold.provenance["cache"] != "miss" or warm.provenance["cache"] != "hit":
        print("FAIL: repeat request was not served from cache", file=sys.stderr)
        ok = False

    # Shared enumeration vs per-class re-enumeration on the same queries.
    queries = [InsightQuery(name, top_k=5) for name in MULTI_CLASS]
    shared_stats = PipelineStats()
    engine.rank_many(queries, stats=shared_stats)
    shared_seconds = _best_of(lambda: engine.rank_many(queries))
    legacy_seconds = _best_of(lambda: [engine.query(q) for q in queries])
    if shared_stats.enumerations != 1:
        print(
            f"FAIL: expected 1 shared enumeration for {len(MULTI_CLASS)} "
            f"same-arity classes, got {shared_stats.enumerations}",
            file=sys.stderr,
        )
        ok = False

    rows = [
        {"metric": "preprocess (engine build)", "seconds": f"{preprocess_seconds:.4f}"},
        {"metric": "cold request (cache miss)", "seconds": f"{cold_seconds:.4f}"},
        {"metric": "cached request (first hit)", "seconds": f"{warm_seconds:.4f}"},
        {"metric": "cached request (best of 5)", "seconds": f"{warm_best:.6f}"},
        {"metric": "multi-class, shared enumeration", "seconds": f"{shared_seconds:.4f}"},
        {"metric": "multi-class, per-class loop", "seconds": f"{legacy_seconds:.4f}"},
    ]
    print()
    print(f"== SERVE: {N_ROWS} rows x {N_COLUMNS} cols, "
          f"{len(MULTI_CLASS)} insight classes ==")
    print(render_table(rows))
    print(f"cache speedup: {cold_seconds / max(warm_best, 1e-9):.0f}x   "
          f"shared-enumeration speedup: {legacy_seconds / max(shared_seconds, 1e-9):.2f}x   "
          f"enumerations: {shared_stats.enumerations} "
          f"(shared queries: {shared_stats.shared_queries})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
