"""INTERACT — "interactive speeds during exploration" at the paper's scale.

Section 4.1: "Foresight is intended to facilitate interactive exploration of
datasets with data items of the order of 100K and attributes that number in
the hundreds", and section 3 reports "interactive speeds during exploration"
once preprocessing is done.

This benchmark preprocesses a 100 000-row x 120-column table once (session
fixture) and then measures the latency of the insight queries the UI issues:
per-class carousels, fixed-attribute queries and metric-range queries.  The
"shape" under test: every query answered from sketches completes well under
one second — interactive by any UI standard.
"""

from __future__ import annotations

import time

import pytest

from conftest import report

INTERACTIVE_BUDGET_SECONDS = 1.0

QUERY_CASES = [
    ("linear_relationship", {}),
    ("linear_relationship", {"fixed": ("attr_000",)}),
    ("linear_relationship", {"metric_min": 0.5, "metric_max": 0.8}),
    ("dispersion", {}),
    ("skew", {}),
    ("heavy_tails", {}),
    ("outliers", {}),
    ("normality", {}),
    ("multimodality", {}),
    ("monotonic_relationship", {}),
]


@pytest.mark.parametrize("insight_class,kwargs", QUERY_CASES,
                         ids=[f"{name}-{i}" for i, (name, _) in enumerate(QUERY_CASES)])
def test_query_latency_is_interactive(benchmark, interact_engine, insight_class, kwargs):
    result = benchmark(interact_engine.query, insight_class, top_k=5, **kwargs)
    assert benchmark.stats.stats.mean < INTERACTIVE_BUDGET_SECONDS
    assert result.insights or insight_class == "multimodality"


def test_latency_summary_table(benchmark, interact_engine):
    benchmark.pedantic(interact_engine.query, args=("skew",), kwargs={"top_k": 5},
                       rounds=1, iterations=1)
    rows = []
    for insight_class, kwargs in QUERY_CASES:
        start = time.perf_counter()
        result = interact_engine.query(insight_class, top_k=5, **kwargs)
        elapsed = time.perf_counter() - start
        rows.append({
            "query": insight_class + (" (constrained)" if kwargs else ""),
            "latency (ms)": elapsed * 1000.0,
            "results": len(result),
            "candidates scored": result.n_scored,
        })
    report("INTERACT — insight-query latency at 100k rows x 120 columns", rows)
    assert all(row["latency (ms)"] < INTERACTIVE_BUDGET_SECONDS * 1000 for row in rows)


def test_preprocessing_cost_amortised_once(benchmark, interact_engine):
    """Preprocessing happens once; record its cost next to the query costs."""
    benchmark.pedantic(lambda: interact_engine.store.stats, rounds=1, iterations=1)
    stats = interact_engine.store.stats
    report(
        "INTERACT — one-off preprocessing cost for the interactive session",
        [{
            "n_rows": stats.n_rows,
            "numeric columns": stats.n_numeric,
            "hyperplane width k": stats.hyperplane_width,
            "preprocess (s)": stats.seconds,
            "sketch memory (KiB)": stats.total_sketch_bytes / 1024,
        }],
    )
    assert stats.seconds < 60.0
