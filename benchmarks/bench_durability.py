"""DURABILITY — write-ahead journal benchmark (fsync cost, replay, rebuilds).

Measures the three numbers that price the durability subsystem:

1. **append throughput with the journal on** — rows/sec through
   ``Workspace.append`` against a ``data_dir`` with fsync-on-commit
   enabled vs disabled, and the in-memory baseline: what an acknowledged-
   durable append actually costs;
2. **replay time vs journal length** — how long a restarted workspace
   takes to reconstruct its ``(version, seq)`` state from journals of
   increasing length, for both cheap (deferred, concat-only) and sketch-
   maintaining (delta-merge) records;
3. **query latency during a background rebuild** — reader-observed
   p50/p95 while the budget-triggered rebuild runs off the append path,
   against the same readers on an idle workspace: the rebuild must not
   dent the read path.

Emits ``BENCH_durability.json`` (working directory, overridable via
``BENCH_DURABILITY_JSON``) for CI archiving.  Exits non-zero on
correctness problems — a restart that does not reproduce the identity,
a failed query — and only *warns* on perf regressions (CI machines are
noisy).

Run with::

    PYTHONPATH=src python benchmarks/bench_durability.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402
from bench_util import percentile  # noqa: E402

BASE_ROWS = 8_000
N_COLUMNS = 8
BATCH_ROWS = 200
N_BATCHES = 12
CLASSES = ("skew", "outliers", "heavy_tails")
REPLAY_LENGTHS = (5, 20, 60)


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=N_COLUMNS,
                            n_categorical=2, seed=23)


def _rows(n: int):
    return make_mixed_table(n_rows=n, n_numeric=N_COLUMNS, n_categorical=2,
                            seed=24).to_records()


def _append_throughput(data_dir: str | None, fsync: bool,
                       build_engine: bool) -> dict:
    table = _base_table()
    workspace = Workspace(
        data_dir=data_dir,
        ingest=IngestConfig(rebuild_fraction=float("inf"), fsync=fsync))
    workspace.register("bench", lambda: table)
    if build_engine:
        workspace.engine("bench")
    rows = _rows(BATCH_ROWS * N_BATCHES)
    batches = [rows[i * BATCH_ROWS:(i + 1) * BATCH_ROWS]
               for i in range(N_BATCHES)]
    latencies = []
    for batch in batches:
        started = time.perf_counter()
        workspace.append("bench", batch)
        latencies.append(time.perf_counter() - started)
    workspace.close()
    total = sum(latencies)
    return {
        "rows_per_sec": BATCH_ROWS * N_BATCHES / total,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "total_seconds": total,
    }


def _replay_time(n_appends: int, with_engine: bool) -> dict:
    table = _base_table()
    rows = _rows(40 * n_appends)
    with tempfile.TemporaryDirectory() as data_dir:
        writer = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        writer.register("bench", lambda: table)
        if with_engine:
            writer.engine("bench")  # appends now delta-merge
        for i in range(n_appends):
            writer.append("bench", rows[40 * i: 40 * (i + 1)])
        expected = writer.state("bench")
        journal_bytes = sum(
            p.stat().st_size
            for p in Path(data_dir, "bench").glob("journal-*.seg"))
        writer.close()

        started = time.perf_counter()
        restarted = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        restarted.register("bench", lambda: table)
        # Replay is lazy (identity is exact immediately; the table/engine
        # reconstruction defers to first use) — force it so the timing
        # covers the full state rebuild, not just the counter walk.
        restarted.table("bench")
        if with_engine:
            restarted.engine("bench")
        if restarted.state("bench") != expected:
            raise AssertionError(
                f"replay mismatch: {restarted.state('bench')} != {expected}")
        elapsed = time.perf_counter() - started
        restarted.close()
    return {
        "appends": n_appends,
        "journal_bytes": journal_bytes,
        "replay_seconds": elapsed,
        "records_per_sec": n_appends / elapsed if elapsed else float("inf"),
    }


def _query_latency_during_rebuild() -> dict:
    """p50/p95 of reader-observed latency, idle vs mid-background-rebuild."""
    request = InsightRequest(dataset="bench", insight_classes=CLASSES,
                             top_k=3, mode="approximate")

    def build_workspace() -> Workspace:
        table = _base_table()
        workspace = Workspace(
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("bench", lambda: table)
        workspace.engine("bench")
        workspace.append("bench", _rows(400))
        return workspace

    def measure(workspace: Workspace, seconds: float,
                failures: list[str]) -> list[float]:
        latencies = []
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            workspace.invalidate("bench")  # force real pipeline work
            started = time.perf_counter()
            try:
                workspace.handle(request)
            except Exception as exc:  # noqa: BLE001 - fails the benchmark
                failures.append(f"{type(exc).__name__}: {exc}")
                break
            latencies.append(time.perf_counter() - started)
        return latencies

    failures: list[str] = []
    idle = measure(build_workspace(), 1.5, failures)

    workspace = build_workspace()
    swaps: list[dict | None] = []
    rebuilds_done = threading.Event()

    def rebuild_loop() -> None:
        # Back-to-back rebuilds keep the background path busy for the
        # whole measurement window.
        deadline = time.perf_counter() + 1.5
        while time.perf_counter() < deadline:
            swaps.append(workspace.rebuild("bench"))
        rebuilds_done.set()

    worker = threading.Thread(target=rebuild_loop)
    worker.start()
    busy = measure(workspace, 1.5, failures)
    worker.join()
    workspace.close()
    completed = [swap for swap in swaps if swap]
    return {
        "failures": failures,
        "rebuilds_completed": len(completed),
        "idle": {"queries": len(idle),
                 "p50_seconds": percentile(idle, 0.50),
                 "p95_seconds": percentile(idle, 0.95)},
        "during_rebuild": {"queries": len(busy),
                           "p50_seconds": percentile(busy, 0.50),
                           "p95_seconds": percentile(busy, 0.95)},
    }


def main() -> int:
    ok = True
    results: dict[str, object] = {}

    # -- 1: append throughput, journal off / fsync off / fsync on ----------
    memory = _append_throughput(None, fsync=True, build_engine=True)
    with tempfile.TemporaryDirectory() as data_dir:
        no_fsync = _append_throughput(data_dir, fsync=False,
                                      build_engine=True)
    with tempfile.TemporaryDirectory() as data_dir:
        fsync = _append_throughput(data_dir, fsync=True, build_engine=True)
    results["append_throughput"] = {
        "in_memory": memory, "journal_no_fsync": no_fsync,
        "journal_fsync": fsync,
    }
    print("Append throughput (delta-merge appends)")
    print(render_table([
        {"regime": name, "rows/sec": f"{r['rows_per_sec']:.0f}",
         "p50 ms": f"{r['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{r['p95_seconds']*1e3:.2f}"}
        for name, r in (("in-memory", memory),
                        ("journal, fsync off", no_fsync),
                        ("journal, fsync on", fsync))
    ]))

    # -- 2: replay time vs journal length -----------------------------------
    replay_rows = []
    results["replay"] = {"deferred": [], "delta_merge": []}
    for with_engine, label in ((False, "deferred"), (True, "delta_merge")):
        for n_appends in REPLAY_LENGTHS:
            entry = _replay_time(n_appends, with_engine)
            results["replay"][label].append(entry)
            replay_rows.append({
                "records": label, "appends": str(n_appends),
                "journal bytes": str(entry["journal_bytes"]),
                "replay ms": f"{entry['replay_seconds']*1e3:.1f}",
            })
    print("\nRestart replay vs journal length")
    print(render_table(replay_rows))

    # -- 3: query latency during a background rebuild ------------------------
    rebuild = _query_latency_during_rebuild()
    results["query_during_rebuild"] = rebuild
    if rebuild["failures"]:
        print(f"FAIL: queries failed during rebuild: {rebuild['failures']}",
              file=sys.stderr)
        ok = False
    if rebuild["rebuilds_completed"] < 1:
        print("FAIL: no background rebuild completed in the window",
              file=sys.stderr)
        ok = False
    print("\nQuery latency, idle vs mid-rebuild")
    print(render_table([
        {"regime": "idle", "queries": str(rebuild["idle"]["queries"]),
         "p50 ms": f"{rebuild['idle']['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{rebuild['idle']['p95_seconds']*1e3:.2f}"},
        {"regime": f"during rebuild (x{rebuild['rebuilds_completed']})",
         "queries": str(rebuild["during_rebuild"]["queries"]),
         "p50 ms": f"{rebuild['during_rebuild']['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{rebuild['during_rebuild']['p95_seconds']*1e3:.2f}"},
    ]))
    ratio = (rebuild["during_rebuild"]["p95_seconds"]
             / max(rebuild["idle"]["p95_seconds"], 1e-9))
    if ratio > 3.0:
        print(f"WARN: p95 during rebuild is {ratio:.1f}x idle "
              "(target <= 3x; CI machines are noisy)", file=sys.stderr)

    target = os.environ.get("BENCH_DURABILITY_JSON", "BENCH_durability.json")
    Path(target).write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
