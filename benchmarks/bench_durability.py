"""DURABILITY — write-ahead journal benchmark (fsync cost, replay, rebuilds).

Measures the three numbers that price the durability subsystem:

1. **append throughput with the journal on** — rows/sec through
   ``Workspace.append`` against a ``data_dir`` with fsync-on-commit
   enabled vs disabled, and the in-memory baseline: what an acknowledged-
   durable append actually costs;
2. **replay time vs journal length** — how long a restarted workspace
   takes to reconstruct its ``(version, seq)`` state from journals of
   increasing length, for both cheap (deferred, concat-only) and sketch-
   maintaining (delta-merge) records;
3. **query latency during a background rebuild** — reader-observed
   p50/p95 while the budget-triggered rebuild runs off the append path,
   against the same readers on an idle workspace: the rebuild must not
   dent the read path;
4. **group commit under concurrent appenders** — acknowledged-durable
   appends/sec with N threads hammering one dataset, group commit off
   vs on: how much of the per-append fsync cost the shared-fsync
   pipeline recovers (target: >= 2x at the widest row);
5. **snapshot codec** — binary columnar snapshot vs the legacy JSON
   record format: encoded size, write+fsync time, and full restart
   replay time, verified byte-identical on the restored table payload.

Emits ``BENCH_durability.json`` (working directory, overridable via
``BENCH_DURABILITY_JSON``) for CI archiving.  Exits non-zero on
correctness problems — a restart that does not reproduce the identity,
a failed query — and only *warns* on perf regressions (CI machines are
noisy).

Run with::

    PYTHONPATH=src python benchmarks/bench_durability.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.ingest.durable import (  # noqa: E402
    DatasetJournal,
    encode_record,
    legacy_snapshot_filename,
    snapshot_filename,
    table_to_payload,
)
from repro.ingest.snapshot_codec import (  # noqa: E402
    decode_snapshot,
    encode_snapshot,
)
from repro.viz.ascii import render_table  # noqa: E402
from bench_util import percentile  # noqa: E402

BASE_ROWS = 8_000
N_COLUMNS = 8
BATCH_ROWS = 200
N_BATCHES = 12
CLASSES = ("skew", "outliers", "heavy_tails")
REPLAY_LENGTHS = (5, 20, 60)
GROUP_THREADS = (1, 4, 8)
GROUP_APPENDS = 100  # per thread; 1-row batches so the fsync dominates
GROUP_REPEATS = 3  # best-of-N per matrix cell
SNAPSHOT_ROWS = 60_000


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=N_COLUMNS,
                            n_categorical=2, seed=23)


def _rows(n: int):
    return make_mixed_table(n_rows=n, n_numeric=N_COLUMNS, n_categorical=2,
                            seed=24).to_records()


def _append_throughput(data_dir: str | None, fsync: bool,
                       build_engine: bool) -> dict:
    table = _base_table()
    workspace = Workspace(
        data_dir=data_dir,
        ingest=IngestConfig(rebuild_fraction=float("inf"), fsync=fsync))
    workspace.register("bench", lambda: table)
    if build_engine:
        workspace.engine("bench")
    rows = _rows(BATCH_ROWS * N_BATCHES)
    batches = [rows[i * BATCH_ROWS:(i + 1) * BATCH_ROWS]
               for i in range(N_BATCHES)]
    latencies = []
    for batch in batches:
        started = time.perf_counter()
        workspace.append("bench", batch)
        latencies.append(time.perf_counter() - started)
    workspace.close()
    total = sum(latencies)
    return {
        "rows_per_sec": BATCH_ROWS * N_BATCHES / total,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "total_seconds": total,
    }


def _replay_time(n_appends: int, with_engine: bool) -> dict:
    table = _base_table()
    rows = _rows(40 * n_appends)
    with tempfile.TemporaryDirectory() as data_dir:
        writer = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        writer.register("bench", lambda: table)
        if with_engine:
            writer.engine("bench")  # appends now delta-merge
        for i in range(n_appends):
            writer.append("bench", rows[40 * i: 40 * (i + 1)])
        expected = writer.state("bench")
        journal_bytes = sum(
            p.stat().st_size
            for p in Path(data_dir, "bench").glob("journal-*.seg"))
        writer.close()

        started = time.perf_counter()
        restarted = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        restarted.register("bench", lambda: table)
        # Replay is lazy (identity is exact immediately; the table/engine
        # reconstruction defers to first use) — force it so the timing
        # covers the full state rebuild, not just the counter walk.
        restarted.table("bench")
        if with_engine:
            restarted.engine("bench")
        if restarted.state("bench") != expected:
            raise AssertionError(
                f"replay mismatch: {restarted.state('bench')} != {expected}")
        elapsed = time.perf_counter() - started
        restarted.close()
    return {
        "appends": n_appends,
        "journal_bytes": journal_bytes,
        "replay_seconds": elapsed,
        "records_per_sec": n_appends / elapsed if elapsed else float("inf"),
    }


def _group_commit_journal(threads: int, group_commit: bool) -> dict:
    """Journal-level matrix cell: N threads, one dataset, fsync on.

    Writes go through ``DatasetJournal.append`` under one shared lock
    (standing in for the workspace's per-dataset entry lock, which
    serialises the write path in production) with the commit-ticket wait
    outside it — exactly the locking structure ``Workspace.append``
    uses.  This isolates what group commit actually changes — fsync
    scheduling — from the delta-pipeline CPU the end-to-end matrix
    carries.
    """
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as root:
        journal = DatasetJournal(root, fsync=True, group_commit=group_commit)
        journal.begin_generation("bench", 1)
        lock = threading.Lock()
        barrier = threading.Barrier(threads + 1)

        def appender(index: int) -> None:
            barrier.wait()
            try:
                for i in range(GROUP_APPENDS):
                    payload = {"type": "append",
                               "seq": index * GROUP_APPENDS + i + 1,
                               "rows": [{"x": 1.5, "label": "a"}]}
                    with lock:
                        ticket = journal.append("bench", payload)
                    if ticket is not None:
                        ticket.wait()
            except Exception as exc:  # noqa: BLE001 - fails the benchmark
                failures.append(f"{type(exc).__name__}: {exc}")

        workers = [threading.Thread(target=appender, args=(i,))
                   for i in range(threads)]
        for worker in workers:
            worker.start()
        barrier.wait()
        started = time.perf_counter()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        stats = journal.group_commit_stats()
        journal.close()
    total = threads * GROUP_APPENDS
    return {
        "threads": threads,
        "group_commit": group_commit,
        "appends": total,
        "appends_per_sec": total / elapsed if elapsed else float("inf"),
        "elapsed_seconds": elapsed,
        "fsyncs_saved": stats.get("fsyncs_saved", 0),
        "max_group_size": stats.get("max_group_size", 0),
        "failures": failures,
    }


def _group_commit_run(threads: int, group_commit: bool) -> dict:
    """End-to-end matrix cell: N threads × 1-row ``Workspace.append``.

    The dataset is deliberately lean (two columns, tiny base) so the
    fsync is a visible share of the append; wide rows bury it under
    delta-pipeline CPU that the GIL serialises either way.
    """
    table = make_mixed_table(n_rows=200, n_numeric=1, n_categorical=1,
                             seed=23)
    rows = make_mixed_table(n_rows=threads * GROUP_APPENDS, n_numeric=1,
                            n_categorical=1, seed=24).to_records()
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as data_dir:
        workspace = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf"),
                                group_commit=group_commit))
        workspace.register("bench", lambda: table)
        barrier = threading.Barrier(threads + 1)

        def appender(index: int) -> None:
            mine = rows[index * GROUP_APPENDS:(index + 1) * GROUP_APPENDS]
            barrier.wait()
            try:
                for row in mine:
                    workspace.append("bench", [row])
            except Exception as exc:  # noqa: BLE001 - fails the benchmark
                failures.append(f"{type(exc).__name__}: {exc}")

        workers = [threading.Thread(target=appender, args=(i,))
                   for i in range(threads)]
        for worker in workers:
            worker.start()
        barrier.wait()
        started = time.perf_counter()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        stats = workspace.ingest_stats().get("group_commit", {})
        _version, seq = workspace.state("bench")
        workspace.close()
    total = threads * GROUP_APPENDS
    if seq != total:
        failures.append(f"seq {seq} != {total} acknowledged appends")
    return {
        "threads": threads,
        "group_commit": group_commit,
        "appends": total,
        "appends_per_sec": total / elapsed if elapsed else float("inf"),
        "elapsed_seconds": elapsed,
        "fsyncs_saved": stats.get("fsyncs_saved", 0),
        "max_group_size": stats.get("max_group_size", 0),
        "failures": failures,
    }


def _best_of(runs: int, fn, *args) -> dict:
    """Best-of-N cell (max appends/sec): damps scheduler noise."""
    best: dict | None = None
    for _ in range(runs):
        result = fn(*args)
        if result["failures"]:
            return result
        if best is None or result["appends_per_sec"] > best["appends_per_sec"]:
            best = result
    assert best is not None
    return best


def _snapshot_codec() -> dict:
    """Binary columnar snapshot vs legacy JSON: size, write, replay.

    The write comparison runs at the codec level (encode + write +
    fsync of the same compaction payload); the replay comparison runs
    end-to-end, restarting a workspace off a generation directory
    holding either the binary snapshot or a synthesized legacy JSON one
    (the read-compat path), and checks the restored table payload is
    byte-identical either way.
    """
    table = make_mixed_table(n_rows=SNAPSHOT_ROWS, n_numeric=N_COLUMNS,
                             n_categorical=2, seed=25)

    def timed_write(data: bytes, path: Path) -> float:
        started = time.perf_counter()
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return time.perf_counter() - started

    def restart(data_dir: str, expected) -> float:
        started = time.perf_counter()
        restored = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        restored.register("bench", lambda: table)
        restored.table("bench")  # force the lazy replay
        state = restored.state("bench")
        payload = table_to_payload(restored.table("bench"))
        restored.close()
        elapsed = time.perf_counter() - started
        if state != expected:
            raise AssertionError(f"replay mismatch: {state} != {expected}")
        if payload != table_to_payload(table):
            raise AssertionError("restored table payload differs")
        return elapsed

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as data_dir:
        writer = Workspace(
            data_dir=data_dir,
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        # A concrete table is snapshotted at registration (it must
        # survive restarts without a loader) — exactly the compaction
        # write being measured.
        writer.register("bench", table)
        expected = writer.state("bench")
        writer.close()

        directory = Path(data_dir, "bench")
        version = expected[0]
        binary_path = directory / snapshot_filename(version)
        payload = decode_snapshot(binary_path.read_bytes())
        binary = encode_snapshot(payload)
        legacy = encode_record(payload)
        scratch = directory / "scratch.tmp"
        encode_started = time.perf_counter()
        encode_snapshot(payload)
        binary_encode = time.perf_counter() - encode_started
        encode_started = time.perf_counter()
        encode_record(payload)
        legacy_encode = time.perf_counter() - encode_started
        binary_write = timed_write(binary, scratch)
        legacy_write = timed_write(legacy, scratch)
        scratch.unlink()

        try:
            binary_replay = restart(data_dir, expected)
            # Swap in the synthesized legacy snapshot: same payload,
            # old on-disk format, exercised through the read-compat
            # fallback.
            (directory / legacy_snapshot_filename(version)).write_bytes(legacy)
            binary_path.unlink()
            legacy_replay = restart(data_dir, expected)
        except AssertionError as exc:
            failures.append(str(exc))
            binary_replay = legacy_replay = float("nan")
    return {
        "rows": SNAPSHOT_ROWS,
        "failures": failures,
        "binary": {"bytes": len(binary),
                   "encode_seconds": binary_encode,
                   "write_seconds": binary_encode + binary_write,
                   "replay_seconds": binary_replay},
        "legacy_json": {"bytes": len(legacy),
                        "encode_seconds": legacy_encode,
                        "write_seconds": legacy_encode + legacy_write,
                        "replay_seconds": legacy_replay},
    }


def _query_latency_during_rebuild() -> dict:
    """p50/p95 of reader-observed latency, idle vs mid-background-rebuild."""
    request = InsightRequest(dataset="bench", insight_classes=CLASSES,
                             top_k=3, mode="approximate")

    def build_workspace() -> Workspace:
        table = _base_table()
        workspace = Workspace(
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("bench", lambda: table)
        workspace.engine("bench")
        workspace.append("bench", _rows(400))
        return workspace

    def measure(workspace: Workspace, seconds: float,
                failures: list[str]) -> list[float]:
        latencies = []
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            workspace.invalidate("bench")  # force real pipeline work
            started = time.perf_counter()
            try:
                workspace.handle(request)
            except Exception as exc:  # noqa: BLE001 - fails the benchmark
                failures.append(f"{type(exc).__name__}: {exc}")
                break
            latencies.append(time.perf_counter() - started)
        return latencies

    failures: list[str] = []
    idle = measure(build_workspace(), 1.5, failures)

    workspace = build_workspace()
    swaps: list[dict | None] = []
    rebuilds_done = threading.Event()

    def rebuild_loop() -> None:
        # Back-to-back rebuilds keep the background path busy for the
        # whole measurement window.
        deadline = time.perf_counter() + 1.5
        while time.perf_counter() < deadline:
            swaps.append(workspace.rebuild("bench"))
        rebuilds_done.set()

    worker = threading.Thread(target=rebuild_loop)
    worker.start()
    busy = measure(workspace, 1.5, failures)
    worker.join()
    workspace.close()
    completed = [swap for swap in swaps if swap]
    return {
        "failures": failures,
        "rebuilds_completed": len(completed),
        "idle": {"queries": len(idle),
                 "p50_seconds": percentile(idle, 0.50),
                 "p95_seconds": percentile(idle, 0.95)},
        "during_rebuild": {"queries": len(busy),
                           "p50_seconds": percentile(busy, 0.50),
                           "p95_seconds": percentile(busy, 0.95)},
    }


def main() -> int:
    ok = True
    results: dict[str, object] = {}

    # -- 1: append throughput, journal off / fsync off / fsync on ----------
    memory = _append_throughput(None, fsync=True, build_engine=True)
    with tempfile.TemporaryDirectory() as data_dir:
        no_fsync = _append_throughput(data_dir, fsync=False,
                                      build_engine=True)
    with tempfile.TemporaryDirectory() as data_dir:
        fsync = _append_throughput(data_dir, fsync=True, build_engine=True)
    results["append_throughput"] = {
        "in_memory": memory, "journal_no_fsync": no_fsync,
        "journal_fsync": fsync,
    }
    print("Append throughput (delta-merge appends)")
    print(render_table([
        {"regime": name, "rows/sec": f"{r['rows_per_sec']:.0f}",
         "p50 ms": f"{r['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{r['p95_seconds']*1e3:.2f}"}
        for name, r in (("in-memory", memory),
                        ("journal, fsync off", no_fsync),
                        ("journal, fsync on", fsync))
    ]))

    # -- 2: replay time vs journal length -----------------------------------
    replay_rows = []
    results["replay"] = {"deferred": [], "delta_merge": []}
    for with_engine, label in ((False, "deferred"), (True, "delta_merge")):
        for n_appends in REPLAY_LENGTHS:
            entry = _replay_time(n_appends, with_engine)
            results["replay"][label].append(entry)
            replay_rows.append({
                "records": label, "appends": str(n_appends),
                "journal bytes": str(entry["journal_bytes"]),
                "replay ms": f"{entry['replay_seconds']*1e3:.1f}",
            })
    print("\nRestart replay vs journal length")
    print(render_table(replay_rows))

    # -- 3: query latency during a background rebuild ------------------------
    rebuild = _query_latency_during_rebuild()
    results["query_during_rebuild"] = rebuild
    if rebuild["failures"]:
        print(f"FAIL: queries failed during rebuild: {rebuild['failures']}",
              file=sys.stderr)
        ok = False
    if rebuild["rebuilds_completed"] < 1:
        print("FAIL: no background rebuild completed in the window",
              file=sys.stderr)
        ok = False
    print("\nQuery latency, idle vs mid-rebuild")
    print(render_table([
        {"regime": "idle", "queries": str(rebuild["idle"]["queries"]),
         "p50 ms": f"{rebuild['idle']['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{rebuild['idle']['p95_seconds']*1e3:.2f}"},
        {"regime": f"during rebuild (x{rebuild['rebuilds_completed']})",
         "queries": str(rebuild["during_rebuild"]["queries"]),
         "p50 ms": f"{rebuild['during_rebuild']['p50_seconds']*1e3:.2f}",
         "p95 ms": f"{rebuild['during_rebuild']['p95_seconds']*1e3:.2f}"},
    ]))
    ratio = (rebuild["during_rebuild"]["p95_seconds"]
             / max(rebuild["idle"]["p95_seconds"], 1e-9))
    if ratio > 3.0:
        print(f"WARN: p95 during rebuild is {ratio:.1f}x idle "
              "(target <= 3x; CI machines are noisy)", file=sys.stderr)

    # -- 4: group commit, N appender threads × on/off ------------------------
    results["group_commit"] = {"appends_per_thread": GROUP_APPENDS,
                               "repeats": GROUP_REPEATS}
    for key, cell, title in (
        ("journal", _group_commit_journal,
         "Group commit, journal level: concurrent fsync-on appends"),
        ("workspace", _group_commit_run,
         "Group commit, end-to-end: concurrent 1-row Workspace.append"),
    ):
        matrix = []
        group_rows = []
        for threads in GROUP_THREADS:
            off = _best_of(GROUP_REPEATS, cell, threads, False)
            on = _best_of(GROUP_REPEATS, cell, threads, True)
            for run in (off, on):
                if run["failures"]:
                    print(f"FAIL: group-commit {key} {run['threads']}t "
                          f"(group={run['group_commit']}): {run['failures']}",
                          file=sys.stderr)
                    ok = False
            speedup = on["appends_per_sec"] / max(off["appends_per_sec"], 1e-9)
            matrix.append({"threads": threads, "off": off, "on": on,
                           "speedup": speedup})
            group_rows.append({
                "threads": str(threads),
                "off appends/s": f"{off['appends_per_sec']:.0f}",
                "on appends/s": f"{on['appends_per_sec']:.0f}",
                "speedup": f"{speedup:.2f}x",
                "fsyncs saved": str(on["fsyncs_saved"]),
                "max group": str(on["max_group_size"]),
            })
        results["group_commit"][key] = matrix
        print(f"\n{title}")
        print(render_table(group_rows))
        best = max(entry["speedup"] for entry in matrix
                   if entry["threads"] > 1)
        if best < 2.0:
            print(f"WARN: best multi-appender {key} speedup is {best:.2f}x "
                  "(target >= 2x; CI disks vary)", file=sys.stderr)

    # -- 5: snapshot codec, binary vs legacy JSON ----------------------------
    codec = _snapshot_codec()
    results["snapshot_codec"] = codec
    if codec["failures"]:
        print(f"FAIL: snapshot codec fidelity: {codec['failures']}",
              file=sys.stderr)
        ok = False
    print(f"\nSnapshot codec, {codec['rows']} rows")
    print(render_table([
        {"format": name,
         "bytes": str(entry["bytes"]),
         "write ms": f"{entry['write_seconds']*1e3:.1f}",
         "replay ms": f"{entry['replay_seconds']*1e3:.1f}"}
        for name, entry in (("binary columnar", codec["binary"]),
                            ("legacy JSON", codec["legacy_json"]))
    ]))
    if (codec["binary"]["write_seconds"]
            > codec["legacy_json"]["write_seconds"]
            or codec["binary"]["replay_seconds"]
            > codec["legacy_json"]["replay_seconds"]):
        print("WARN: binary snapshot not faster than legacy JSON "
              "(write or replay)", file=sys.stderr)

    target = os.environ.get("BENCH_DURABILITY_JSON", "BENCH_durability.json")
    Path(target).write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
