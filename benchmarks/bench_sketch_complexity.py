"""SK-COMPLEX — section 3 complexity claims.

The paper states three costs for the hyperplane sketch:

* memory: the bit-vector sketch consumes |B|·k bits for the whole dataset;
* construction: a single pass, O(|B|·n·k) time;
* pairwise estimation: O(|B|²·k) time instead of the exact O(|B|²·n).

This benchmark verifies the memory accounting exactly, and measures how the
estimation time scales with n (it should be flat — independent of n — for
the sketch, and grow linearly for the exact computation), plus how
construction scales with k.
"""

from __future__ import annotations

import math
import time

import numpy as np

from conftest import report
from repro.data.datasets import make_numeric_table
from repro.sketch.hyperplane import HyperplaneSketcher
from repro.stats.correlation import correlation_matrix

WIDTH = 512
N_COLUMNS = 40


def _matrix(n_rows: int, seed: int = 5) -> np.ndarray:
    table = make_numeric_table(n_rows=n_rows, n_columns=N_COLUMNS, seed=seed)
    return table.numeric_matrix()[0]


def test_memory_is_columns_times_width_bits(benchmark):
    benchmark.pedantic(lambda: HyperplaneSketcher(n_rows=1000, width=WIDTH, seed=0),
                       rounds=1, iterations=1)
    rows = []
    for n_columns in (10, 50, 200):
        sketcher = HyperplaneSketcher(n_rows=1000, width=WIDTH, seed=0)
        expected_bits = n_columns * WIDTH
        assert sketcher.memory_bytes(n_columns) * 8 == expected_bits
        rows.append({
            "|B| columns": n_columns,
            "k (bits/column)": WIDTH,
            "total sketch bits": expected_bits,
            "total sketch KiB": expected_bits / 8 / 1024,
        })
    report("SK-COMPLEX — sketch memory = |B|·k bits", rows)


def test_estimation_time_independent_of_n(benchmark):
    """All-pairs estimation from sketches costs O(|B|²k): flat in n.
    The exact computation costs O(|B|²n): grows with n."""
    rows = []
    sketch_times = {}
    exact_times = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n_rows in (10_000, 40_000, 160_000):
        matrix = _matrix(n_rows)
        sketcher = HyperplaneSketcher(n_rows=n_rows, width=WIDTH, seed=1)
        sketches = sketcher.sketch_matrix(matrix)
        start = time.perf_counter()
        for _ in range(5):
            sketcher.correlation_matrix(sketches)
        sketch_times[n_rows] = (time.perf_counter() - start) / 5
        start = time.perf_counter()
        correlation_matrix(matrix)
        exact_times[n_rows] = time.perf_counter() - start
        rows.append({
            "n_rows": n_rows,
            "sketch estimation (ms)": sketch_times[n_rows] * 1000,
            "exact computation (ms)": exact_times[n_rows] * 1000,
        })
    report("SK-COMPLEX — all-pairs estimation time vs n (|B| = 40, k = 512)", rows)
    # Sketch estimation time is (near) independent of n: a 16x larger table
    # must not cost more than ~3x (noise allowance).
    assert sketch_times[160_000] < sketch_times[10_000] * 3 + 0.005
    # Exact computation grows with n (at least 4x over the 16x range).
    assert exact_times[160_000] > exact_times[10_000] * 4


def test_construction_scales_linearly_in_width(benchmark):
    rows = []
    times = {}
    matrix = benchmark.pedantic(_matrix, args=(30_000,), rounds=1, iterations=1)
    for width in (128, 512, 2048):
        start = time.perf_counter()
        sketcher = HyperplaneSketcher(n_rows=30_000, width=width, seed=2)
        sketcher.sketch_matrix(matrix)
        times[width] = time.perf_counter() - start
        rows.append({"k": width, "construction (s)": times[width]})
    report("SK-COMPLEX — single-pass construction time vs k (n = 30k, |B| = 40)", rows)
    # 16x wider sketches should cost within ~an order of magnitude more, and
    # certainly more than wider-is-free (sanity on the O(n·|B|·k) term).
    assert times[2048] > times[128]
    assert times[2048] < times[128] * 40


def test_suggested_width_is_polylog(benchmark):
    from repro.sketch.hyperplane import suggest_width

    benchmark.pedantic(suggest_width, args=(10**6,), rounds=1, iterations=1)
    rows = []
    for n_rows in (10**3, 10**4, 10**5, 10**6):
        width = suggest_width(n_rows)
        rows.append({
            "n_rows": n_rows,
            "suggested k": width,
            "2*log2(n)^2": round(2 * math.log2(n_rows) ** 2, 1),
            "k / n": width / n_rows,
        })
    report("SK-COMPLEX — k = O(log² n) sizing rule", rows)
    widths = [row["suggested k"] for row in rows]
    assert widths == sorted(widths)
    assert widths[-1] <= 4096  # polylogarithmic, never linear in n


def test_estimation_benchmark(benchmark):
    matrix = _matrix(50_000)
    sketcher = HyperplaneSketcher(n_rows=50_000, width=WIDTH, seed=3)
    sketches = sketcher.sketch_matrix(matrix)
    result = benchmark(sketcher.correlation_matrix, sketches)
    assert result.shape == (N_COLUMNS, N_COLUMNS)
