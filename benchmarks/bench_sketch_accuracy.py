"""SK-ACC — section 3 claim: ">90% accuracy" of sketch-based correlations.

The paper's initial experiments report that the hyperplane sketch estimates
Pearson correlations with more than 90% accuracy.  This benchmark measures
accuracy on synthetic workloads with planted correlation structure, three
ways:

* estimate accuracy: 1 - mean |estimate - exact| over the strongest pairs;
* relative accuracy on the strongest pairs;
* top-k ranking recall (does the sketch ranking recover the exact top-k?).

The sketch width follows the paper's k = O(log² n) guidance.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import report
from repro.data.datasets import make_numeric_table
from repro.sketch.hyperplane import HyperplaneSketcher, suggest_width
from repro.stats.correlation import correlation_matrix


def accuracy_measures(n_rows: int, n_columns: int, width: int | None, seed: int = 0,
                      top_k: int = 50) -> dict[str, float]:
    table = make_numeric_table(
        n_rows=n_rows, n_columns=n_columns, block_correlation=0.8,
        skewed_fraction=0.1, heavy_tailed_fraction=0.1, outlier_fraction=0.0,
        seed=seed,
    )
    matrix, names = table.numeric_matrix()
    exact = correlation_matrix(matrix)
    width = width or suggest_width(n_rows)
    sketcher = HyperplaneSketcher(n_rows=n_rows, width=width, seed=seed)
    approx = sketcher.correlation_matrix(sketcher.sketch_matrix(matrix))

    d = len(names)
    pairs = [(i, j) for i in range(d) for j in range(i + 1, d)]
    exact_ranked = sorted(pairs, key=lambda p: -abs(exact[p]))
    sketch_ranked = sorted(pairs, key=lambda p: -abs(approx[p]))
    top_exact = exact_ranked[:top_k]
    errors = np.array([abs(approx[p] - exact[p]) for p in top_exact])
    relative = np.array([
        abs(approx[p] - exact[p]) / abs(exact[p]) for p in top_exact if exact[p]
    ])
    recall = len(set(top_exact) & set(sketch_ranked[:top_k])) / top_k
    return {
        "n_rows": n_rows,
        "n_columns": n_columns,
        "width_k": width,
        "estimate_accuracy_%": 100.0 * (1.0 - float(errors.mean())),
        "relative_accuracy_%": 100.0 * (1.0 - float(relative.mean())),
        f"top{top_k}_recall_%": 100.0 * recall,
        "mean_abs_error_all_pairs": float(np.abs(approx - exact)[np.triu_indices(d, 1)].mean()),
    }


SWEEP = [
    (10_000, 25),
    (20_000, 50),
    (50_000, 50),
    (100_000, 25),
]


@pytest.mark.parametrize("n_rows,n_columns", SWEEP)
def test_accuracy_exceeds_ninety_percent(benchmark, n_rows, n_columns):
    measures = benchmark.pedantic(
        accuracy_measures, args=(n_rows, n_columns),
        kwargs={"width": None}, rounds=1, iterations=1,
    )
    # The paper's ">90% accuracy": the estimates of the strongest correlations
    # are within 10% (absolute) of the exact values, and the ranking recovers
    # the overwhelming majority of the true top pairs.
    assert measures["estimate_accuracy_%"] > 90.0
    # Ranking recall is noisier (near-ties swap across the top-50 boundary);
    # the bar here is "recovers the clear majority of the true top pairs".
    assert measures["top50_recall_%"] >= 70.0
    report(f"SK-ACC accuracy at n={n_rows}, d={n_columns}", [measures])


def test_accuracy_sweep_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [accuracy_measures(n, d, width=None) for n, d in SWEEP],
        rounds=1, iterations=1,
    )
    report("SK-ACC — sketch correlation accuracy sweep (k = O(log^2 n))", rows)
    assert all(row["estimate_accuracy_%"] > 88.0 for row in rows)


def test_accuracy_benchmark_estimation_only(benchmark):
    """Time the estimation step alone (all pairs from pre-built sketches)."""
    n_rows, n_columns = 50_000, 50
    table = make_numeric_table(n_rows=n_rows, n_columns=n_columns, seed=1)
    matrix, _ = table.numeric_matrix()
    sketcher = HyperplaneSketcher(n_rows=n_rows, width=suggest_width(n_rows), seed=1)
    sketches = sketcher.sketch_matrix(matrix)
    result = benchmark(sketcher.correlation_matrix, sketches)
    assert result.shape == (n_columns, n_columns)
