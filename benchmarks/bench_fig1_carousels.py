"""FIG1 — Figure 1: carousels of top-ranked insights per class.

The screenshot in Figure 1 shows 3 of the 12 insight classes for the demo
dataset — correlations, outliers and heavy tails — each as a carousel of
visualizations ranked by the class's metric with the strongest first.  This
benchmark regenerates those three carousels (top-5 each) for the OECD table,
checks the ordering invariants and the headline finding (the Working Long
Hours / Leisure correlation leads the correlation carousel), and times the
whole carousel build.
"""

from __future__ import annotations

from conftest import report

FIGURE1_CLASSES = ["linear_relationship", "outliers", "heavy_tails"]


def build_carousels(engine, top_k: int = 5):
    return engine.carousels(top_k=top_k, insight_classes=FIGURE1_CLASSES)


def test_fig1_carousel_contents(benchmark, oecd_engine):
    carousels = benchmark.pedantic(build_carousels, args=(oecd_engine,),
                                   rounds=1, iterations=1)
    by_class = {c.insight_class: c for c in carousels}

    # Correlation carousel: ranked by |Pearson rho|, strongest first, and the
    # top card is the Working Long Hours vs Leisure pair from the scenario.
    correlations = by_class["linear_relationship"]
    scores = [i.score for i in correlations]
    assert scores == sorted(scores, reverse=True)
    assert set(correlations.insights[0].attributes) == {
        "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
    }

    # Outlier and heavy-tails carousels: ranked, non-empty, correct metric.
    for name, metric in (("outliers", "avg_standardized_outlier_distance"),
                         ("heavy_tails", "kurtosis")):
        carousel = by_class[name]
        assert len(carousel) == 5
        assert all(i.metric_name == metric for i in carousel)
        values = [i.score for i in carousel]
        assert values == sorted(values, reverse=True)

    # Every carousel card has a renderable visualization spec (the paper's
    # carousels are grids of charts, not text).
    rows = []
    for carousel in carousels:
        for rank, insight in enumerate(carousel.insights, start=1):
            spec = oecd_engine.visualize(insight)
            assert spec.n_points() > 0 or spec.layers
            rows.append({
                "carousel": carousel.label,
                "rank": rank,
                "attributes": ", ".join(insight.attributes),
                "metric": insight.metric_name,
                "value": insight.score,
                "chart": spec.mark,
            })
    report("Figure 1 — carousels (OECD, top-5 per class)", rows)


def test_fig1_carousel_latency(benchmark, oecd_engine):
    carousels = benchmark(build_carousels, oecd_engine)
    assert len(carousels) == 3
