"""INGEST — live-dataset benchmark (delta merge vs rebuild, query p95).

Measures the three numbers that justify incremental sketch maintenance:

1. **ingestion throughput** — rows/sec absorbed through
   ``Workspace.append`` when every batch delta-merges into the live
   store;
2. **delta-merge vs full-rebuild latency** — the same appends with the
   accuracy budget forced to zero (every append re-preprocesses), i.e.
   what each append would cost without mergeable sketches;
3. **query latency under sustained appends** — reader threads issue
   approximate insight queries while a writer streams batches in;
   p50/p95 of the reader-observed latency show the analytical path
   staying responsive through continuous updates.

Alongside the human-readable tables it emits ``BENCH_ingest.json`` (in
the working directory, overridable via ``BENCH_INGEST_JSON``) so CI can
archive the ingest perf trajectory across PRs.

Designed as a CI smoke benchmark: seconds on a laptop, exits non-zero on
correctness problems (failed appends/queries, wrong counters, torn
provenance).  The delta-vs-rebuild speedup prints as information and
warns (not fails) below 2x — CI machines are noisy.

Run with::

    PYTHONPATH=src python benchmarks/bench_ingest.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402
from bench_util import percentile  # noqa: E402

BASE_ROWS = 20_000
N_COLUMNS = 12
BATCH_ROWS = 500
N_BATCHES = 10
N_READERS = 2
CLASSES = ("skew", "outliers", "heavy_tails")


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=N_COLUMNS,
                            n_categorical=2, seed=17)


def _batches():
    rows = make_mixed_table(n_rows=BATCH_ROWS * N_BATCHES,
                            n_numeric=N_COLUMNS, n_categorical=2,
                            seed=18).to_records()
    return [rows[i * BATCH_ROWS:(i + 1) * BATCH_ROWS]
            for i in range(N_BATCHES)]


def _workspace(rebuild_fraction: float) -> Workspace:
    table = _base_table()
    # background_rebuild=False: this benchmark *times* the synchronous
    # rebuild cost on purpose (regime 2 is the without-mergeable-sketches
    # baseline); bench_durability.py measures the background path.
    workspace = Workspace(
        ingest=IngestConfig(rebuild_fraction=rebuild_fraction,
                            background_rebuild=False))
    workspace.register("bench", lambda: table)
    workspace.engine("bench")   # build outside the timed region
    return workspace


def _time_appends(workspace: Workspace, batches) -> dict:
    latencies = []
    for batch in batches:
        started = time.perf_counter()
        workspace.append("bench", batch)
        latencies.append(time.perf_counter() - started)
    total = sum(latencies)
    return {
        "batches": len(batches),
        "batch_rows": BATCH_ROWS,
        "rows_per_sec": BATCH_ROWS * len(batches) / total,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "total_seconds": total,
    }


def main() -> int:
    ok = True
    batches = _batches()
    results: dict[str, dict] = {}

    # -- regime 1: every append delta-merges ---------------------------------
    workspace = _workspace(rebuild_fraction=float("inf"))
    results["delta_merge"] = _time_appends(workspace, batches)
    stats = workspace.ingest_stats()["totals"]
    if stats["delta_merges"] != N_BATCHES or stats["rebuilds"] != 0:
        print(f"FAIL: delta regime counters off: {stats}", file=sys.stderr)
        ok = False

    # -- regime 2: every append pays a full rebuild --------------------------
    workspace = _workspace(rebuild_fraction=0.0)
    results["rebuild"] = _time_appends(workspace, batches)
    stats = workspace.ingest_stats()["totals"]
    if stats["rebuilds"] != N_BATCHES:
        print(f"FAIL: rebuild regime counters off: {stats}", file=sys.stderr)
        ok = False

    # -- regime 3: queries racing sustained appends --------------------------
    workspace = _workspace(rebuild_fraction=float("inf"))
    request = InsightRequest(dataset="bench", insight_classes=CLASSES,
                             top_k=3, mode="approximate")
    workspace.handle(request)   # warm the first snapshot
    query_latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()
    stop = threading.Event()

    def reader() -> None:
        try:
            while not stop.is_set():
                started = time.perf_counter()
                response = workspace.handle(request)
                elapsed = time.perf_counter() - started
                with lock:
                    query_latencies.append(elapsed)
                if response.dataset_version != 1:
                    with lock:
                        failures.append("unexpected version "
                                        f"{response.dataset_version}")
        except Exception as exc:  # noqa: BLE001 - reported below
            with lock:
                failures.append(repr(exc))

    readers = [threading.Thread(target=reader) for _ in range(N_READERS)]
    for thread in readers:
        thread.start()
    ingest_started = time.perf_counter()
    for batch in batches:
        workspace.append("bench", batch)
    ingest_seconds = time.perf_counter() - ingest_started
    # Let the readers observe the final snapshot before stopping.
    final = workspace.handle(request)
    stop.set()
    for thread in readers:
        thread.join()
    if failures:
        print(f"FAIL: racing queries failed: {failures[:3]}", file=sys.stderr)
        ok = False
    if final.dataset_seq != N_BATCHES:
        print(f"FAIL: final seq {final.dataset_seq} != {N_BATCHES}",
              file=sys.stderr)
        ok = False
    stats = workspace.ingest_stats()["totals"]
    if stats["rebuilds"] != 0:
        print("FAIL: sustained-append regime rebuilt the store",
              file=sys.stderr)
        ok = False
    results["under_appends"] = {
        "queries": len(query_latencies),
        "readers": N_READERS,
        "ingest_rows_per_sec": BATCH_ROWS * N_BATCHES / ingest_seconds,
        "query_p50_seconds": percentile(query_latencies, 0.50),
        "query_p95_seconds": percentile(query_latencies, 0.95),
    }

    # -- report ---------------------------------------------------------------
    speedup = (results["rebuild"]["p50_seconds"]
               / max(results["delta_merge"]["p50_seconds"], 1e-9))
    rows = [
        {
            "regime": regime,
            "rows/sec": f"{stats['rows_per_sec']:.0f}",
            "append p50": f"{stats['p50_seconds'] * 1000:.1f} ms",
            "append p95": f"{stats['p95_seconds'] * 1000:.1f} ms",
        }
        for regime, stats in results.items()
        if "rows_per_sec" in stats
    ]
    print()
    print(f"== INGEST: {N_BATCHES} batches x {BATCH_ROWS} rows onto "
          f"{BASE_ROWS} x {N_COLUMNS + 2} base ==")
    print(render_table(rows))
    under = results["under_appends"]
    print(f"delta-merge vs rebuild append p50: {speedup:.1f}x faster   "
          f"query p95 under sustained appends: "
          f"{under['query_p95_seconds'] * 1000:.1f} ms "
          f"({under['queries']} queries from {N_READERS} readers)")
    if speedup < 2.0:
        print(f"WARN: delta-merge speedup {speedup:.2f}x below the 2x "
              "target (noisy CI hardware?)", file=sys.stderr)

    payload = {
        "benchmark": "ingest",
        "workload": {
            "base_rows": BASE_ROWS,
            "n_columns": N_COLUMNS + 2,
            "batch_rows": BATCH_ROWS,
            "n_batches": N_BATCHES,
            "n_readers": N_READERS,
            "insight_classes": list(CLASSES),
        },
        "results": results,
        "delta_vs_rebuild_speedup_p50": speedup,
        "ok": ok,
    }
    out_path = Path(os.environ.get("BENCH_INGEST_JSON", "BENCH_ingest.json"))
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
