"""SK-SPEED — section 3 claim: "3x-4x speedup in preprocessing".

The paper compares preprocessing with sketches against exact preprocessing.
"Preprocessing" here means computing everything an insight-query engine
needs before interaction starts:

* exact pipeline — per-column moments, quantiles, frequency tables, outlier
  detection, and the all-pairs Pearson correlation matrix computed directly
  from the raw data (pairwise-complete, because real tables have missing
  cells);
* sketch pipeline — the :class:`~repro.sketch.store.SketchStore` build
  (single pass: moment sketches, quantile sketches, frequent-items /
  entropy sketches, hyperplane signatures) followed by the all-pairs
  correlation estimate from signatures.

Absolute times differ from the paper's (different hardware and stack); the
claim under test is the *shape*: the sketch pipeline is a multiple faster,
and the gap grows with the number of rows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import report
from repro.data.datasets import make_numeric_table
from repro.sketch.store import SketchStore, SketchStoreConfig
from repro.stats import (
    average_standardized_distance,
    correlation_matrix,
    five_number_summary,
    moment_summary,
)

MISSING_RATE = 0.02


def make_workload(n_rows: int, n_columns: int, seed: int = 3):
    return make_numeric_table(
        n_rows=n_rows, n_columns=n_columns, block_correlation=0.7,
        missing_rate=MISSING_RATE, seed=seed,
    )


def exact_preprocess(table) -> dict:
    """The exact counterpart of the sketch store build."""
    summaries = {}
    for name in table.numeric_names():
        values = table.numeric_column(name).valid_values()
        summaries[name] = {
            "moments": moment_summary(values),
            "quantiles": five_number_summary(values),
            "outliers": average_standardized_distance(values, "iqr"),
        }
    matrix, names = table.numeric_matrix()
    summaries["__correlations__"] = correlation_matrix(matrix)
    return summaries


def sketch_preprocess(table) -> SketchStore:
    store = SketchStore(table, config=SketchStoreConfig(seed=0))
    store.approx_correlation_matrix()
    return store


def measure_speedup(n_rows: int, n_columns: int) -> dict[str, float]:
    table = make_workload(n_rows, n_columns)
    start = time.perf_counter()
    exact_preprocess(table)
    exact_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sketch_preprocess(table)
    sketch_seconds = time.perf_counter() - start
    return {
        "n_rows": n_rows,
        "n_columns": n_columns,
        "exact_preprocess_s": exact_seconds,
        "sketch_preprocess_s": sketch_seconds,
        "speedup_x": exact_seconds / max(sketch_seconds, 1e-9),
    }


def test_preprocessing_speedup_shape(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            measure_speedup(20_000, 120),
            measure_speedup(50_000, 120),
            measure_speedup(100_000, 120),
        ],
        rounds=1, iterations=1,
    )
    report("SK-SPEED — preprocessing: exact vs sketch (2% missing cells)", rows)
    # Shape of the claim: sketch preprocessing wins by a clear multiple at
    # every scale (the paper reports 3x-4x on its workloads; we observe
    # roughly 3.5x-6x on this substrate).
    assert all(row["speedup_x"] > 2.0 for row in rows)
    assert max(row["speedup_x"] for row in rows) > 3.0


@pytest.mark.parametrize("n_rows", [20_000, 50_000])
def test_sketch_preprocess_benchmark(benchmark, n_rows):
    table = make_workload(n_rows, 120)
    store = benchmark.pedantic(sketch_preprocess, args=(table,), rounds=1, iterations=1)
    assert store.stats.n_numeric == 120


@pytest.mark.parametrize("n_rows", [20_000, 50_000])
def test_exact_preprocess_benchmark(benchmark, n_rows):
    table = make_workload(n_rows, 120)
    summaries = benchmark.pedantic(exact_preprocess, args=(table,), rounds=1, iterations=1)
    assert isinstance(summaries["__correlations__"], np.ndarray)
