"""DEMO-SCALE — end-to-end insight generation on the three demo datasets.

Section 4.2 demonstrates Foresight on three datasets: OECD wellbeing
(35 x 25), Parkinson's progression (2 000 x 50) and IMDB movies (5 000 x 28).
This benchmark runs the full pipeline (preprocess + all twelve carousels) on
each and records the cost, plus the headline findings the demo highlights.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro import Foresight
from repro.data.datasets import load_imdb, load_oecd, load_parkinson


def full_pipeline(table):
    engine = Foresight(table)
    carousels = engine.carousels(top_k=3)
    return engine, carousels


DATASETS = {
    "oecd": (load_oecd, (35, 25)),
    "parkinson": (load_parkinson, (2000, 50)),
    "imdb": (load_imdb, (5000, 28)),
}


@pytest.mark.parametrize("name", list(DATASETS))
def test_demo_dataset_pipeline(benchmark, name):
    loader, expected_shape = DATASETS[name]
    table = loader()
    assert table.shape == expected_shape
    engine, carousels = benchmark.pedantic(
        full_pipeline, args=(table,), rounds=1, iterations=1
    )
    populated = [c for c in carousels if c.insights]
    assert len(populated) >= 9  # most classes produce insights on every demo dataset
    rows = [
        {
            "carousel": carousel.label,
            "top attributes": ", ".join(carousel.insights[0].attributes) if carousel.insights else "-",
            "metric value": carousel.insights[0].score if carousel.insights else None,
            "latency (ms)": carousel.elapsed_seconds * 1000.0,
        }
        for carousel in carousels
    ]
    report(f"DEMO-SCALE — {name} ({table.n_rows} x {table.n_columns})", rows)


def test_demo_headline_findings(benchmark):
    oecd_engine, _ = benchmark.pedantic(full_pipeline, args=(load_oecd(),),
                                        rounds=1, iterations=1)
    top = oecd_engine.query("linear_relationship", top_k=1).top()
    assert set(top.attributes) == {"EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure"}

    imdb_engine, _ = full_pipeline(load_imdb())
    profit = imdb_engine.query(
        "linear_relationship", top_k=5, fixed=("ProfitMillions",), mode="exact"
    )
    assert any(i.involves("GrossMillions") or i.involves("Gross") for i in profit)

    parkinson_engine, _ = full_pipeline(load_parkinson())
    updrs = parkinson_engine.query(
        "linear_relationship", top_k=5, fixed=("UPDRS_Total",), mode="exact"
    )
    assert updrs.top().score > 0.8
