"""SCEN — section 4.1 usage scenario, end to end.

Replays the analyst's session on the OECD dataset and checks each qualitative
finding the paper reports, then times the full scenario (the interaction loop
must feel interactive).
"""

from __future__ import annotations

from conftest import report
from repro import ExplorationSession


def run_scenario(engine) -> dict[str, float]:
    """Run all scenario steps; return the quantities behind each finding."""
    session = ExplorationSession(engine, name="scenario")
    findings: dict[str, float] = {}

    # Step 1: top correlation card.
    carousel = session.carousels(top_k=3, insight_classes=["linear_relationship"])[0]
    top = carousel.insights[0]
    findings["top_correlation"] = top.details["correlation"]

    # Step 2: focus it; neighborhood recommendations update.
    session.focus(top)
    nearby = session.recommend_near_focus("linear_relationship", top_k=5)
    findings["n_nearby"] = len(nearby)

    # Step 3: leisure vs self-reported health has no correlation.
    leisure_pairs = engine.query(
        "linear_relationship", top_k=50, fixed=("TimeDevotedToLeisure",), mode="exact"
    )
    health_pair = next(i for i in leisure_pairs if i.involves("SelfReportedHealth"))
    findings["leisure_health_correlation"] = health_pair.details["correlation"]

    # Step 4: distribution shapes.
    shapes = {i.attributes[0]: i for i in engine.query("normality", top_k=30, mode="exact")}
    findings["leisure_is_normal"] = float(
        shapes["TimeDevotedToLeisure"].details["shape"] == "approximately normal"
    )
    findings["health_is_left_skewed"] = float(
        shapes["SelfReportedHealth"].details["shape"] == "left-skewed"
    )

    # Step 5: focusing health surfaces the life-satisfaction correlation.
    session.focus(shapes["SelfReportedHealth"])
    recommended = session.recommend_near_focus("linear_relationship", top_k=5)
    pair = next(
        i for i in recommended
        if set(i.attributes) == {"SelfReportedHealth", "LifeSatisfaction"}
    )
    findings["health_lifesat_correlation"] = pair.details["correlation"]

    # Step 6: save / restore.
    restored = ExplorationSession.restore(engine, session.save())
    findings["restored_focus_count"] = len(restored.focused_insights)
    return findings


def test_scenario_findings_match_paper(benchmark, oecd_engine):
    findings = benchmark.pedantic(run_scenario, args=(oecd_engine,),
                                  rounds=1, iterations=1)
    assert findings["top_correlation"] < -0.8          # strong negative correlation
    assert findings["n_nearby"] == 5                   # recommendations update
    assert abs(findings["leisure_health_correlation"]) < 0.1   # "no correlation"
    assert findings["leisure_is_normal"] == 1.0
    assert findings["health_is_left_skewed"] == 1.0
    assert findings["health_lifesat_correlation"] > 0.8        # "highly correlated"
    assert findings["restored_focus_count"] == 2
    report(
        "Section 4.1 scenario — findings",
        [{"finding": key, "value": value} for key, value in findings.items()],
    )


def test_scenario_latency(benchmark, oecd_engine):
    findings = benchmark(run_scenario, oecd_engine)
    assert findings["health_lifesat_correlation"] > 0.8
