"""Shared helpers for the benchmark scripts.

Benchmarks run as plain scripts (``python benchmarks/bench_*.py``), so
the script directory itself is on ``sys.path`` and this module imports
as ``import bench_util``.
"""

from __future__ import annotations

import math


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (one implementation for every
    BENCH_*.json, so p50/p95 are computed identically across benchmarks).

    Uses the ceil-based nearest-rank definition: the smallest value with
    at least ``q`` of the mass at or below it.  ``round()`` would banker's-
    round ``.5`` ranks down to even and bias p50/p95 low on small samples.
    """
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * (len(ordered) - 1))))
    return ordered[index]
