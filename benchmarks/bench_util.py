"""Shared helpers for the benchmark scripts.

Benchmarks run as plain scripts (``python benchmarks/bench_*.py``), so
the script directory itself is on ``sys.path`` and this module imports
as ``import bench_util``.
"""

from __future__ import annotations


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (one implementation for every
    BENCH_*.json, so p50/p95 are computed identically across benchmarks)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]
