"""REPLICATION — journal-fed read replicas benchmark (ISSUE 10).

Measures the two numbers that price the replication subsystem:

1. **read throughput vs replica count** — queries/sec served by a
   fixed reader pool against the primary alone, then with the same
   reads spread round-robin over N journal-fed replicas: the scaling
   story replicas exist for (on a single-core CI box the scaling is a
   WARN, not a FAIL — the replicas contend for the same core);
2. **replication lag under sustained appends** — an appender hammers
   the primary while a tailing replica syncs on an interval; reports
   the observed lag distribution (in journal records) and the time to
   fully drain once the appender stops.  The replica must end
   byte-identical to a restarted primary — that part is a FAIL, not a
   WARN.

Emits ``BENCH_replication.json`` (working directory, overridable via
``BENCH_REPLICATION_JSON``) for CI archiving.  Exits non-zero on
correctness problems — divergent replica payloads, lag that never
drains — and only *warns* on perf expectations.

Run with::

    PYTHONPATH=src python benchmarks/bench_replication.py
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import InsightRequest, Workspace  # noqa: E402
from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.service import LocalFeedSource, ReplicaWorkspace  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402
from bench_util import percentile  # noqa: E402

BASE_ROWS = 4_000
N_COLUMNS = 6
CLASSES = ("skew", "outliers")
REPLICA_COUNTS = (0, 1, 2)
READER_THREADS = 4
READ_WINDOW_S = 1.5
LAG_APPENDS = 40
LAG_BATCH_ROWS = 25
LAG_POLL_S = 0.02
DRAIN_TIMEOUT_S = 30.0


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=N_COLUMNS,
                            n_categorical=2, seed=23)


def _rows(n: int):
    return make_mixed_table(n_rows=n, n_numeric=N_COLUMNS, n_categorical=2,
                            seed=24).to_records()


def _request():
    return InsightRequest(dataset="bench", insight_classes=CLASSES, top_k=3,
                          mode="approximate")


def _payload(response) -> str:
    body = response.to_dict()
    body.pop("timing")
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _primary(data_dir: str) -> Workspace:
    workspace = Workspace(
        data_dir=data_dir,
        ingest=IngestConfig(rebuild_fraction=float("inf")))
    # Concrete registration journals the base rows: self-contained
    # durable state, the precondition for loader-less replicas.
    workspace.register("bench", _base_table())
    return workspace


# ---------------------------------------------------------------------------
# 1: read throughput vs replica count
# ---------------------------------------------------------------------------
def _read_throughput(n_replicas: int, failures: list[str]) -> dict:
    request = _request()
    with tempfile.TemporaryDirectory() as data_dir:
        primary = _primary(data_dir)
        primary.append("bench", _rows(100))
        replicas = []
        for _ in range(n_replicas):
            replica = ReplicaWorkspace(LocalFeedSource(data_dir))
            replica.sync()
            replicas.append(replica)
        # Every backend must answer with the same bytes before it is
        # allowed into the rotation (the whole point of replication).
        reference = _payload(primary.handle(request))
        for index, replica in enumerate(replicas):
            if _payload(replica.handle(request)) != reference:
                failures.append(f"replica {index} diverged from the primary")
        targets = [primary, *replicas]
        rotation = itertools.count()
        counts = [0] * READER_THREADS
        stop = threading.Event()

        def reader(slot: int) -> None:
            try:
                while not stop.is_set():
                    target = targets[next(rotation) % len(targets)]
                    # Invalidate so every query runs the real pipeline
                    # instead of the per-workspace result cache.
                    target.invalidate("bench")
                    target.handle(request)
                    counts[slot] += 1
            except Exception as exc:  # noqa: BLE001 - fails the benchmark
                failures.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(READER_THREADS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(READ_WINDOW_S)
        stop.set()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        for replica in replicas:
            replica.close()
        primary.close()
    total = sum(counts)
    return {
        "replicas": n_replicas,
        "readers": READER_THREADS,
        "queries": total,
        "queries_per_sec": total / elapsed if elapsed else float("inf"),
        "elapsed_seconds": elapsed,
    }


# ---------------------------------------------------------------------------
# 2: replication lag under sustained appends
# ---------------------------------------------------------------------------
def _lag_under_appends(failures: list[str]) -> dict:
    rows = _rows(LAG_APPENDS * LAG_BATCH_ROWS)
    with tempfile.TemporaryDirectory() as data_dir:
        primary = _primary(data_dir)
        replica = ReplicaWorkspace(LocalFeedSource(data_dir))
        replica.sync()
        replica.start_tailing(interval=LAG_POLL_S)
        lags: list[int] = []
        appender_done = threading.Event()

        def sampler() -> None:
            while not appender_done.is_set():
                lags.append(replica.replica_lag().get("bench", 0))
                time.sleep(LAG_POLL_S)

        watcher = threading.Thread(target=sampler)
        watcher.start()
        append_started = time.perf_counter()
        for i in range(LAG_APPENDS):
            primary.append("bench",
                           rows[i * LAG_BATCH_ROWS:(i + 1) * LAG_BATCH_ROWS])
        append_seconds = time.perf_counter() - append_started
        appender_done.set()
        watcher.join()

        # Drain: the replica must fully catch up once appends stop.
        drain_started = time.perf_counter()
        deadline = drain_started + DRAIN_TIMEOUT_S
        target_state = primary.state("bench")
        while time.perf_counter() < deadline:
            if (replica.replica_lag().get("bench") == 0
                    and replica.state("bench") == target_state):
                break
            time.sleep(LAG_POLL_S)
        drain_seconds = time.perf_counter() - drain_started
        replica.stop_tailing()
        if replica.state("bench") != target_state:
            failures.append(
                f"replica never drained: {replica.state('bench')} != "
                f"{target_state} after {DRAIN_TIMEOUT_S}s")
        else:
            # Byte-identity at the drained position, against a restarted
            # primary replaying the same journal.
            restarted = Workspace(
                data_dir=data_dir,
                ingest=IngestConfig(rebuild_fraction=float("inf")))
            if _payload(replica.handle(_request())) != \
                    _payload(restarted.handle(_request())):
                failures.append("drained replica payload differs from a "
                                "restarted primary")
            restarted.close()
        stats = replica.ingest_stats()["replica"]["datasets"].get("bench", {})
        replica.close()
        primary.close()
    return {
        "appends": LAG_APPENDS,
        "rows_per_append": LAG_BATCH_ROWS,
        "append_seconds": append_seconds,
        "drain_seconds": drain_seconds,
        "applied_records": stats.get("applied_records", 0),
        "resets": stats.get("resets", 0),
        "lag_samples": len(lags),
        "lag_p50": percentile([float(lag) for lag in lags], 0.50) if lags
        else 0.0,
        "lag_p95": percentile([float(lag) for lag in lags], 0.95) if lags
        else 0.0,
        "lag_max": max(lags) if lags else 0,
    }


def main() -> int:
    ok = True
    results: dict[str, object] = {}
    failures: list[str] = []

    # -- 1: read throughput vs replica count --------------------------------
    scaling = [_read_throughput(count, failures)
               for count in REPLICA_COUNTS]
    results["read_scaling"] = scaling
    print("Read throughput vs replica count "
          f"({READER_THREADS} reader threads)")
    print(render_table([
        {"replicas": str(entry["replicas"]),
         "queries": str(entry["queries"]),
         "queries/sec": f"{entry['queries_per_sec']:.1f}"}
        for entry in scaling
    ]))
    best = max(entry["queries_per_sec"] for entry in scaling[1:])
    baseline = scaling[0]["queries_per_sec"]
    if best < baseline:
        print(f"WARN: replicas did not add read throughput "
              f"({best:.1f} <= {baseline:.1f} q/s); expected on a "
              "single-core box where every workspace shares the CPU",
              file=sys.stderr)

    # -- 2: bounded lag under sustained appends ------------------------------
    lag = _lag_under_appends(failures)
    results["lag_under_appends"] = lag
    print("\nReplication lag under sustained appends")
    print(render_table([{
        "appends": str(lag["appends"]),
        "applied": str(lag["applied_records"]),
        "lag p50": f"{lag['lag_p50']:.0f}",
        "lag p95": f"{lag['lag_p95']:.0f}",
        "lag max": str(lag["lag_max"]),
        "drain s": f"{lag['drain_seconds']:.2f}",
    }]))
    if lag["lag_max"] > LAG_APPENDS:
        print(f"WARN: peak lag {lag['lag_max']} exceeded the whole append "
              f"run ({LAG_APPENDS} records)", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        ok = False

    results["failures"] = failures
    target = os.environ.get("BENCH_REPLICATION_JSON",
                            "BENCH_replication.json")
    Path(target).write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
