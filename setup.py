"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs also work in offline environments that lack the
``wheel`` package required by the PEP 517/660 build path
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
