"""Setuptools metadata.

Kept as executable setup.py (rather than the PEP 517/660 path) so that
editable installs also work in offline environments that lack the
``wheel`` package required by build isolation
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="foresight-repro",
    version="1.2.0",
    description=(
        "Reproduction of 'Foresight: Recommending Visual Insights' "
        "(VLDB 2017) with a multi-dataset serving layer and an asyncio "
        "HTTP transport"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.server.__main__:main",
            "repro-lint=repro.analysis.__main__:main",
        ],
    },
)
