"""AdmissionController unit tests (event-loop level, no sockets)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionRejected
from repro.server import AdmissionController


def run(coro):
    return asyncio.run(coro)


class TestCapacityAndQueue:
    def test_admit_and_release_track_in_flight(self):
        async def scenario():
            controller = AdmissionController(max_in_flight=2, queue_limit=0)
            await controller.acquire(["a"], ["skew"])
            assert controller.snapshot()["in_flight"] == 1
            async with controller.admit(["b"], ["outliers"]):
                assert controller.snapshot()["in_flight"] == 2
            await controller.release(["a"], ["skew"])
            snapshot = controller.snapshot()
            assert snapshot["in_flight"] == 0
            assert snapshot["admitted_total"] == 2
            assert snapshot["in_flight_by_dataset"] == {}
            assert snapshot["in_flight_by_class"] == {}

        run(scenario())

    def test_queueing_waits_for_a_slot(self):
        async def scenario():
            controller = AdmissionController(max_in_flight=1, queue_limit=2)
            await controller.acquire(["a"], ["skew"])
            admitted = []

            async def queued(tag):
                async with controller.admit(["a"], ["skew"]):
                    admitted.append(tag)

            tasks = [asyncio.create_task(queued(i)) for i in range(2)]
            await asyncio.sleep(0.01)
            snapshot = controller.snapshot()
            assert snapshot["queued"] == 2
            assert admitted == []
            await controller.release(["a"], ["skew"])
            await asyncio.gather(*tasks)
            assert sorted(admitted) == [0, 1]
            assert controller.snapshot()["queued_total"] == 2

        run(scenario())

    def test_queue_overflow_rejects_503(self):
        async def scenario():
            controller = AdmissionController(
                max_in_flight=1, queue_limit=0, retry_after=0.5
            )
            await controller.acquire(["a"], ["skew"])
            with pytest.raises(AdmissionRejected) as info:
                await controller.acquire(["b"], ["skew"])
            assert info.value.status == 503
            assert info.value.code == "overloaded"
            assert info.value.retry_after == 0.5
            assert controller.snapshot()["rejected_overload_total"] == 1

        run(scenario())


class TestQuotas:
    def test_dataset_quota_rejects_429_without_queueing(self):
        async def scenario():
            controller = AdmissionController(
                max_in_flight=8, queue_limit=8, dataset_quota=1
            )
            await controller.acquire(["a"], ["skew"])
            with pytest.raises(AdmissionRejected) as info:
                await controller.acquire(["a"], ["outliers"])
            assert info.value.status == 429
            assert info.value.code == "dataset_quota_exceeded"
            snapshot = controller.snapshot()
            assert snapshot["rejected_quota_total"] == 1
            assert snapshot["queued"] == 0
            # Another dataset is unaffected by the quota of the first.
            await controller.acquire(["b"], ["outliers"])

        run(scenario())

    def test_class_quota_rejects_429(self):
        async def scenario():
            controller = AdmissionController(
                max_in_flight=8, queue_limit=8, class_quota=1
            )
            await controller.acquire(["a"], ["skew", "outliers"])
            with pytest.raises(AdmissionRejected) as info:
                await controller.acquire(["b"], ["skew"])
            assert info.value.status == 429
            assert info.value.code == "class_quota_exceeded"
            # A class not in flight is still admissible.
            await controller.acquire(["b"], ["dispersion"])

        run(scenario())

    def test_batch_counts_each_distinct_key_once(self):
        async def scenario():
            controller = AdmissionController(max_in_flight=4, dataset_quota=2)
            # The same dataset twice in one batch consumes one quota unit.
            await controller.acquire(["a", "a", "b"], ["skew", "skew"])
            snapshot = controller.snapshot()
            assert snapshot["in_flight"] == 1
            assert snapshot["in_flight_by_dataset"] == {"a": 1, "b": 1}
            assert snapshot["in_flight_by_class"] == {"skew": 1}
            await controller.release(["a", "a", "b"], ["skew", "skew"])
            assert controller.snapshot()["in_flight_by_dataset"] == {}

        run(scenario())

    def test_release_wakes_queued_waiter(self):
        async def scenario():
            controller = AdmissionController(max_in_flight=1, queue_limit=4)
            await controller.acquire(["a"], ["skew"])
            order = []

            async def waiter():
                await controller.acquire(["a"], ["skew"])
                order.append("waiter")
                await controller.release(["a"], ["skew"])

            task = asyncio.create_task(waiter())
            await asyncio.sleep(0.01)
            order.append("releasing")
            await controller.release(["a"], ["skew"])
            await task
            assert order == ["releasing", "waiter"]
            assert controller.snapshot()["peak_queued"] == 1

        run(scenario())


class TestValidation:
    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)
