"""LatencyHistogram and ServerMetrics unit tests."""

from __future__ import annotations

import threading

from repro.server import LatencyHistogram, ServerMetrics


class TestLatencyHistogram:
    def test_empty_histogram_has_no_percentiles(self):
        histogram = LatencyHistogram()
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_seconds"] is None
        assert snapshot["p95_seconds"] is None

    def test_observations_land_in_the_right_buckets(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0005)   # <= 1ms
        histogram.observe(0.003)    # <= 5ms
        histogram.observe(0.2)      # <= 250ms
        histogram.observe(99.0)     # overflow
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["buckets"]["le_0.001"] == 1
        assert snapshot["buckets"]["le_0.005"] == 1
        assert snapshot["buckets"]["le_0.25"] == 1
        assert snapshot["buckets"]["le_inf"] == 1
        assert snapshot["max_seconds"] == 99.0

    def test_quantiles_are_upper_bound_estimates(self):
        histogram = LatencyHistogram()
        for _ in range(95):
            histogram.observe(0.002)   # bucket le_0.0025
        for _ in range(5):
            histogram.observe(0.4)     # bucket le_0.5
        assert histogram.quantile(0.50) == 0.0025
        assert histogram.quantile(0.95) == 0.0025
        assert histogram.quantile(0.99) == 0.5

    def test_overflow_quantile_reports_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe(42.0)
        assert histogram.quantile(0.95) == 42.0


class TestServerMetrics:
    def test_snapshot_shape_and_counting(self):
        metrics = ServerMetrics()
        metrics.record_request("insights")
        metrics.record_request("insights")
        metrics.record_request("healthz")
        metrics.record_response(200, 0.01)
        metrics.record_response(200, 0.02)
        metrics.record_response(404)
        metrics.record_rejection(429)
        metrics.record_rejection(503)
        metrics.record_batch(3, 0.004)
        metrics.record_direct()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["total"] == 3
        assert snapshot["requests"]["by_endpoint"] == {"insights": 2, "healthz": 1}
        assert snapshot["responses"]["by_status"] == {"200": 2, "404": 1}
        assert snapshot["responses"]["rejected_quota"] == 1
        assert snapshot["responses"]["rejected_overload"] == 1
        assert snapshot["coalesce"]["batches"] == 1
        assert snapshot["coalesce"]["coalesced_requests"] == 3
        assert snapshot["coalesce"]["direct_requests"] == 1
        assert snapshot["latency"]["count"] == 2

    def test_thread_safety_of_counters(self):
        metrics = ServerMetrics()

        def hammer():
            for _ in range(500):
                metrics.record_request("insights")
                metrics.record_response(200, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["total"] == 2000
        assert snapshot["latency"]["count"] == 2000
