"""RequestCoalescer unit tests with a scripted dispatcher (no sockets)."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import RequestCoalescer, ServerMetrics
from repro.service import InsightRequest, InsightResponse


def make_request(top_k: int = 3) -> InsightRequest:
    return InsightRequest(dataset="demo", insight_classes=("skew",), top_k=top_k)


def make_response(request: InsightRequest) -> InsightResponse:
    return InsightResponse(
        dataset=request.dataset,
        dataset_version=1,
        carousels=[{"insight_class": "skew", "label": "Skew", "insights": [],
                    "n_admitted": request.top_k, "truncated": False}],
        provenance={"cache": "miss", "batch": {"index": 0, "size": 1,
                                               "max_workers": 1}},
    )


class _ScriptedDispatch:
    """Records batches; returns one response (or scripted error) per item."""

    def __init__(self, fail_top_k: int | None = None):
        self.batches: list[list[InsightRequest]] = []
        self._fail_top_k = fail_top_k

    def __call__(self, requests):
        self.batches.append(list(requests))
        results = []
        for request in requests:
            if self._fail_top_k is not None and request.top_k == self._fail_top_k:
                results.append(ValueError(f"scripted failure for {request.top_k}"))
            else:
                results.append(make_response(request))
        return results


class TestBatching:
    def test_concurrent_submits_coalesce_into_one_batch(self):
        async def scenario():
            dispatch = _ScriptedDispatch()
            coalescer = RequestCoalescer(dispatch, window=0.02, max_batch=8)
            responses = await asyncio.gather(
                coalescer.submit(make_request(1)),
                coalescer.submit(make_request(2)),
                coalescer.submit(make_request(3)),
            )
            assert len(dispatch.batches) == 1
            assert [r.top_k for r in dispatch.batches[0]] == [1, 2, 3]
            # Responses map back to their own submitters, in order.
            assert [r.provenance["coalesced"]["index"] for r in responses] == [0, 1, 2]
            assert all(r.provenance["coalesced"]["size"] == 3 for r in responses)
            # The transport-layer entry replaces handle_many's batch entry.
            assert all("batch" not in r.provenance for r in responses)

        asyncio.run(scenario())

    def test_max_batch_flushes_without_waiting_for_the_window(self):
        async def scenario():
            dispatch = _ScriptedDispatch()
            # A window far longer than the test: only the size trigger can flush.
            coalescer = RequestCoalescer(dispatch, window=30.0, max_batch=2)
            await asyncio.gather(
                coalescer.submit(make_request(1)), coalescer.submit(make_request(2))
            )
            assert len(dispatch.batches) == 1
            assert len(dispatch.batches[0]) == 2

        asyncio.run(scenario())

    def test_sequential_submits_with_gaps_stay_separate(self):
        async def scenario():
            dispatch = _ScriptedDispatch()
            coalescer = RequestCoalescer(dispatch, window=0.005, max_batch=8)
            await coalescer.submit(make_request(1))
            await coalescer.submit(make_request(2))
            assert len(dispatch.batches) == 2

        asyncio.run(scenario())

    def test_metrics_record_batches(self):
        async def scenario():
            metrics = ServerMetrics()
            dispatch = _ScriptedDispatch()
            coalescer = RequestCoalescer(
                dispatch, window=0.02, max_batch=8, metrics=metrics
            )
            await asyncio.gather(
                coalescer.submit(make_request(1)), coalescer.submit(make_request(2))
            )
            snapshot = metrics.snapshot()["coalesce"]
            assert snapshot["batches"] == 1
            assert snapshot["coalesced_requests"] == 2
            assert snapshot["max_batch_size"] == 2

        asyncio.run(scenario())


class TestFailureIsolation:
    def test_exception_item_fails_only_its_own_caller(self):
        async def scenario():
            dispatch = _ScriptedDispatch(fail_top_k=2)
            coalescer = RequestCoalescer(dispatch, window=0.02, max_batch=8)
            results = await asyncio.gather(
                coalescer.submit(make_request(1)),
                coalescer.submit(make_request(2)),
                coalescer.submit(make_request(3)),
                return_exceptions=True,
            )
            assert isinstance(results[0], InsightResponse)
            assert isinstance(results[1], ValueError)
            assert isinstance(results[2], InsightResponse)
            assert len(dispatch.batches) == 1

        asyncio.run(scenario())

    def test_dispatcher_crash_fails_the_whole_batch(self):
        async def scenario():
            def dispatch(requests):
                raise RuntimeError("engine exploded")

            coalescer = RequestCoalescer(dispatch, window=0.02, max_batch=8)
            results = await asyncio.gather(
                coalescer.submit(make_request(1)),
                coalescer.submit(make_request(2)),
                return_exceptions=True,
            )
            assert all(isinstance(r, RuntimeError) for r in results)

        asyncio.run(scenario())


class TestLifecycle:
    def test_aclose_flushes_the_pending_batch(self):
        async def scenario():
            dispatch = _ScriptedDispatch()
            # The window never fires inside the test; only aclose flushes.
            coalescer = RequestCoalescer(dispatch, window=30.0, max_batch=8)
            task = asyncio.create_task(coalescer.submit(make_request(1)))
            await asyncio.sleep(0.01)
            assert coalescer.pending == 1
            await coalescer.aclose()
            response = await task
            assert response.provenance["coalesced"] == {"index": 0, "size": 1}
            with pytest.raises(RuntimeError):
                await coalescer.submit(make_request(2))

        asyncio.run(scenario())

    def test_validation(self):
        def dispatch(requests):  # pragma: no cover - never dispatched
            return []

        with pytest.raises(ValueError):
            RequestCoalescer(dispatch, window=-1.0)
        with pytest.raises(ValueError):
            RequestCoalescer(dispatch, max_batch=0)
