"""The ``/v1/debug`` surface over real sockets.

Shape of the debug document, the ``debug=true`` per-request cost echo
(and its cache-key neutrality), the ``since_ms`` trace cursor, and the
Prometheus exposition of every resource-accounting series.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import make_mixed_table
from repro.server import (
    ReproClient,
    ServerConfig,
    ServerResponseError,
    serving,
)
from repro.service import InsightRequest, Workspace


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n_rows=300, n_numeric=4, n_categorical=2, seed=23)


@pytest.fixture()
def workspace(table):
    workspace = Workspace()
    workspace.register("demo", lambda: table)
    return workspace


def _request(top_k: int = 3) -> InsightRequest:
    return InsightRequest(dataset="demo", insight_classes=("skew", "outliers"),
                          top_k=top_k)


class TestDebugEndpoint:
    def test_document_shape(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                document = client.debug()
        assert document["protocol"] == 1
        assert document["resources_enabled"] is True
        memory = document["memory"]
        assert {"table", "sketches"} <= set(memory["components"])
        assert "result_cache" in memory["components"]
        assert "trace_ring" in memory["components"]
        assert memory["datasets"]["demo"]["table"] > 0
        assert memory["total_bytes"] == sum(memory["components"].values())
        costs = document["costs"]
        assert costs["requests_total"] >= 1
        assert costs["datasets"]["demo"]["requests"] >= 1
        assert costs["classes"]["skew"]["requests"] >= 1
        assert costs["totals"]["rows_scanned"] > 0
        assert costs["cpu_seconds_histogram"]["count"] >= 1
        assert "top_requests" in costs
        watchdogs = document["watchdogs"]
        assert "event_loop_lag" in watchdogs
        assert "rebuild_stall" in watchdogs
        assert watchdogs["rebuild_stall"]["trips"] == 0

    def test_top_k_override_and_validation(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                for top_k in (2, 3, 4):
                    client.insights(_request(top_k=top_k))
                document = client.debug(top_k=1)
                assert len(document["costs"]["top_requests"]) == 1
                with pytest.raises(ServerResponseError) as exc_info:
                    client.debug(top_k="nope")  # type: ignore[arg-type]
                assert exc_info.value.status == 400

    def test_top_requests_carry_trace_ids(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                document = client.debug()
                top = document["costs"]["top_requests"]
                assert top, "expected at least one recorded request"
                entry = top[0]
                assert entry["datasets"] == ["demo"]
                # The trace id is a join key into /v1/traces/{id}.
                trace = client.trace(entry["trace_id"])
                assert trace["name"] == "request"


class TestDebugCostEcho:
    def test_debug_flag_echoes_cost_in_provenance(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                plain = client.insights(_request())
                assert "cost" not in plain.provenance
                debugged = client.insights(_request(), debug=True)
                cost = debugged.provenance["cost"]
                assert cost["rows_scanned"] >= 0
                assert cost["cpu_seconds"] >= 0.0
                assert cost["wall_seconds"] > 0.0
                for counter in ("candidates_enumerated", "sketch_probes",
                                "cache_hits", "cache_misses"):
                    assert counter in cost

    def test_debug_requests_share_cache_with_plain_twins(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                plain = client.insights(_request())
                hits_before = workspace.cache_info()["hits"]
                debugged = client.insights(_request(), debug=True)
                assert workspace.cache_info()["hits"] == hits_before + 1
                assert debugged.provenance["cost"]["cache_hits"] == 1
        # The cached payload is identical; only the echo differs.
        assert plain.carousels == debugged.carousels
        assert debugged.provenance["cache"] == "hit"


class TestTraceCursor:
    def test_since_ms_filters_old_traces(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                everything = client.traces(dataset="demo")["traces"]
                assert everything
                newest_ms = max(t["start_unix"] for t in everything) * 1000.0
                # The cursor excludes everything at or before it (the
                # /v1/traces GETs themselves touch no dataset)...
                assert client.traces(dataset="demo",
                                     since_ms=newest_ms)["traces"] == []
                # ...and since the epoch keeps the full listing.
                assert len(client.traces(dataset="demo",
                                         since_ms=0)["traces"]) == len(
                    everything)
                with pytest.raises(ServerResponseError) as exc_info:
                    client.request_raw("GET", "/v1/traces?since_ms=nope")
                    raise ServerResponseError(
                        400, {})  # pragma: no cover - raw never raises
                assert exc_info.value.status == 400


class TestRestartDiskAccounting:
    """Regression (ISSUE 10): recovered-but-untouched datasets must not
    read 0 journal/snapshot bytes after a restart.

    ``DatasetJournal.disk_usage()`` totals only counted datasets already
    *seen* in-process, and the workspace only accounted disk rows at
    materialisation — so right after a restart, before the first query,
    ``/v1/debug`` and Prometheus under-reported every dataset to 0.
    """

    def test_journal_totals_scan_unseen_datasets(self, tmp_path, table):
        from repro.ingest.durable import DatasetJournal

        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("demo", table)  # inline: self-contained
        workspace.append("demo", table.to_records()[:5])
        workspace.close()
        # A fresh journal instance has seen nothing yet: the totals
        # path must scan the directory listing, not return zeros.
        journal = DatasetJournal(str(tmp_path))
        totals = journal.disk_usage()
        assert totals["journal_bytes"] > 0
        assert totals["snapshot_bytes"] > 0
        # And the per-dataset row agrees with the totals.
        assert journal.disk_usage("demo") == totals

    def test_debug_reports_disk_bytes_before_the_first_query(self, tmp_path,
                                                             table):
        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("demo", table)
        workspace.append("demo", table.to_records()[:5])
        workspace.close()

        restarted = Workspace(data_dir=str(tmp_path))
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(restarted, config) as handle:
            with ReproClient(*handle.address) as client:
                # No insights request first: the debug read races only
                # recovery, which must already have accounted the disk.
                document = client.debug()
                text = client.metrics_text()
        demo = document["memory"]["datasets"]["demo"]
        assert demo["journal_disk"] > 0
        assert demo["snapshot_disk"] > 0
        assert ('repro_dataset_memory_bytes{dataset="demo",'
                'component="journal_disk"}') in text


class TestPrometheusExposition:
    SERIES = (
        "repro_memory_bytes{component=",
        "repro_memory_total_bytes",
        "repro_dataset_memory_bytes{dataset=\"demo\",component=",
        "repro_request_cpu_seconds_bucket",
        "repro_request_cpu_seconds_sum",
        "repro_request_cpu_seconds_count",
        "repro_cost_requests_total",
        "repro_request_cost_total{counter=\"rows_scanned\"}",
        "repro_class_requests_total{class=\"skew\"}",
        "repro_class_window_cpu_seconds{class=\"skew\"}",
        "repro_dataset_requests_total{dataset=\"demo\"}",
        "repro_dataset_window_cpu_seconds{dataset=\"demo\"}",
        "repro_event_loop_lag_seconds",
        "repro_event_loop_lag_max_seconds",
        "repro_watchdog_trips_total{watchdog=\"event_loop_lag\"}",
        "repro_watchdog_trips_total{watchdog=\"rebuild_stall\"}",
        "repro_tracing_ring_evictions_total",
        "repro_tracing_ring_bytes",
    )

    def test_every_new_series_is_exposed(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                text = client.metrics_text()
        for series in self.SERIES:
            assert series in text, f"missing series: {series}"

    def test_json_metrics_carry_the_resources_section(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                document = client.metrics()
        resources = document["resources"]
        assert resources["memory"]["total_bytes"] > 0
        assert resources["costs"]["requests_total"] >= 1
        assert "event_loop_lag" in resources["watchdogs"]
        # /metrics embeds no top-K listing (that's /v1/debug's job).
        assert "top_requests" not in resources["costs"]
        tracing = document["obs"]["tracing"]
        assert "ring_evictions" in tracing
        assert "ring_bytes" in tracing
