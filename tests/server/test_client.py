"""Client-side defensive parsing (repro.server.client helpers)."""

from __future__ import annotations

import pytest

from repro.server.client import _parse_retry_after


class TestParseRetryAfter:
    """Regression (ISSUE 10): a proxy-rewritten HTTP-date ``Retry-After``
    must degrade to ``None``, not mask the real 429/503 with a
    ``ValueError`` raised while building the error."""

    def test_numeric_seconds_parse(self):
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after("30") == 30.0
        assert _parse_retry_after("0") == 0.0

    def test_http_date_degrades_to_none(self):
        # RFC 9110 allows an HTTP-date; proxies in front of the server
        # may rewrite the numeric form into one.
        assert _parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT") is None

    @pytest.mark.parametrize("value", [None, "", "soon", "1,5", "1.5s"])
    def test_garbage_degrades_to_none(self, value):
        assert _parse_retry_after(value) is None
