"""Shared fixtures and helpers for the HTTP server tests."""

from __future__ import annotations

import json

import pytest

from repro.data import DataTable
from repro.data.datasets import make_mixed_table
from repro.service import InsightResponse, Workspace


@pytest.fixture(scope="session")
def server_table() -> DataTable:
    """A small mixed table: fast engine builds, non-trivial insights."""
    return make_mixed_table(n_rows=300, n_numeric=6, n_categorical=2, seed=3)


@pytest.fixture()
def server_workspace(server_table: DataTable) -> Workspace:
    """A fresh workspace per test (counters start at zero)."""
    workspace = Workspace()
    workspace.register("demo", lambda: server_table)
    return workspace


def stable_payload(response: InsightResponse | dict) -> str:
    """Canonical JSON of a response minus its volatile fields.

    ``timing`` is wall-clock and ``provenance`` records *how* the answer
    was produced (cache hit/miss, batch/coalesce position) — both vary
    run to run by design.  Everything else (the carousels, dataset,
    version, cursor) must be byte-identical however a request was
    transported, and this helper is what the equivalence tests compare.
    """
    payload = response.to_dict() if isinstance(response, InsightResponse) else dict(response)
    payload.pop("timing", None)
    payload.pop("provenance", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
