"""Concurrency stress: server responses == direct Workspace.handle output.

Many client threads hammer one coalescing server with a shared request
mix (repeats included, so cache hits, coalesced batches and admission
queueing all engage at once).  Every response must match the output of a
direct ``Workspace.handle`` call on an identically-registered reference
workspace, byte for byte (volatile timing/provenance excluded — see
``stable_payload``).
"""

from __future__ import annotations

import threading

from repro.service import InsightRequest, Workspace
from repro.server import ReproClient, ServerConfig, serving

from tests.server.conftest import stable_payload

N_THREADS = 8
ROUNDS = 3


def _request_mix() -> list[InsightRequest]:
    return [
        InsightRequest(dataset="demo", insight_classes=("skew",), top_k=3),
        InsightRequest(dataset="demo", insight_classes=("outliers",), top_k=2),
        InsightRequest(dataset="demo",
                       insight_classes=("dispersion", "heavy_tails"), top_k=4),
        InsightRequest(dataset="demo", insight_classes=("skew", "outliers"),
                       top_k=5, mode="exact"),
        InsightRequest(dataset="demo", insight_classes=("normality",), top_k=3,
                       metric_min=0.0),
    ]


def test_stress_responses_identical_to_direct_handle(
    server_workspace, server_table
):
    requests = _request_mix()
    reference = Workspace()
    reference.register("demo", lambda: server_table)
    expected = [stable_payload(reference.handle(r)) for r in requests]

    server_workspace.engine("demo")
    config = ServerConfig(
        port=0, coalesce_window=0.01, coalesce_max_batch=8,
        max_in_flight=4, queue_limit=64,
    )
    failures: list[str] = []
    barrier = threading.Barrier(N_THREADS)

    with serving(server_workspace, config) as handle:
        def hammer(thread_index: int) -> None:
            with ReproClient(*handle.address, timeout=60) as client:
                barrier.wait()
                for round_index in range(ROUNDS):
                    # Stagger the mix per thread so concurrent traffic is
                    # a blend of distinct and identical requests.
                    offset = (thread_index + round_index) % len(requests)
                    for step in range(len(requests)):
                        index = (offset + step) % len(requests)
                        response = client.insights(requests[index])
                        got = stable_payload(response)
                        if got != expected[index]:
                            failures.append(
                                f"thread {thread_index} round {round_index} "
                                f"request {index} diverged"
                            )

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ReproClient(*handle.address) as client:
            metrics = client.metrics()

    assert not failures, failures[:5]
    total = N_THREADS * ROUNDS * len(requests)
    server = metrics["server"]
    assert server["requests"]["by_endpoint"]["insights"] == total
    assert server["responses"]["by_status"]["200"] == total
    assert server["coalesce"]["coalesced_requests"] == total
    assert metrics["admission"]["admitted_total"] == total
    assert metrics["admission"]["in_flight"] == 0
    # One engine, however many threads raced on it.
    assert metrics["workspace"]["engine_builds"] == 1
