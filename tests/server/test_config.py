"""ServerConfig: defaults, validation, environment and CLI construction."""

from __future__ import annotations

import argparse

import pytest

from repro.errors import ServerError
from repro.server import ServerConfig


class TestDefaultsAndValidation:
    def test_defaults_are_sane(self):
        config = ServerConfig()
        assert config.host == "127.0.0.1"
        assert config.coalesce_window > 0
        assert config.max_in_flight >= 1
        assert config.dataset_quota is None
        assert config.class_quota is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"port": -1},
            {"port": 70000},
            {"coalesce_window": -0.1},
            {"coalesce_max_batch": 0},
            {"max_in_flight": 0},
            {"queue_limit": -1},
            {"dataset_quota": 0},
            {"class_quota": 0},
            {"retry_after": -1.0},
            {"max_body_bytes": 0},
            {"drain_timeout": -1.0},
            {"handler_workers": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ServerError):
            ServerConfig(**kwargs)

    def test_as_dict_round_trips_every_field(self):
        config = ServerConfig(port=0, dataset_quota=3)
        payload = config.as_dict()
        assert ServerConfig(**payload) == config


class TestFromEnv:
    def test_unset_environment_keeps_defaults(self):
        assert ServerConfig.from_env(env={}) == ServerConfig()

    def test_environment_overrides(self):
        env = {
            "REPRO_SERVER_PORT": "9321",
            "REPRO_SERVER_COALESCE_WINDOW": "0.02",
            "REPRO_SERVER_MAX_IN_FLIGHT": "3",
            "REPRO_SERVER_DATASET_QUOTA": "2",
            "REPRO_SERVER_CLASS_QUOTA": "none",
            "REPRO_SERVER_HOST": "0.0.0.0",
        }
        config = ServerConfig.from_env(env=env)
        assert config.port == 9321
        assert config.coalesce_window == pytest.approx(0.02)
        assert config.max_in_flight == 3
        assert config.dataset_quota == 2
        assert config.class_quota is None
        assert config.host == "0.0.0.0"

    def test_malformed_environment_value_names_the_variable(self):
        with pytest.raises(ServerError, match="REPRO_SERVER_PORT"):
            ServerConfig.from_env(env={"REPRO_SERVER_PORT": "not-a-port"})

    def test_empty_value_falls_back_to_default(self):
        config = ServerConfig.from_env(env={"REPRO_SERVER_PORT": ""})
        assert config.port == ServerConfig().port


class TestFromArgs:
    def _parse(self, argv: list[str]) -> ServerConfig:
        parser = argparse.ArgumentParser()
        ServerConfig.add_cli_arguments(parser)
        return ServerConfig.from_args(parser.parse_args(argv))

    def test_no_flags_matches_defaults(self):
        assert self._parse([]) == ServerConfig()

    def test_flags_override(self):
        config = self._parse([
            "--port", "0",
            "--coalesce-window-ms", "25",
            "--max-in-flight", "2",
            "--queue-limit", "0",
            "--dataset-quota", "1",
            "--retry-after", "0.5",
        ])
        assert config.port == 0
        assert config.coalesce_window == pytest.approx(0.025)
        assert config.max_in_flight == 2
        assert config.queue_limit == 0
        assert config.dataset_quota == 1
        assert config.retry_after == pytest.approx(0.5)

    def test_window_zero_disables_coalescing(self):
        assert self._parse(["--coalesce-window-ms", "0"]).coalesce_window == 0.0
