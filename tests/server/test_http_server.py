"""End-to-end socket tests for the asyncio HTTP server.

Everything here goes over real TCP: a server on an ephemeral port, the
blocking :class:`ReproClient` on the other side, and the acceptance
criteria of the transport in between — byte-identical coalesced
responses, 429/503 with ``Retry-After``, graceful drain, and a
``/metrics`` document consistent with the traffic sent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.data.datasets import make_mixed_table
from repro.service import InsightRequest, Workspace
from repro.server import (
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerResponseError,
    serving,
)

from tests.server.conftest import stable_payload


def _request(top_k: int = 3, classes=("skew", "outliers")) -> InsightRequest:
    return InsightRequest(dataset="demo", insight_classes=classes, top_k=top_k)


class TestBasicEndpoints:
    def test_single_insight_request(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                response = client.insights(_request())
                assert response.dataset == "demo"
                assert response.dataset_version == 1
                assert [c["insight_class"] for c in response.carousels] == [
                    "skew", "outliers",
                ]
                assert response.provenance["cache"] == "miss"
                repeat = client.insights(_request())
                assert repeat.provenance["cache"] == "hit"

    def test_single_response_matches_direct_workspace_handle(
        self, server_workspace, server_table
    ):
        reference = Workspace()
        reference.register("demo", lambda: server_table)
        expected = stable_payload(reference.handle(_request()))
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                response = client.insights(_request())
        assert stable_payload(response) == expected

    def test_batch_endpoint_preserves_order_and_batch_provenance(
        self, server_workspace
    ):
        requests = [_request(2, ("skew",)), _request(3, ("dispersion",)),
                    _request(4, ("outliers",))]
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                responses = client.insights_batch(requests)
        assert [r.carousels[0]["insight_class"] for r in responses] == [
            "skew", "dispersion", "outliers",
        ]
        for index, response in enumerate(responses):
            assert response.provenance["batch"]["index"] == index
            assert response.provenance["batch"]["size"] == 3

    def test_datasets_and_healthz(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                datasets = client.datasets()
                assert [d["name"] for d in datasets] == ["demo"]
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["datasets"] == ["demo"]
                assert health["port"] == handle.port
                assert health["config"]["max_in_flight"] >= 1

    def test_pagination_through_the_server(self, server_workspace):
        request = _request(2, ("skew",))
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                first = client.insights(request)
                assert first.next_cursor is not None
                second = client.insights(request.next_page(first.next_cursor))
                first_keys = {i["attributes"][0] for i in first.carousels[0]["insights"]}
                second_keys = {i["attributes"][0] for i in second.carousels[0]["insights"]}
                assert not first_keys & second_keys


class TestErrorEnvelopes:
    def test_malformed_json_returns_400_envelope(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("POST", "/v1/insights", "{not json")
        assert raw.status == 400
        assert raw.payload["status"] == "error"
        assert raw.payload["code"] == "protocol_error"
        assert "message" in raw.payload

    def test_unknown_dataset_returns_404_envelope(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw(
                    "POST", "/v1/insights",
                    {"dataset": "nope", "insight_classes": ["skew"]},
                )
        assert raw.status == 404
        assert raw.payload["code"] == "unknown_dataset"
        assert raw.payload["available"] == ["demo"]

    def test_unknown_insight_class_returns_400_envelope(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw(
                    "POST", "/v1/insights",
                    {"dataset": "demo", "insight_classes": ["not_a_class"]},
                )
        assert raw.status == 400
        assert raw.payload["code"] == "unknown_insight_class"

    def test_unknown_path_and_wrong_method(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("GET", "/v2/everything")
                assert raw.status == 404
                assert raw.payload["code"] == "not_found"
                raw = client.request_raw("GET", "/v1/insights")
                assert raw.status == 405
                assert raw.payload["code"] == "method_not_allowed"

    def test_oversized_body_returns_413_envelope(self, server_workspace):
        config = ServerConfig(port=0, max_body_bytes=64)
        with serving(server_workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw(
                    "POST", "/v1/insights",
                    {"dataset": "demo", "insight_classes": ["skew"],
                     "tags": ["x" * 200]},
                )
        assert raw.status == 413
        assert raw.payload["code"] == "payload_too_large"

    def test_malformed_batch_body_returns_400(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("POST", "/v1/insights:batch",
                                         {"requests": []})
                assert raw.status == 400
                raw = client.request_raw("POST", "/v1/insights:batch",
                                         {"requests": [{"top_k": 3}]})
                assert raw.status == 400
                assert "batch request #0" in raw.payload["message"]

    def test_typed_client_raises_server_response_error(self, server_workspace):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                with pytest.raises(ServerResponseError) as info:
                    client.insights({"dataset": "nope",
                                     "insight_classes": ["skew"]})
        assert info.value.status == 404
        assert info.value.code == "unknown_dataset"


class TestCoalescing:
    def test_coalesced_responses_identical_to_direct_handle(
        self, server_workspace, server_table
    ):
        """Acceptance (a): coalesced singles == direct Workspace.handle."""
        requests = [_request(k, ("skew",)) for k in (1, 2, 3, 4)]
        requests += [_request(2, ("dispersion", "outliers"))]
        reference = Workspace()
        reference.register("demo", lambda: server_table)
        expected = [stable_payload(reference.handle(r)) for r in requests]

        # Warm the server-side engine so all arrivals land in one window.
        server_workspace.engine("demo")
        config = ServerConfig(port=0, coalesce_window=0.25, coalesce_max_batch=16)
        results: dict[int, object] = {}
        barrier = threading.Barrier(len(requests))

        with serving(server_workspace, config) as handle:
            def fire(index: int) -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    results[index] = client.insights(requests[index])

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ReproClient(*handle.address) as client:
                metrics = client.metrics()

        for index, request in enumerate(requests):
            assert stable_payload(results[index]) == expected[index], (
                f"coalesced response {index} diverged from direct handle"
            )
        coalesce = metrics["server"]["coalesce"]
        assert coalesce["coalesced_requests"] == len(requests)
        assert coalesce["batches"] >= 1
        # All arrivals were released at a barrier inside one 250ms window,
        # so at least one true multi-request batch must have formed.
        assert coalesce["max_batch_size"] >= 2

    def test_coalesced_provenance_records_transport_batching(
        self, server_workspace
    ):
        server_workspace.engine("demo")
        config = ServerConfig(port=0, coalesce_window=0.2)
        responses = []
        barrier = threading.Barrier(3)
        with serving(server_workspace, config) as handle:
            def fire(top_k: int) -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    responses.append(client.insights(_request(top_k, ("skew",))))

            threads = [threading.Thread(target=fire, args=(k,)) for k in (1, 2, 3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        sizes = {r.provenance["coalesced"]["size"] for r in responses}
        assert max(sizes) >= 2
        assert all("batch" not in r.provenance for r in responses)

    def test_zero_window_disables_coalescing(self, server_workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(server_workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                response = client.insights(_request())
                metrics = client.metrics()
        assert "coalesced" not in response.provenance
        assert metrics["server"]["coalesce"]["batches"] == 0
        assert metrics["server"]["coalesce"]["direct_requests"] == 1

    def test_bad_request_in_a_coalesced_batch_fails_only_itself(
        self, server_workspace
    ):
        server_workspace.engine("demo")
        config = ServerConfig(port=0, coalesce_window=0.2)
        outcomes: dict[str, object] = {}
        barrier = threading.Barrier(2)
        with serving(server_workspace, config) as handle:
            def good() -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    outcomes["good"] = client.insights(_request(2, ("skew",)))

            def bad() -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    outcomes["bad"] = client.request_raw(
                        "POST", "/v1/insights",
                        {"dataset": "demo", "insight_classes": ["not_a_class"]},
                    )

            threads = [threading.Thread(target=good),
                       threading.Thread(target=bad)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert outcomes["good"].carousels[0]["insight_class"] == "skew"
        assert outcomes["bad"].status == 400
        assert outcomes["bad"].payload["code"] == "unknown_insight_class"


class TestAdmission:
    @staticmethod
    def _gated_workspace(table):
        """A workspace whose 'slow' dataset blocks in its loader until gated."""
        gate = threading.Event()
        loading = threading.Event()

        def slow_loader():
            loading.set()
            assert gate.wait(timeout=30), "test gate never opened"
            return table

        workspace = Workspace()
        workspace.register("slow", slow_loader)
        workspace.register("demo", lambda: table)
        workspace.engine("demo")
        return workspace, gate, loading

    def test_quota_overflow_returns_429_with_retry_after(self, server_table):
        """Acceptance (b): quota overflow → 429 + Retry-After."""
        workspace, gate, loading = self._gated_workspace(server_table)
        config = ServerConfig(
            port=0, coalesce_window=0.0, dataset_quota=1,
            max_in_flight=8, queue_limit=8, retry_after=2.0,
        )
        with serving(workspace, config) as handle:
            blocked: dict[str, object] = {}

            def fire_blocked() -> None:
                with ReproClient(*handle.address, timeout=60) as client:
                    blocked["response"] = client.insights(
                        InsightRequest(dataset="slow", insight_classes=("skew",))
                    )

            thread = threading.Thread(target=fire_blocked)
            thread.start()
            assert loading.wait(timeout=10)
            try:
                with ReproClient(*handle.address) as client:
                    raw = client.request_raw(
                        "POST", "/v1/insights",
                        {"dataset": "slow", "insight_classes": ["outliers"]},
                    )
                    assert raw.status == 429
                    assert raw.payload["status"] == "error"
                    assert raw.payload["code"] == "dataset_quota_exceeded"
                    assert raw.headers["retry-after"] == "2"
                    assert raw.payload["retry_after"] == 2.0
                    # Other datasets are unaffected: isolation, not outage.
                    ok = client.insights(_request(2, ("skew",)))
                    assert ok.dataset == "demo"
                    metrics = client.metrics()
                    assert metrics["admission"]["rejected_quota_total"] == 1
                    assert metrics["server"]["responses"]["rejected_quota"] == 1
            finally:
                gate.set()
                thread.join(timeout=30)
            assert blocked["response"].dataset == "slow"

    def test_capacity_overflow_returns_503(self, server_table):
        workspace, gate, loading = self._gated_workspace(server_table)
        config = ServerConfig(
            port=0, coalesce_window=0.0, max_in_flight=1, queue_limit=0,
            retry_after=1.0,
        )
        with serving(workspace, config) as handle:
            def fire_blocked() -> None:
                with ReproClient(*handle.address, timeout=60) as client:
                    client.insights(
                        InsightRequest(dataset="slow", insight_classes=("skew",))
                    )

            thread = threading.Thread(target=fire_blocked)
            thread.start()
            assert loading.wait(timeout=10)
            try:
                with ReproClient(*handle.address) as client:
                    raw = client.request_raw(
                        "POST", "/v1/insights",
                        {"dataset": "demo", "insight_classes": ["skew"]},
                    )
                    assert raw.status == 503
                    assert raw.payload["code"] == "overloaded"
                    assert "retry-after" in raw.headers
            finally:
                gate.set()
                thread.join(timeout=30)

    def test_queued_request_is_served_when_capacity_frees(self, server_table):
        workspace, gate, loading = self._gated_workspace(server_table)
        config = ServerConfig(
            port=0, coalesce_window=0.0, max_in_flight=1, queue_limit=4,
        )
        with serving(workspace, config) as handle:
            outcomes: dict[str, object] = {}

            def fire(name: str, dataset: str) -> None:
                with ReproClient(*handle.address, timeout=60) as client:
                    outcomes[name] = client.insights(
                        InsightRequest(dataset=dataset, insight_classes=("skew",))
                    )

            blocker = threading.Thread(target=fire, args=("slow", "slow"))
            blocker.start()
            assert loading.wait(timeout=10)
            queued = threading.Thread(target=fire, args=("queued", "demo"))
            queued.start()
            time.sleep(0.1)
            assert "queued" not in outcomes   # still waiting for the slot
            gate.set()
            blocker.join(timeout=30)
            queued.join(timeout=30)
        assert outcomes["slow"].dataset == "slow"
        assert outcomes["queued"].dataset == "demo"


class TestGracefulShutdown:
    def test_drain_completes_in_flight_request(self, server_table):
        workspace, gate, loading = TestAdmission._gated_workspace(server_table)
        config = ServerConfig(port=0, coalesce_window=0.0, drain_timeout=10.0)
        handle_box: dict[str, object] = {}
        blocked: dict[str, object] = {}

        with serving(workspace, config) as handle:
            handle_box["handle"] = handle

            def fire_blocked() -> None:
                with ReproClient(*handle.address, timeout=60) as client:
                    blocked["response"] = client.insights(
                        InsightRequest(dataset="slow", insight_classes=("skew",))
                    )

            thread = threading.Thread(target=fire_blocked)
            thread.start()
            assert loading.wait(timeout=10)

            stopper = threading.Thread(target=lambda: handle.stop(drain=True))
            stopper.start()
            time.sleep(0.1)
            # The request is mid-flight; open the gate and let drain finish.
            gate.set()
            stopper.join(timeout=30)
            thread.join(timeout=30)

        response = blocked["response"]
        assert response.dataset == "slow"
        assert response.carousels[0]["insight_class"] == "skew"

    def test_server_restarts_after_stop(self, server_workspace):
        server = ReproServer(server_workspace, ServerConfig(port=0))
        handle = server.start_in_thread()
        with ReproClient(*handle.address) as client:
            assert client.healthz()["status"] == "ok"
        handle.stop()
        # A restarted server must serve again (stop() left no sticky state).
        handle = server.start_in_thread()
        try:
            with ReproClient(*handle.address) as client:
                assert client.healthz()["status"] == "ok"
                assert client.insights(_request(2, ("skew",))).dataset == "demo"
        finally:
            handle.stop()

    def test_stop_is_idempotent_and_refuses_new_connections(
        self, server_workspace
    ):
        with serving(server_workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                client.healthz()
            handle.stop()
            handle.stop()   # second stop is a no-op
            with pytest.raises(OSError):
                probe = ReproClient(*handle.address, timeout=2)
                try:
                    probe.healthz()
                finally:
                    probe.close()


class TestMetricsConsistency:
    def test_metrics_match_the_traffic_sent(self, server_workspace):
        """Acceptance (c): /metrics consistent with the traffic."""
        server_workspace.engine("demo")
        config = ServerConfig(port=0, coalesce_window=0.15)
        n_singles = 4
        barrier = threading.Barrier(n_singles)
        with serving(server_workspace, config) as handle:
            def fire(top_k: int) -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    client.insights(_request(top_k, ("skew",)))

            threads = [
                threading.Thread(target=fire, args=(k,))
                for k in range(1, n_singles + 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ReproClient(*handle.address) as client:
                client.insights_batch([_request(2, ("dispersion",)),
                                       _request(3, ("outliers",))])
                client.request_raw(
                    "POST", "/v1/insights",
                    {"dataset": "nope", "insight_classes": ["skew"]},
                )
                client.healthz()
                metrics = client.metrics()

        server = metrics["server"]
        by_endpoint = server["requests"]["by_endpoint"]
        assert by_endpoint["insights"] == n_singles + 1   # +1 unknown dataset
        assert by_endpoint["insights_batch"] == 1
        assert by_endpoint["healthz"] == 1
        assert server["responses"]["by_status"]["200"] >= n_singles + 2
        assert server["responses"]["by_status"]["404"] == 1
        # Every successful single went through the coalescer.
        assert server["coalesce"]["coalesced_requests"] == n_singles
        assert 1 <= server["coalesce"]["batches"] <= n_singles
        assert server["latency"]["count"] == n_singles + 2
        admission = metrics["admission"]
        assert admission["admitted_total"] == n_singles + 1
        assert admission["in_flight"] == 0
        workspace_metrics = metrics["workspace"]
        assert workspace_metrics["engine_builds"] == 1
        assert workspace_metrics["cache"]["misses"] >= n_singles
        assert workspace_metrics["pipeline"]["n_queries"] >= n_singles
        datasets = {d["name"]: d for d in workspace_metrics["datasets"]}
        assert datasets["demo"]["engine_built"] is True
