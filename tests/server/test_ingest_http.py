"""Live datasets over HTTP: dataset management, liveness, write quota,
Prometheus exposition and the per-connection read timeout."""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.data.datasets import make_mixed_table
from repro.server import (
    AdmissionController,
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerResponseError,
)
from repro.service import InsightRequest, Workspace

from tests.server.conftest import stable_payload


@pytest.fixture(scope="module")
def live_table():
    return make_mixed_table(n_rows=300, n_numeric=4, n_categorical=2, seed=31)


@pytest.fixture(scope="module")
def delta_rows(live_table):
    return make_mixed_table(n_rows=40, n_numeric=4, n_categorical=2,
                            seed=32).to_records()


def _request():
    return InsightRequest(dataset="live", insight_classes=("skew", "outliers"),
                          top_k=3, mode="approximate")


def _serving(live_table, **config_kwargs):
    workspace = Workspace()
    workspace.register("live", lambda: live_table)
    server = ReproServer(
        workspace,
        ServerConfig(port=0, **config_kwargs),
        loaders={"live_again": lambda: live_table},
    )
    return server, server.start_in_thread()


class TestDatasetManagementAPI:
    def test_put_inline_append_reload_round_trip(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                created = client.put_dataset(
                    "inline", columns={"x": [1.0, 2.0, 3.0, 4.0],
                                       "g": ["a", "b", "a", "b"]},
                )
                assert (created["version"], created["seq"]) == (1, 0)
                assert created["source"] == "inline"
                assert "inline" in [d["name"] for d in client.datasets()]

                appended = client.append_rows(
                    "inline", [{"x": 9.0, "g": "c"}, {"x": 10.0}]
                )
                assert (appended["version"], appended["seq"]) == (1, 1)
                assert appended["rows_appended"] == 2
                assert appended["total_rows"] == 6

                # Inline tables have no loader: reload keeps the rows
                # (appends included) but bumps the generation.
                reloaded = client.reload_dataset("inline")
                assert reloaded["version"] == 2
                assert reloaded["seq"] == 0

    def test_put_registered_loader(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                created = client.put_dataset("live_again", loader="live_again")
                assert created["source"] == "loader"
                response = client.insights(InsightRequest(
                    dataset="live_again", insight_classes=("skew",), top_k=2))
                assert response.dataset == "live_again"

    def test_put_unknown_loader_is_400(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                with pytest.raises(ServerResponseError) as info:
                    client.put_dataset("x", loader="nope")
                assert info.value.status == 400

    def test_put_conflict_and_replace(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("PUT", "/v1/datasets/live",
                                         {"columns": {"x": [1.0]}})
                assert raw.status == 409
                assert raw.payload["code"] == "dataset_exists"
                replaced = client.put_dataset(
                    "live", columns={"x": [1.0, 2.0]}, replace=True
                )
                assert replaced["version"] == 2  # behaves like a reload

    def test_append_validation_failure_is_400_with_problems(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw(
                    "POST", "/v1/datasets/live/rows",
                    {"rows": [{"not_a_column": 1}]},
                )
                assert raw.status == 400
                assert raw.payload["code"] == "delta_rejected"
                assert raw.payload["problems"]
                # Nothing changed server-side.
                (status,) = [d for d in client.datasets()
                             if d["name"] == "live"]
                assert status["seq"] == 0

    def test_unknown_dataset_and_wrong_method(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("POST", "/v1/datasets/nope/rows",
                                         {"rows": [{}]})
                assert raw.status == 404
                raw = client.request_raw("GET", "/v1/datasets/live/rows")
                assert raw.status == 405
                raw = client.request_raw("GET", "/v1/datasets/live/bogus")
                assert raw.status == 404


class TestDurabilityOverHttp:
    """The flush endpoint and server-restart recovery with a data_dir."""

    def test_flush_endpoint_reports_durability(self, tmp_path, live_table,
                                               delta_rows):
        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("live", lambda: live_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("live", delta_rows[:10])
                flushed = client.flush_dataset("live")
                assert flushed == {"protocol": 1, "dataset": "live",
                                   "version": 1, "seq": 1, "durable": True}
                with pytest.raises(ServerResponseError) as excinfo:
                    client.flush_dataset("nope")
                assert excinfo.value.status == 404
                raw = client.request_raw("GET", "/v1/datasets/live/flush")
                assert raw.status == 405

    def test_flush_without_data_dir_is_a_no_op(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                assert client.flush_dataset("live")["durable"] is False

    def test_server_restart_replays_the_journal(self, tmp_path, live_table,
                                                delta_rows):
        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("live", lambda: live_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("live", delta_rows[:10])
                client.append_rows("live", delta_rows[10:25])
                before = stable_payload(client.insights(_request()))
        # A second server process over the same data_dir: identity and
        # payload bytes survive the restart (graceful stop flushed, but
        # fsync-on-commit means even a kill would have).
        workspace2 = Workspace(data_dir=str(tmp_path))
        workspace2.register("live", lambda: live_table)
        server2 = ReproServer(workspace2, ServerConfig(port=0))
        with server2.start_in_thread() as handle2:
            with ReproClient(*handle2.address) as client:
                (status,) = [d for d in client.datasets()
                             if d["name"] == "live"]
                assert (status["version"], status["seq"]) == (1, 2)
                assert stable_payload(client.insights(_request())) == before
                metrics = client.metrics()
                assert metrics["workspace"]["ingest"]["durable"] is True


class TestEndToEndLiveness:
    """The acceptance scenario: append over HTTP, query reflects it."""

    def _reference_payloads(self, live_table, delta_rows):
        """Expected responses at seq 0 and seq 1, from a twin workspace."""
        reference = Workspace()
        reference.register("live", lambda: live_table)
        reference.engine("live")
        at_seq = {0: stable_payload(reference.handle(_request()))}
        result = reference.append("live", delta_rows)
        assert result.applied == "delta_merge"
        at_seq[1] = stable_payload(reference.handle(_request()))
        # Liveness must be observable: the two snapshots answer
        # differently, so matching seq-1 proves the appended rows landed.
        assert at_seq[0] != at_seq[1]
        return at_seq

    def test_append_then_query_reflects_new_rows(self, live_table,
                                                 delta_rows):
        expected = self._reference_payloads(live_table, delta_rows)
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                before = client.insights(_request())
                assert (before.dataset_version, before.dataset_seq) == (1, 0)
                assert stable_payload(before) == expected[0]

                appended = client.append_rows("live", delta_rows)
                assert (appended["version"], appended["seq"]) == (1, 1)
                assert appended["applied"] == "delta_merge"

                after = client.insights(_request())
                assert (after.dataset_version, after.dataset_seq) == (1, 1)
                assert stable_payload(after) == expected[1]

                # No full-store rebuild on the append path: the delta-merge
                # counters prove how the rows were absorbed.
                metrics = client.metrics()
                ingest = metrics["workspace"]["ingest"]["totals"]
                assert ingest["delta_merges"] == 1
                assert ingest["rebuilds"] == 0
                assert ingest["rows_appended"] == len(delta_rows)
                assert metrics["workspace"]["engine_builds"] == 1

    def test_queries_racing_the_append_see_consistent_snapshots(
        self, live_table, delta_rows
    ):
        expected = self._reference_payloads(live_table, delta_rows)
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as warmup:
                warmup.insights(_request())  # build the engine

            payloads: list[tuple[int, int, str]] = []
            errors: list[Exception] = []
            lock = threading.Lock()
            stop = threading.Event()

            def query_loop():
                try:
                    with ReproClient(*handle.address, timeout=30) as client:
                        while not stop.is_set():
                            response = client.insights(_request())
                            with lock:
                                payloads.append((
                                    response.dataset_version,
                                    response.dataset_seq,
                                    stable_payload(response),
                                ))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=query_loop) for _ in range(4)]
            for thread in threads:
                thread.start()
            with ReproClient(*handle.address, timeout=60) as writer:
                appended = writer.append_rows("live", delta_rows)
                assert appended["seq"] == 1
                post = writer.insights(_request())
            stop.set()
            for thread in threads:
                thread.join()

            assert not errors
            assert (post.dataset_version, post.dataset_seq) == (1, 1)
            assert stable_payload(post) == expected[1]
            # Every racing response matches the reference payload of the
            # exact snapshot its provenance names — no torn reads.
            for version, seq, payload in payloads:
                assert version == 1
                assert seq in (0, 1)
                assert payload == expected[seq]


class TestWriteQuota:
    def test_write_quota_rejects_concurrent_writes_only(self):
        async def scenario():
            controller = AdmissionController(max_in_flight=8, queue_limit=8,
                                             write_quota=1, retry_after=0.25)
            await controller.acquire(["live"], [], writes=["live"])
            snapshot = controller.snapshot()
            assert snapshot["in_flight_writes_by_dataset"] == {"live": 1}
            # A second concurrent write on the same dataset: 429.
            try:
                await controller.acquire(["live"], [], writes=["live"])
            except Exception as exc:
                assert exc.status == 429
                assert exc.code == "write_quota_exceeded"
                assert exc.retry_after == 0.25
            else:  # pragma: no cover - the acquire must reject
                raise AssertionError("second write was admitted")
            # Reads on the same dataset are unaffected by the write quota.
            await controller.acquire(["live"], ["skew"])
            # Writes on another dataset are unaffected too.
            await controller.acquire(["other"], [], writes=["other"])
            await controller.release(["live"], [], writes=["live"])
            await controller.acquire(["live"], [], writes=["live"])
            await controller.release(["live"], [], writes=["live"])
            await controller.release(["live"], ["skew"])
            await controller.release(["other"], [], writes=["other"])
            final = controller.snapshot()
            assert final["in_flight"] == 0
            assert final["in_flight_writes_by_dataset"] == {}
            assert final["rejected_quota_total"] == 1
            assert final["limits"]["write_quota"] == 1

        asyncio.run(scenario())

    def test_http_write_quota_config_reaches_admission(self, live_table):
        server, handle = _serving(live_table, write_quota=2)
        with handle:
            with ReproClient(*handle.address) as client:
                limits = client.metrics()["admission"]["limits"]
                assert limits["write_quota"] == 2


class TestPrometheusExposition:
    def test_json_stays_the_default(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                document = client.metrics()
                assert isinstance(document, dict)
                assert "ingest" in document["workspace"]

    def test_text_plain_negotiates_prometheus(self, live_table, delta_rows):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                client.append_rows("live", delta_rows)
                document = client.metrics()
                raw = client.request_raw("GET", "/metrics",
                                         headers={"Accept": "text/plain"})
                assert raw.status == 200
                assert raw.headers["content-type"].startswith("text/plain")
                text = raw.payload
                assert isinstance(text, str)
                assert "# TYPE repro_requests_total counter" in text
                assert "# TYPE repro_request_latency_seconds histogram" in text
                assert 'repro_request_latency_seconds_bucket{le="+Inf"}' in text
                assert 'repro_dataset_seq{dataset="live"} 1' in text
                assert "repro_ingest_delta_merges_total 1" in text
                # Counter values agree with the JSON document scraped one
                # request earlier (the JSON scrape itself counted once).
                total = document["server"]["requests"]["total"]
                assert f"repro_requests_total {total + 1}" in text

    def test_client_metrics_text_helper(self, live_table):
        server, handle = _serving(live_table)
        with handle:
            with ReproClient(*handle.address) as client:
                text = client.metrics_text()
                assert text.startswith("# TYPE")
                assert "repro_cache_hits_total" in text


class TestReadTimeout:
    def test_stalled_request_gets_408_and_close(self, live_table):
        server, handle = _serving(live_table, read_timeout=0.3)
        with handle:
            with socket.create_connection(handle.address, timeout=5) as sock:
                sock.sendall(b"POST /v1/insights HTTP/1.1\r\n"
                             b"Content-Length: 100\r\n\r\n{\"data")
                sock.settimeout(5)
                data = sock.recv(65536)
                assert b"408" in data.split(b"\r\n", 1)[0]
                assert b"request_timeout" in data
                # The connection is closed after the 408.
                assert sock.recv(65536) == b""

    def test_idle_keep_alive_connection_is_reclaimed_silently(self,
                                                              live_table):
        # An idle connection (no request started) is closed without a 408
        # so a persistent client can never read a buffered timeout
        # envelope as the answer to its *next* request.
        server, handle = _serving(live_table, read_timeout=0.3)
        with handle:
            with socket.create_connection(handle.address, timeout=5) as sock:
                sock.settimeout(5)
                assert sock.recv(65536) == b""  # closed, nothing written

    def test_slow_client_between_requests_is_not_poisoned(self, live_table):
        # A keep-alive client that pauses past the read timeout between
        # requests reconnects cleanly (ReproClient's stale-connection
        # retry) instead of receiving a stale 408.
        import time

        server, handle = _serving(live_table, read_timeout=0.3)
        with handle:
            with ReproClient(*handle.address) as client:
                first = client.insights(_request())
                time.sleep(0.6)  # server reclaims the idle connection
                second = client.insights(_request())
                assert stable_payload(first) == stable_payload(second)

    def test_zero_disables_the_timeout(self, live_table):
        server, handle = _serving(live_table, read_timeout=0.0)
        with handle:
            with socket.create_connection(handle.address, timeout=5) as sock:
                sock.settimeout(0.6)
                with pytest.raises(socket.timeout):
                    sock.recv(65536)  # nothing arrives: no 408, no close

    def test_normal_traffic_unaffected(self, live_table):
        server, handle = _serving(live_table, read_timeout=5.0)
        with handle:
            with ReproClient(*handle.address) as client:
                response = client.insights(_request())
                assert response.dataset == "live"
