"""Tests for frequency statistics (RelFreq, entropy, Pareto data)."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.frequency import (
    distinct_count,
    frequency_table,
    gini_impurity,
    heavy_hitters,
    mode,
    normalized_entropy,
    numeric_value_frequencies,
    relative_frequency_topk,
    shannon_entropy,
)

LABELS = ["a"] * 50 + ["b"] * 30 + ["c"] * 15 + ["d"] * 5


class TestFrequencyTable:
    def test_descending_order(self):
        table = frequency_table(LABELS)
        assert [entry.label for entry in table] == ["a", "b", "c", "d"]
        assert [entry.count for entry in table] == [50, 30, 15, 5]

    def test_frequencies_sum_to_one(self):
        table = frequency_table(LABELS)
        assert sum(entry.frequency for entry in table) == pytest.approx(1.0)
        assert table[-1].cumulative_frequency == pytest.approx(1.0)

    def test_missing_labels_ignored(self):
        table = frequency_table(["x", None, "x", None])
        assert table[0].count == 2

    def test_empty_raises(self):
        with pytest.raises(EmptyColumnError):
            frequency_table([None, None])

    def test_ties_broken_lexicographically(self):
        table = frequency_table(["b", "a", "a", "b"])
        assert [entry.label for entry in table] == ["a", "b"]


class TestRelFreq:
    def test_relfreq_topk_matches_paper_definition(self):
        # RelFreq(2, c) = (50 + 30) / 100
        assert relative_frequency_topk(LABELS, k=2) == pytest.approx(0.8)

    def test_relfreq_top1(self):
        assert relative_frequency_topk(LABELS, k=1) == pytest.approx(0.5)

    def test_k_larger_than_distinct(self):
        assert relative_frequency_topk(LABELS, k=10) == pytest.approx(1.0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            relative_frequency_topk(LABELS, k=0)

    def test_uniform_distribution_scores_low(self):
        uniform = [f"v{i}" for i in range(100)] * 3
        assert relative_frequency_topk(uniform, k=3) == pytest.approx(0.03)


class TestHeavyHitters:
    def test_threshold_filtering(self):
        hitters = heavy_hitters(LABELS, threshold=0.2)
        assert [entry.label for entry in hitters] == ["a", "b"]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            heavy_hitters(LABELS, threshold=0.0)


class TestEntropyAndImpurity:
    def test_entropy_uniform_is_log2(self):
        labels = ["a", "b", "c", "d"] * 25
        assert shannon_entropy(labels) == pytest.approx(2.0)

    def test_entropy_single_value_is_zero(self):
        assert shannon_entropy(["x"] * 10) == 0.0

    def test_normalized_entropy_bounds(self):
        skewed = ["a"] * 99 + ["b"]
        uniform = ["a", "b"] * 50
        assert 0.0 < normalized_entropy(skewed) < normalized_entropy(uniform)
        assert normalized_entropy(uniform) == pytest.approx(1.0)

    def test_gini_impurity(self):
        assert gini_impurity(["x"] * 5) == 0.0
        assert gini_impurity(["a", "b"] * 10) == pytest.approx(0.5)

    def test_distinct_count_and_mode(self):
        assert distinct_count(LABELS) == 4
        assert mode(LABELS) == "a"


class TestNumericFrequencies:
    def test_integer_values_render_without_decimals(self):
        table = numeric_value_frequencies(np.array([1.0, 1.0, 2.0, np.nan]))
        assert table[0].label == "1"
        assert table[0].count == 2

    def test_non_integer_values(self):
        table = numeric_value_frequencies(np.array([0.5, 0.5, 1.25]))
        assert table[0].label == "0.5"
