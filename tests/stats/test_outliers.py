"""Tests for outlier detection and the Outlier insight metric."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.outliers import (
    average_standardized_distance,
    detect_outliers,
    get_detector,
    iqr_detector,
    mad_detector,
    outlier_strength,
    zscore_detector,
)


@pytest.fixture(scope="module")
def data_with_outliers() -> np.ndarray:
    rng = np.random.default_rng(0)
    values = rng.standard_normal(2000)
    values[:5] = [15.0, -14.0, 18.0, 20.0, -17.0]
    return values


class TestDetectors:
    def test_zscore_flags_planted_outliers(self, data_with_outliers):
        result = detect_outliers(data_with_outliers, "zscore", threshold=4.0)
        assert result.count == 5

    def test_iqr_flags_planted_outliers(self, data_with_outliers):
        result = detect_outliers(data_with_outliers, "iqr", k=3.0)
        assert result.count >= 5

    def test_mad_flags_planted_outliers(self, data_with_outliers):
        result = detect_outliers(data_with_outliers, "mad", threshold=6.0)
        assert result.count >= 5

    def test_clean_data_has_few_outliers(self):
        clean = np.random.default_rng(1).uniform(0, 1, 1000)
        assert detect_outliers(clean, "zscore").count == 0

    def test_constant_column_has_no_outliers(self):
        assert detect_outliers(np.full(100, 3.0), "iqr").count == 0
        assert detect_outliers(np.full(100, 3.0), "zscore").count == 0
        assert detect_outliers(np.full(100, 3.0), "mad").count == 0

    def test_result_metadata(self, data_with_outliers):
        result = detect_outliers(data_with_outliers, "iqr")
        assert result.n_total == data_with_outliers.size
        assert 0.0 < result.fraction < 0.1
        assert "iqr" in result.detector

    def test_custom_callable_detector(self, data_with_outliers):
        result = detect_outliers(data_with_outliers, lambda v: v > 10.0)
        assert result.count == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            zscore_detector(0.0)
        with pytest.raises(ValueError):
            iqr_detector(-1.0)
        with pytest.raises(ValueError):
            mad_detector(0.0)

    def test_get_detector_unknown(self):
        with pytest.raises(ValueError):
            get_detector("dbscan")

    def test_too_few_values(self):
        with pytest.raises(EmptyColumnError):
            detect_outliers(np.array([1.0, 2.0]))


class TestMetric:
    def test_metric_zero_without_outliers(self):
        clean = np.random.default_rng(2).uniform(0, 1, 500)
        assert average_standardized_distance(clean, "zscore") == 0.0

    def test_metric_grows_with_outlier_extremity(self):
        rng = np.random.default_rng(3)
        base = rng.standard_normal(1000)
        mild = base.copy()
        mild[0] = 6.0
        extreme = base.copy()
        extreme[0] = 30.0
        assert average_standardized_distance(extreme, "zscore") > (
            average_standardized_distance(mild, "zscore")
        )

    def test_metric_is_in_standard_deviations(self):
        values = np.concatenate([np.random.default_rng(4).standard_normal(1000), [10.0]])
        metric = average_standardized_distance(values, "zscore", threshold=5.0)
        assert metric == pytest.approx(10.0, abs=1.0)

    def test_outlier_strength_returns_result(self, data_with_outliers):
        strength, result = outlier_strength(data_with_outliers, "zscore", threshold=4.0)
        assert strength > 10.0
        assert result.count == 5

    def test_constant_column_scores_zero(self):
        strength, result = outlier_strength(np.full(50, 2.0))
        assert strength == 0.0
        assert result.count == 0
