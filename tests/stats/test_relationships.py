"""Tests for monotonic-relationship and segmentation measures."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.monotonic import (
    monotonic_relation,
    monotonic_strength,
    monotonicity_score,
)
from repro.stats.segmentation import (
    anova,
    anova_f_statistic,
    eta_squared,
    group_centroids,
    segmentation_strength,
)


class TestMonotonic:
    def test_exponential_relationship_flagged(self):
        x = np.linspace(0.1, 6.0, 500)
        y = np.exp(x)
        relation = monotonic_relation(x, y)
        assert relation.spearman == pytest.approx(1.0)
        assert abs(relation.pearson) < 0.95
        assert relation.nonlinearity_gap > 0.0
        assert monotonic_strength(x, y) > 0.05

    def test_linear_relationship_scores_low(self):
        x = np.linspace(0, 1, 500)
        y = 2 * x + 1
        assert monotonic_strength(x, y) == pytest.approx(0.0, abs=1e-9)

    def test_direction(self):
        x = np.linspace(0.1, 5, 100)
        assert monotonic_relation(x, 1.0 / x).direction == "decreasing"
        assert monotonic_relation(x, x**3).direction == "increasing"

    def test_independent_scores_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3000)
        y = rng.standard_normal(3000)
        assert monotonic_strength(x, y) < 0.05

    def test_monotonicity_score_is_abs_spearman(self):
        x = np.linspace(0.1, 5, 100)
        assert monotonicity_score(x, -np.sqrt(x)) == pytest.approx(1.0)


class TestAnova:
    def test_separated_groups(self):
        values = np.concatenate([np.zeros(50), np.ones(50) * 10])
        labels = ["a"] * 50 + ["b"] * 50
        result = anova(values, labels)
        assert result.eta_squared > 0.95
        assert result.f_statistic > 100
        assert result.n_groups == 2

    def test_no_group_effect(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal(3000)
        labels = rng.choice(["a", "b", "c"], 3000).tolist()
        assert eta_squared(values, labels) < 0.01

    def test_identical_groups_zero_f(self):
        values = np.concatenate([np.ones(10) * 5, np.ones(10) * 5])
        labels = ["a"] * 10 + ["b"] * 10
        assert anova_f_statistic(values, labels) == 0.0

    def test_requires_two_groups(self):
        with pytest.raises(EmptyColumnError):
            anova(np.arange(10.0), ["only"] * 10)

    def test_missing_values_dropped(self):
        values = np.array([1.0, np.nan, 2.0, 10.0, 11.0, np.nan])
        labels = ["a", "a", "a", "b", "b", "b"]
        result = anova(values, labels)
        assert result.n_values == 4


class TestSegmentation:
    def test_clustered_points_score_high(self, clustered_table):
        strength = segmentation_strength(
            clustered_table.numeric_column("x").values,
            clustered_table.numeric_column("y").values,
            clustered_table.categorical_column("cluster").labels(),
        )
        assert strength > 0.7

    def test_random_grouping_scores_low(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(2000)
        y = rng.standard_normal(2000)
        labels = rng.choice(["a", "b", "c"], 2000).tolist()
        assert segmentation_strength(x, y, labels) < 0.05

    def test_single_group_scores_zero(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)
        assert segmentation_strength(x, y, ["only"] * 100) == 0.0

    def test_group_centroids(self):
        x = np.array([0.0, 0.0, 10.0, 10.0])
        y = np.array([0.0, 2.0, 10.0, 12.0])
        centroids = group_centroids(x, y, ["a", "a", "b", "b"])
        assert centroids["a"] == (0.0, 1.0)
        assert centroids["b"] == (10.0, 11.0)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            segmentation_strength(np.ones(3), np.ones(4), ["a"] * 3)

    def test_too_few_rows(self):
        with pytest.raises(EmptyColumnError):
            segmentation_strength(np.ones(2), np.ones(2), ["a", "b"])
