"""Tests for general statistical dependence measures."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.dependence import (
    chi_square,
    contingency_table,
    correlation_ratio,
    cramers_v,
    discretize,
    mutual_information,
    numeric_mutual_information,
    symmetric_uncertainty,
)


class TestContingency:
    def test_counts(self):
        table = contingency_table(["a", "a", "b"], ["x", "y", "x"])
        assert table.shape == (2, 2)
        assert table.sum() == 3

    def test_missing_rows_dropped(self):
        table = contingency_table(["a", None, "b"], ["x", "y", None])
        assert table.sum() == 1

    def test_empty_raises(self):
        with pytest.raises(EmptyColumnError):
            contingency_table([None], [None])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table(["a"], ["x", "y"])

    def test_chi_square_independent_is_small(self):
        rng = np.random.default_rng(0)
        x = rng.choice(["a", "b"], 2000)
        y = rng.choice(["u", "v"], 2000)
        assert chi_square(contingency_table(x, y)) < 10.0


class TestCramersV:
    def test_perfect_association(self):
        x = ["a", "b", "c"] * 50
        assert cramers_v(x, x) == pytest.approx(1.0)

    def test_independence_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.choice(["a", "b", "c"], 5000)
        y = rng.choice(["u", "v", "w"], 5000)
        assert cramers_v(x, y) < 0.05

    def test_single_level_gives_zero(self):
        assert cramers_v(["a"] * 10, ["x", "y"] * 5) == 0.0


class TestMutualInformation:
    def test_identical_variables(self):
        x = ["a", "b"] * 100
        assert mutual_information(x, x) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        x = rng.choice(["a", "b"], 5000)
        y = rng.choice(["u", "v"], 5000)
        assert mutual_information(x, y) < 0.01

    def test_symmetric_uncertainty_bounds(self):
        x = ["a", "b"] * 100
        assert symmetric_uncertainty(x, x) == pytest.approx(1.0)
        rng = np.random.default_rng(3)
        a = rng.choice(["a", "b"], 3000)
        b = rng.choice(["u", "v"], 3000)
        assert 0.0 <= symmetric_uncertainty(a, b) < 0.05

    def test_numeric_mutual_information_detects_nonlinear(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-3, 3, 5000)
        y = x**2 + 0.1 * rng.standard_normal(5000)
        independent = rng.uniform(-3, 3, 5000)
        assert numeric_mutual_information(x, y) > numeric_mutual_information(x, independent) + 0.3


class TestDiscretize:
    def test_bin_labels_and_missing(self):
        labels = discretize(np.array([0.0, 0.5, 1.0, np.nan]), bins=2)
        assert labels[-1] is None
        assert set(label for label in labels if label) <= {"bin0", "bin1"}

    def test_constant_column(self):
        assert discretize(np.array([2.0, 2.0]), bins=4) == ["bin0", "bin0"]

    def test_all_missing_raises(self):
        with pytest.raises(EmptyColumnError):
            discretize(np.array([np.nan]))


class TestCorrelationRatio:
    def test_perfect_separation(self):
        labels = ["a"] * 50 + ["b"] * 50
        values = np.concatenate([np.zeros(50), np.ones(50)])
        assert correlation_ratio(labels, values) == pytest.approx(1.0)

    def test_no_group_effect(self):
        rng = np.random.default_rng(5)
        labels = rng.choice(["a", "b", "c"], 5000).tolist()
        values = rng.standard_normal(5000)
        assert correlation_ratio(labels, values) < 0.01

    def test_constant_values(self):
        assert correlation_ratio(["a", "b"] * 5, np.ones(10)) == 0.0

    def test_missing_pairs_dropped(self):
        labels = ["a", None, "b", "b"]
        values = np.array([1.0, 2.0, np.nan, 3.0])
        assert 0.0 <= correlation_ratio(labels, values) <= 1.0
