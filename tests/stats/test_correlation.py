"""Tests for correlation statistics (the Linear-Relationship metric)."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.correlation import (
    correlation_confidence_interval,
    correlation_matrix,
    fisher_z,
    kendall_tau,
    linear_fit,
    pearson,
    spearman,
    top_correlated_pairs,
)


@pytest.fixture(scope="module")
def correlated_pair():
    rng = np.random.default_rng(0)
    x = rng.standard_normal(5000)
    y = 0.8 * x + 0.6 * rng.standard_normal(5000)
    return x, y


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        assert abs(pearson(rng.standard_normal(5000), rng.standard_normal(5000))) < 0.05

    def test_constant_column_gives_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_nan_pairs_dropped(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        y = np.array([2.0, 4.0, 6.0, 8.0])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_too_few_pairs_raises(self):
        with pytest.raises(EmptyColumnError):
            pearson(np.array([1.0, np.nan]), np.array([np.nan, 2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))

    def test_planted_correlation_recovered(self, correlated_pair):
        x, y = correlated_pair
        assert pearson(x, y) == pytest.approx(0.8, abs=0.03)


class TestRankCorrelations:
    def test_spearman_equals_one_for_monotone(self):
        x = np.linspace(0.1, 5.0, 200)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)
        assert spearman(x, -np.log(x)) == pytest.approx(-1.0)

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 2.0, 3.0, 3.0])
        from scipy import stats as scipy_stats

        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected)

    def test_kendall_tau_matches_scipy(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(60)
        y = 0.5 * x + rng.standard_normal(60)
        from scipy import stats as scipy_stats

        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-9)

    def test_kendall_constant(self):
        assert kendall_tau(np.ones(10), np.arange(10.0)) == 0.0


class TestLinearFit:
    def test_recovers_slope_and_intercept(self):
        x = np.linspace(0, 10, 100)
        y = 3.0 * x - 2.0
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit(np.array([0.0, 1.0, 2.0]), np.array([1.0, 3.0, 5.0]))
        np.testing.assert_allclose(fit.predict(np.array([3.0])), [7.0])

    def test_constant_x(self):
        fit = linear_fit(np.ones(5), np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(3.0)


class TestCorrelationMatrix:
    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((2000, 6))
        ours = correlation_matrix(matrix)
        expected = np.corrcoef(matrix, rowvar=False)
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_diagonal_is_one(self):
        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((100, 4))
        np.testing.assert_allclose(np.diag(correlation_matrix(matrix)), 1.0)

    def test_constant_column_rows_zeroed(self):
        rng = np.random.default_rng(6)
        matrix = np.column_stack([rng.standard_normal(100), np.ones(100)])
        corr = correlation_matrix(matrix)
        assert corr[0, 1] == 0.0
        assert corr[1, 1] == 1.0

    def test_pairwise_complete_with_nans(self):
        rng = np.random.default_rng(7)
        matrix = rng.standard_normal((500, 3))
        matrix[::7, 0] = np.nan
        corr = correlation_matrix(matrix)
        keep = ~np.isnan(matrix[:, 0])
        expected = pearson(matrix[keep, 0], matrix[keep, 1])
        assert corr[0, 1] == pytest.approx(expected)

    def test_spearman_method(self):
        x = np.linspace(0.1, 5, 300)
        matrix = np.column_stack([x, np.exp(x)])
        corr = correlation_matrix(matrix, method="spearman")
        assert corr[0, 1] == pytest.approx(1.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.ones((10, 2)), method="cosine")

    def test_top_correlated_pairs_order(self, oecd_table):
        matrix, names = oecd_table.numeric_matrix()
        pairs = top_correlated_pairs(matrix, names, k=5)
        magnitudes = [abs(p[2]) for p in pairs]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert {pairs[0][0], pairs[0][1]} == {
            "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
        }


class TestInference:
    def test_fisher_z_monotone(self):
        assert fisher_z(0.5) > fisher_z(0.2)

    def test_confidence_interval_contains_estimate(self):
        low, high = correlation_confidence_interval(0.6, n=200)
        assert low < 0.6 < high
        assert -1.0 <= low <= high <= 1.0

    def test_confidence_interval_small_n(self):
        assert correlation_confidence_interval(0.5, n=3) == (-1.0, 1.0)
