"""Tests for multimodality, normality and histogram binning."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.histogram import (
    auto_bin_count,
    freedman_diaconis_bin_width,
    histogram,
    histogram_counts,
    scott_bin_width,
    sturges_bins,
)
from repro.stats.multimodality import (
    bimodality_coefficient,
    find_modes,
    mode_count,
    multimodality_strength,
)
from repro.stats.normality import (
    non_normality_score,
    normality_score,
    normality_test,
)


@pytest.fixture(scope="module")
def normal_sample() -> np.ndarray:
    return np.random.default_rng(0).standard_normal(5000)


@pytest.fixture(scope="module")
def bimodal_sample() -> np.ndarray:
    rng = np.random.default_rng(1)
    return np.concatenate([rng.normal(-4, 1, 2500), rng.normal(4, 1, 2500)])


class TestHistogramRules:
    def test_sturges(self):
        assert sturges_bins(np.arange(1024.0)) == 11

    def test_scott_and_fd_positive(self, normal_sample):
        assert scott_bin_width(normal_sample) > 0
        assert freedman_diaconis_bin_width(normal_sample) > 0

    def test_constant_column_widths_zero(self):
        constant = np.full(100, 5.0)
        assert scott_bin_width(constant) == 0.0
        assert freedman_diaconis_bin_width(constant) == 0.0
        assert auto_bin_count(constant) == 1

    def test_auto_bin_count_bounded(self, normal_sample):
        assert 1 <= auto_bin_count(normal_sample, max_bins=50) <= 50

    def test_histogram_counts_sum_to_n(self, normal_sample):
        counts, edges = histogram_counts(normal_sample, bins=20)
        assert counts.sum() == normal_sample.size
        assert edges.size == 21

    def test_histogram_bins_structure(self, normal_sample):
        bars = histogram(normal_sample, bins=10)
        assert len(bars) == 10
        assert sum(b.frequency for b in bars) == pytest.approx(1.0)
        assert all(b.left < b.right for b in bars)
        assert bars[0].center == pytest.approx((bars[0].left + bars[0].right) / 2)

    def test_empty_raises(self):
        with pytest.raises(EmptyColumnError):
            histogram(np.array([np.nan]))


class TestMultimodality:
    def test_unimodal_scores_zero(self, normal_sample):
        assert multimodality_strength(normal_sample) == pytest.approx(0.0, abs=0.2)

    def test_bimodal_scores_high(self, bimodal_sample):
        assert multimodality_strength(bimodal_sample) > 0.5

    def test_mode_count(self, bimodal_sample, normal_sample):
        assert mode_count(bimodal_sample) == 2
        assert mode_count(normal_sample) <= 2

    def test_find_modes_locations(self, bimodal_sample):
        modes = find_modes(bimodal_sample)
        locations = sorted(m.location for m in modes[:2])
        assert locations[0] == pytest.approx(-4.0, abs=1.0)
        assert locations[1] == pytest.approx(4.0, abs=1.0)

    def test_constant_column_single_mode(self):
        modes = find_modes(np.full(100, 3.0))
        assert len(modes) == 1
        assert modes[0].location == 3.0

    def test_bimodality_coefficient_orders_shapes(self, bimodal_sample, normal_sample):
        assert bimodality_coefficient(bimodal_sample) > bimodality_coefficient(normal_sample)

    def test_too_few_values(self):
        with pytest.raises(EmptyColumnError):
            find_modes(np.array([1.0, 2.0]))


class TestNormality:
    def test_normal_sample_scores_high(self, normal_sample):
        assert normality_score(normal_sample) > 0.7
        assert normality_test(normal_sample).shape_label == "approximately normal"

    def test_skewed_sample_detected(self):
        skewed = np.random.default_rng(2).lognormal(size=5000)
        result = normality_test(skewed)
        assert result.shape_label == "right-skewed"
        assert non_normality_score(skewed) > 0.3

    def test_left_skew_detected(self):
        left = -np.random.default_rng(3).lognormal(size=5000)
        assert normality_test(left).shape_label == "left-skewed"

    def test_scores_complementary(self, normal_sample):
        assert normality_score(normal_sample) + non_normality_score(normal_sample) == pytest.approx(1.0)

    def test_constant_column(self):
        result = normality_test(np.full(100, 1.0))
        assert result.ks_statistic == 1.0

    def test_too_few_values(self):
        with pytest.raises(EmptyColumnError):
            normality_test(np.array([1.0, 2.0, 3.0]))
