"""Tests for moment statistics (dispersion, skew, heavy-tails metrics)."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.moments import (
    RunningMoments,
    coefficient_of_variation,
    excess_kurtosis,
    kurtosis,
    mean,
    moment_summary,
    skewness,
    std,
    variance,
)


@pytest.fixture(scope="module")
def normal_sample() -> np.ndarray:
    return np.random.default_rng(0).standard_normal(50_000)


class TestArrayMoments:
    def test_mean_variance_std(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert mean(values) == pytest.approx(2.5)
        assert variance(values) == pytest.approx(np.var(values))
        assert std(values) == pytest.approx(np.std(values))

    def test_nan_ignored(self):
        values = np.array([1.0, np.nan, 3.0])
        assert mean(values) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyColumnError):
            mean(np.array([np.nan]))

    def test_skewness_of_symmetric_is_zero(self, normal_sample):
        assert skewness(normal_sample) == pytest.approx(0.0, abs=0.05)

    def test_skewness_sign(self):
        right = np.random.default_rng(1).lognormal(size=10_000)
        assert skewness(right) > 1.0
        assert skewness(-right) < -1.0

    def test_constant_column_has_zero_skew_and_kurtosis(self):
        values = np.full(10, 7.0)
        assert skewness(values) == 0.0
        assert kurtosis(values) == 0.0

    def test_kurtosis_of_normal_is_three(self, normal_sample):
        assert kurtosis(normal_sample) == pytest.approx(3.0, abs=0.1)

    def test_excess_kurtosis(self, normal_sample):
        assert excess_kurtosis(normal_sample) == pytest.approx(0.0, abs=0.1)

    def test_heavy_tails_have_higher_kurtosis(self):
        heavy = np.random.default_rng(2).standard_t(df=3, size=20_000)
        assert kurtosis(heavy) > 4.0

    def test_coefficient_of_variation(self):
        values = np.array([10.0, 12.0, 8.0, 10.0])
        assert coefficient_of_variation(values) == pytest.approx(np.std(values) / 10.0)

    def test_coefficient_of_variation_zero_mean(self):
        assert coefficient_of_variation(np.array([-1.0, 1.0])) == np.inf

    def test_moment_summary_fields(self):
        summary = moment_summary(np.array([1.0, 2.0, 3.0]))
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert set(summary.as_dict()) == {
            "count", "mean", "variance", "std", "skewness", "kurtosis", "min", "max",
        }


class TestRunningMoments:
    def test_matches_array_computation(self, normal_sample):
        running = RunningMoments()
        running.update_array(normal_sample)
        assert running.mean == pytest.approx(float(np.mean(normal_sample)))
        assert running.variance == pytest.approx(float(np.var(normal_sample)))
        assert running.skewness == pytest.approx(skewness(normal_sample), abs=1e-9)
        assert running.kurtosis == pytest.approx(kurtosis(normal_sample), abs=1e-9)

    def test_single_value_updates(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        running = RunningMoments()
        running.update_many(values)
        assert running.n == 8
        assert running.mean == pytest.approx(np.mean(values))
        assert running.variance == pytest.approx(np.var(values))

    def test_nan_values_skipped(self):
        running = RunningMoments()
        running.update(float("nan"))
        running.update(2.0)
        assert running.n == 1

    def test_merge_equals_single_pass(self, normal_sample):
        left, right = normal_sample[:20_000], normal_sample[20_000:]
        a = RunningMoments()
        a.update_array(left)
        b = RunningMoments()
        b.update_array(right)
        merged = a.merged(b)
        whole = RunningMoments()
        whole.update_array(normal_sample)
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.skewness == pytest.approx(whole.skewness, abs=1e-9)
        assert merged.kurtosis == pytest.approx(whole.kurtosis, abs=1e-9)

    def test_merge_with_empty(self):
        a = RunningMoments()
        b = RunningMoments()
        b.update_many([1.0, 2.0])
        assert a.merged(b).n == 2
        assert b.merged(a).mean == pytest.approx(1.5)

    def test_min_max_tracked(self):
        running = RunningMoments()
        running.update_many([5.0, -2.0, 7.0])
        assert running.minimum == -2.0
        assert running.maximum == 7.0

    def test_summary_requires_data(self):
        with pytest.raises(EmptyColumnError):
            RunningMoments().summary()

    def test_empty_statistics_are_nan(self):
        running = RunningMoments()
        assert np.isnan(running.variance)
        assert np.isnan(running.skewness)
