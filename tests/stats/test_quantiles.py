"""Tests for exact quantile statistics."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError
from repro.stats.quantiles import (
    five_number_summary,
    iqr,
    median,
    quantile,
    quantile_skewness,
    quantiles,
    rank_of,
    trimmed_mean,
)


class TestQuantiles:
    def test_quantile_endpoints(self):
        values = np.arange(1.0, 101.0)
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 100.0

    def test_median_odd_even(self):
        assert median(np.array([3.0, 1.0, 2.0])) == 2.0
        assert median(np.array([1.0, 2.0, 3.0, 4.0])) == 2.5

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            quantile(np.array([1.0]), 1.5)

    def test_multiple_quantiles(self):
        values = np.arange(0.0, 101.0)
        q = quantiles(values, [0.25, 0.5, 0.75])
        assert q == [25.0, 50.0, 75.0]

    def test_nan_ignored(self):
        assert median(np.array([1.0, np.nan, 3.0])) == 2.0

    def test_empty_raises(self):
        with pytest.raises(EmptyColumnError):
            median(np.array([np.nan, np.nan]))

    def test_iqr(self):
        values = np.arange(0.0, 101.0)
        assert iqr(values) == 50.0

    def test_rank_of(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert rank_of(values, 3.0) == 3
        assert rank_of(values, 0.0) == 0
        assert rank_of(values, 10.0) == 5


class TestFiveNumberSummary:
    def test_fields_ordered(self):
        summary = five_number_summary(np.arange(0.0, 101.0))
        assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum
        assert summary.iqr == summary.q3 - summary.q1

    def test_whiskers_clipped_to_data(self):
        summary = five_number_summary(np.arange(0.0, 11.0))
        low, high = summary.whiskers()
        assert low >= summary.minimum
        assert high <= summary.maximum

    def test_as_dict(self):
        summary = five_number_summary(np.array([1.0, 2.0, 3.0]))
        assert set(summary.as_dict()) == {"min", "q1", "median", "q3", "max"}


class TestRobustStatistics:
    def test_trimmed_mean_removes_outliers(self):
        values = np.concatenate([np.ones(98), [1000.0, -1000.0]])
        assert trimmed_mean(values, 0.05) == pytest.approx(1.0)

    def test_trimmed_mean_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.array([1.0]), 0.6)

    def test_quantile_skewness_sign(self):
        right_skewed = np.random.default_rng(0).lognormal(size=5000)
        symmetric = np.random.default_rng(1).standard_normal(5000)
        assert quantile_skewness(right_skewed) > 0.1
        assert abs(quantile_skewness(symmetric)) < 0.1

    def test_quantile_skewness_constant(self):
        assert quantile_skewness(np.full(10, 3.0)) == 0.0
