"""Unit tests for the shared benchmark helpers (benchmarks/bench_util.py).

The benchmarks run as plain scripts with ``benchmarks/`` on
``sys.path``; the suite loads the module the same way so one percentile
implementation is pinned for every ``BENCH_*.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_util  # noqa: E402  (needs the path tweak above)


class TestPercentile:
    """Regression (ISSUE 10): the nearest-rank index must be ceil-based.

    ``round()`` banker's-rounds ``.5`` ranks down to the even index and
    biases p50/p95 low on small samples — e.g. a 6-sample p50 landed on
    the 3rd value instead of the 4th.
    """

    def test_half_rank_rounds_up_not_to_even(self):
        # q*(n-1) = 2.5: round() gives index 2 (30), ceil gives 3 (40).
        assert bench_util.percentile([10, 20, 30, 40, 50, 60], 0.5) == 40

    def test_p95_on_a_hundred_samples(self):
        values = list(range(100))
        # rank 0.95 * 99 = 94.05 -> index 95.
        assert bench_util.percentile(values, 0.95) == 95

    def test_extremes_and_clamping(self):
        values = [3.0, 1.0, 2.0]
        assert bench_util.percentile(values, 0.0) == 1.0
        assert bench_util.percentile(values, 1.0) == 3.0
        # Out-of-range quantiles clamp instead of indexing off the end.
        assert bench_util.percentile(values, 1.5) == 3.0
        assert bench_util.percentile(values, -0.5) == 1.0

    def test_input_need_not_be_sorted(self):
        assert bench_util.percentile([9.0, 1.0, 5.0, 7.0, 3.0], 0.5) == 5.0

    def test_single_sample(self):
        assert bench_util.percentile([42.0], 0.5) == 42.0
        assert bench_util.percentile([42.0], 0.99) == 42.0
