"""Integration tests: end-to-end engine runs on all three demo datasets."""

import pytest

from repro import Foresight
from repro.core.engine import EngineConfig
from repro.sketch.store import SketchStoreConfig
from repro.viz.ascii import render


FAST_SKETCH = SketchStoreConfig(hyperplane_width=256, sample_capacity=500)


@pytest.fixture(scope="module")
def parkinson_engine(parkinson_table) -> Foresight:
    return Foresight(parkinson_table, config=EngineConfig(sketch=FAST_SKETCH))


@pytest.fixture(scope="module")
def imdb_engine(imdb_table) -> Foresight:
    return Foresight(imdb_table, config=EngineConfig(sketch=FAST_SKETCH))


class TestParkinsonExploration:
    def test_carousels_nonempty_for_core_classes(self, parkinson_engine):
        carousels = parkinson_engine.carousels(
            top_k=3,
            insight_classes=["linear_relationship", "outliers", "heavy_tails", "skew"],
        )
        assert all(len(c) == 3 for c in carousels)

    def test_updrs_correlations_surface(self, parkinson_engine):
        result = parkinson_engine.query(
            "linear_relationship", top_k=10, fixed=("UPDRS_Total",), mode="exact"
        )
        partners = {attr for i in result for attr in i.attributes}
        assert "UPDRS_III" in partners
        assert result.top().score > 0.8

    def test_progression_is_monotonic_with_duration(self, parkinson_engine):
        result = parkinson_engine.query(
            "monotonic_relationship", top_k=200, mode="exact",
            fixed=("YearsSinceDiagnosis",),
        )
        assert any(i.involves("TimedUpAndGo") or i.involves("LatentSeverity") for i in result)

    def test_missing_values_insight_finds_csf_columns(self, parkinson_engine):
        result = parkinson_engine.query("missing_values", top_k=5)
        top_attributes = {i.attributes[0] for i in result}
        assert top_attributes & {"CSF_ABeta", "CSF_Tau", "DaTscanPutamen"}

    def test_dependence_links_cohort_to_severity(self, parkinson_engine):
        result = parkinson_engine.query(
            "dependence", top_k=300, mode="exact", fixed=("Cohort",)
        )
        severity = next(i for i in result if i.involves("UPDRS_Total"))
        assert severity.score > 0.3


class TestImdbExploration:
    def test_profitability_question(self, imdb_engine):
        """'What factors correlate highly with a film's profitability?'"""
        result = imdb_engine.query(
            "linear_relationship", top_k=10, fixed=("ProfitMillions",), mode="exact"
        )
        partners = {attr for i in result for attr in i.attributes if attr != "ProfitMillions"}
        assert "GrossMillions" in partners or "Gross" in partners

    def test_critical_vs_commercial_question(self, imdb_engine):
        """'How are critical responses and commercial success interrelated?'"""
        result = imdb_engine.query(
            "linear_relationship", top_k=60, fixed=("IMDBScore",), mode="exact"
        )
        critic = next(i for i in result if i.involves("CriticScore"))
        assert critic.details["correlation"] > 0.5

    def test_heavy_hitters_in_country_and_genre(self, imdb_engine):
        result = imdb_engine.query("heterogeneous_frequencies", top_k=10, mode="exact")
        attributes = {i.attributes[0] for i in result}
        assert "Country" in attributes or "Language" in attributes

    def test_gross_is_heavy_tailed_and_outlier_prone(self, imdb_engine):
        heavy = imdb_engine.query("heavy_tails", top_k=10, mode="exact")
        assert any("Gross" in i.attributes[0] for i in heavy)
        outliers = imdb_engine.query("outliers", top_k=10, mode="exact")
        assert all(i.score > 0 for i in outliers)

    def test_visualizations_render_for_top_insights(self, imdb_engine):
        for class_name in ("linear_relationship", "outliers", "heterogeneous_frequencies"):
            insight = imdb_engine.query(class_name, top_k=1).top()
            spec = imdb_engine.visualize(insight)
            text = render(spec)
            assert isinstance(text, str) and len(text) > 20


class TestApproximateVsExactAgreement:
    @pytest.mark.parametrize("class_name", ["skew", "heavy_tails", "dispersion"])
    def test_moment_insights_identical(self, parkinson_engine, class_name):
        approx = parkinson_engine.query(class_name, top_k=3, mode="approximate")
        exact = parkinson_engine.query(class_name, top_k=3, mode="exact")
        assert [i.attributes for i in approx] == [i.attributes for i in exact]

    def test_correlation_top5_overlap(self, parkinson_engine):
        approx = parkinson_engine.query("linear_relationship", top_k=5, mode="approximate")
        exact = parkinson_engine.query("linear_relationship", top_k=5, mode="exact")
        approx_pairs = {frozenset(i.attributes) for i in approx}
        exact_pairs = {frozenset(i.attributes) for i in exact}
        assert len(approx_pairs & exact_pairs) >= 3
