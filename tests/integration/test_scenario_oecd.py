"""Integration test: the full section 4.1 usage scenario on the OECD data.

The paper walks an analyst through a specific discovery sequence; this test
replays every step against the engine and asserts the findings the paper
reports.
"""

import pytest

from repro import Foresight
from repro.core.session import ExplorationSession


@pytest.fixture(scope="module")
def session(oecd_engine: Foresight) -> ExplorationSession:
    return ExplorationSession(oecd_engine, name="scenario-4.1")


class TestUsageScenario:
    def test_step1_top_correlation_is_workhours_vs_leisure(self, session):
        """'She notes instantly that Working Long Hours and Time Devoted To
        Leisure have a strong negative correlation, since this is one of the
        top-ranked correlation insights recommended by Foresight.'"""
        carousel = session.carousels(top_k=3, insight_classes=["linear_relationship"])[0]
        top = carousel.insights[0]
        assert set(top.attributes) == {
            "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
        }
        assert top.details["correlation"] < -0.8

    def test_step2_focus_updates_recommendations(self, session, oecd_engine):
        """'Foresight updates its recommendations by choosing a subset of
        insights within the neighborhood of the focused insight.'"""
        top = oecd_engine.query("linear_relationship", top_k=1).top()
        session.clear_focus()
        session.focus(top)
        nearby = session.recommend_near_focus("linear_relationship", top_k=5)
        assert len(nearby) == 5
        # The focused insight itself is never recommended back.
        assert all(i.key != top.key for i in nearby)
        # "Two insights can be considered similar if their metric scores are
        # similar or if the sets of fixed attributes are similar" (section
        # 2.1): the nearest-by-score correlation pair (Self Reported Health
        # vs Life Satisfaction) must appear in the neighborhood.
        assert any(
            set(i.attributes) == {"SelfReportedHealth", "LifeSatisfaction"}
            for i in nearby
        )

    def test_step3_spearman_ranking_available(self, oecd_engine):
        """'The analyst explores the newly recommended correlations through
        multiple ranking metrics such as Pearson ... and Spearman rank
        correlation.'"""
        from repro.core.classes import LinearRelationshipInsight

        spearman_class = LinearRelationshipInsight(method="spearman")
        context = oecd_engine.context("exact")
        scored = spearman_class.score(
            ("TimeDevotedToLeisure", "EmployeesWorkingVeryLongHours"), context
        )
        assert scored.score > 0.8

    def test_step4_leisure_uncorrelated_with_health(self, oecd_engine):
        """'...surprised to learn that Time Devoted To Leisure has no
        correlation with Self Reported Health.'"""
        result = oecd_engine.query(
            "linear_relationship", top_k=50, fixed=("TimeDevotedToLeisure",), mode="exact"
        )
        pair = next(
            i for i in result if i.involves("SelfReportedHealth")
        )
        assert abs(pair.details["correlation"]) < 0.1

    def test_step5_distribution_shapes(self, oecd_engine):
        """'Time Devoted To Leisure has a Normal distribution while Self
        Reported Health has a left-skewed distribution.'"""
        shapes = oecd_engine.query("normality", top_k=30, mode="exact")
        by_attribute = {i.attributes[0]: i for i in shapes}
        assert by_attribute["SelfReportedHealth"].details["shape"] == "left-skewed"
        assert by_attribute["TimeDevotedToLeisure"].details["shape"] == "approximately normal"
        skew = oecd_engine.query("skew", top_k=30, mode="exact")
        skew_by_attribute = {i.attributes[0]: i for i in skew}
        assert skew_by_attribute["SelfReportedHealth"].details["direction"] == "left-skewed"

    def test_step6_focus_on_health_surfaces_life_satisfaction(self, session, oecd_engine):
        """'She clicks on the distribution of Self Reported Health ...
        Foresight recommends a new set of correlated attributes and she finds
        that Life Satisfaction and Self Reported Health are highly
        correlated.'"""
        shape = next(
            i for i in oecd_engine.query("normality", top_k=30, mode="exact")
            if i.attributes == ("SelfReportedHealth",)
        )
        session.clear_focus()
        session.focus(shape)
        recommended = session.recommend_near_focus("linear_relationship", top_k=5)
        life_satisfaction = next(
            (i for i in recommended if set(i.attributes) == {"SelfReportedHealth", "LifeSatisfaction"}),
            None,
        )
        assert life_satisfaction is not None
        assert life_satisfaction.details["correlation"] > 0.8

    def test_step7_save_state_for_later(self, session, oecd_engine):
        """'...our analyst saves the current Foresight state to revisit later
        and to share with her colleagues.'"""
        payload = session.save_json()
        restored = ExplorationSession.restore_json(oecd_engine, payload)
        assert restored.focused_insights
        assert restored.focused_insights[0].attributes == ("SelfReportedHealth",)
