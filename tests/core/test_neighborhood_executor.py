"""Executor wiring through the neighborhood recommender's scoring path.

PR 2 left one path outside the execution layer: the neighborhood
recommender issued one ``rank`` call per focus attribute, each with its
own enumeration and an unsharded score stage.  These tests pin the new
behavior: the whole pool executes as one pipeline run (shared
enumeration, sharded scoring under a parallel executor) and the blended
re-ranking itself fans out over the engine's executor — with results
identical to the serial recommender, per bundled dataset.
"""

from __future__ import annotations

import pytest

from repro.core.executor import ExecutorConfig, create_executor
from repro.core.insight import EvaluationContext, MODE_EXACT
from repro.core.neighborhood import NeighborhoodConfig, NeighborhoodRecommender
from repro.core.query import InsightQuery
from repro.core.ranking import RankingEngine
from repro.core.registry import default_registry


def _recommender(executor_config: ExecutorConfig | None = None,
                 config: NeighborhoodConfig | None = None) -> RankingEngine:
    executor = create_executor(executor_config) if executor_config else None
    engine = RankingEngine(default_registry(), executor=executor)
    return engine, NeighborhoodRecommender(engine, config=config)


def _focus(engine: RankingEngine, context: EvaluationContext):
    return engine.rank(
        InsightQuery("linear_relationship", top_k=1, mode=MODE_EXACT), context
    ).top()


class TestSharedEnumeration:
    def test_nearby_runs_one_pipeline_execution(self, oecd_table):
        engine, recommender = _recommender()
        context = EvaluationContext(table=oecd_table, store=None, mode=MODE_EXACT)
        focus = _focus(engine, context)
        result = recommender.nearby([focus], "linear_relationship", context,
                                    top_k=5)
        stats = result.details["pipeline"]
        # One pool = one enumeration paid, every other pool query shared it
        # (2 focus attributes + 1 unconstrained top-up = 3 queries).
        assert stats["n_queries"] == 3
        assert stats["enumerations"] == 1
        assert stats["shared_queries"] == stats["n_queries"] - 1

    def test_focusless_nearby_still_works(self, oecd_table):
        engine, recommender = _recommender()
        context = EvaluationContext(table=oecd_table, store=None, mode=MODE_EXACT)
        result = recommender.nearby([], "skew", context, top_k=3)
        assert len(result) > 0
        assert result.details["pipeline"]["n_queries"] == 1


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("fixture_name", [
        "oecd_table", "small_mixed_table", "clustered_table",
    ])
    def test_parallel_recommendations_identical(self, fixture_name, request):
        table = request.getfixturevalue(fixture_name)
        context = EvaluationContext(table=table, store=None, mode=MODE_EXACT)

        serial_engine, serial_recommender = _recommender(
            ExecutorConfig(max_workers=1)
        )
        parallel_engine, parallel_recommender = _recommender(
            ExecutorConfig(max_workers=4, min_chunk_size=1)
        )
        focus = _focus(serial_engine, context)
        assert focus == _focus(parallel_engine, context)

        for insight_class in ("linear_relationship", "skew"):
            serial = serial_recommender.nearby(
                [focus], insight_class, context, top_k=6
            )
            parallel = parallel_recommender.nearby(
                [focus], insight_class, context, top_k=6
            )
            assert serial.attribute_sets() == parallel.attribute_sets()
            assert [i.score for i in serial] == [i.score for i in parallel]

    def test_sharded_scoring_engages_under_parallel_executor(self, oecd_table):
        context = EvaluationContext(table=oecd_table, store=None, mode=MODE_EXACT)
        engine, recommender = _recommender(
            ExecutorConfig(max_workers=4, min_chunk_size=1)
        )
        focus = _focus(engine, context)
        result = recommender.nearby([focus], "skew", context, top_k=5)
        # Univariate classes score element-wise, so the pool's score stage
        # must have sharded across the workers.
        assert result.details["pipeline"]["score_shards"] > 1

    def test_blended_reranking_unchanged_by_pool_sharding(self, oecd_table):
        """Strength/similarity blending weights behave identically."""
        context = EvaluationContext(table=oecd_table, store=None, mode=MODE_EXACT)
        config = NeighborhoodConfig(strength_weight=0.2, candidate_pool=30)
        serial_engine, serial_recommender = _recommender(
            ExecutorConfig(max_workers=1), config=config
        )
        _, parallel_recommender = _recommender(
            ExecutorConfig(max_workers=3, min_chunk_size=1), config=config
        )
        focus = _focus(serial_engine, context)
        serial = serial_recommender.nearby(
            [focus], "linear_relationship", context, top_k=8
        )
        parallel = parallel_recommender.nearby(
            [focus], "linear_relationship", context, top_k=8
        )
        assert serial.attribute_sets() == parallel.attribute_sets()
