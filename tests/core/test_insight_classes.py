"""Tests for the twelve concrete insight classes."""

import numpy as np
import pytest

from repro.core.classes import (
    DependenceInsight,
    DispersionInsight,
    HeavyTailsInsight,
    HeterogeneousFrequenciesInsight,
    LinearRelationshipInsight,
    MissingValuesInsight,
    MonotonicRelationshipInsight,
    MultimodalityInsight,
    NormalityInsight,
    OutlierInsight,
    SegmentationInsight,
    SkewInsight,
)
from repro.core.insight import EvaluationContext, MODE_EXACT
from repro.data import DataTable, numeric_column
from repro.data.datasets import make_bimodal_column


@pytest.fixture(scope="module")
def shapes_table() -> DataTable:
    """A table with one column per planted distributional property."""
    rng = np.random.default_rng(0)
    n = 3000
    normal = rng.standard_normal(n)
    skewed = rng.lognormal(size=n)
    heavy = rng.standard_t(df=2.5, size=n)
    outliers = rng.standard_normal(n)
    outliers[:6] = [25, -22, 28, 30, -26, 24]
    x = rng.standard_normal(n)
    linear = 0.95 * x + 0.3 * rng.standard_normal(n)
    exponential = np.exp(1.5 * x)
    category = rng.choice(["a", "b", "c", "d", "e"], size=n, p=[0.7, 0.15, 0.08, 0.05, 0.02])
    group = rng.choice(["g1", "g2", "g3"], size=n)
    # Different group-to-offset mappings keep the two shifted columns only
    # moderately correlated with each other while remaining cleanly
    # separated by group in the (x, y) plane.
    shifted = x + np.where(group == "g1", -8.0, np.where(group == "g2", 0.0, 8.0))
    shifted_y = rng.standard_normal(n) + np.where(group == "g1", 8.0, np.where(group == "g2", -8.0, 0.0))
    gappy = rng.standard_normal(n)
    gappy[: n // 2] = np.nan
    bimodal = make_bimodal_column(n, separation=7.0, seed=1).values
    return DataTable.from_columns(
        {
            "normal": normal,
            "skewed": skewed,
            "heavy": heavy,
            "with_outliers": outliers,
            "x": x,
            "linear_y": linear,
            "exp_y": exponential,
            "bimodal": bimodal,
            "gappy": gappy,
            "shifted_x": shifted,
            "shifted_y": shifted_y,
            "category": category,
            "group": group,
        },
        name="shapes",
    )


@pytest.fixture(scope="module")
def context(shapes_table) -> EvaluationContext:
    return EvaluationContext(table=shapes_table, store=None, mode=MODE_EXACT)


def top_attribute(insight_class, context, arity_filter=None):
    candidates = list(insight_class.candidates(context.table))
    scored = insight_class.score_all(candidates, context)
    scored.sort(key=lambda c: -c.score)
    return scored


class TestUnivariateClasses:
    def test_dispersion_candidates_are_numeric(self, shapes_table, context):
        insight = DispersionInsight()
        names = {attrs[0] for attrs in insight.candidates(shapes_table)}
        assert names == set(shapes_table.numeric_names())

    def test_skew_ranks_planted_right_skewed_columns_first(self, context):
        ranked = top_attribute(SkewInsight(), context)
        # Both the lognormal column and exp(1.5 x) are strongly right-skewed;
        # either may win, but both must dominate the symmetric columns.
        assert ranked[0].attributes[0] in {"skewed", "exp_y"}
        assert ranked[0].details["direction"] == "right-skewed"
        scores = {c.attributes[0]: c.score for c in ranked}
        assert scores["skewed"] > scores["normal"] + 1.0

    def test_heavy_tails_ranks_student_t_first(self, context):
        ranked = top_attribute(HeavyTailsInsight(), context)
        assert ranked[0].attributes in {("heavy",), ("with_outliers",), ("exp_y",), ("skewed",)}
        assert ranked[0].score > 3.0

    def test_outliers_ranks_planted_column_highly(self, context):
        ranked = top_attribute(OutlierInsight(detector="zscore", threshold=5.0), context)
        assert ranked[0].attributes == ("with_outliers",)
        assert ranked[0].details["n_outliers"] >= 6

    def test_multimodality_ranks_planted_mixtures_first(self, context):
        ranked = top_attribute(MultimodalityInsight(), context)
        scored = {c.attributes[0]: c for c in ranked}
        # The explicit two-component mixture and the group-shifted columns are
        # all genuinely multimodal; the normal column is not.
        assert ranked[0].attributes[0] in {"bimodal", "shifted_x", "shifted_y"}
        assert scored["bimodal"].score > 0.5
        assert scored["bimodal"].details["n_modes"] >= 2
        assert scored["bimodal"].score > scored["normal"].score

    def test_normality_flags_skewed_over_normal(self, context):
        insight = NormalityInsight()
        scored = {c.attributes[0]: c for c in top_attribute(insight, context)}
        assert scored["skewed"].score > scored["normal"].score
        assert scored["normal"].details["shape"] == "approximately normal"

    def test_missing_values_ranks_gappy_first(self, context):
        ranked = top_attribute(MissingValuesInsight(), context)
        assert ranked[0].attributes == ("gappy",)
        assert ranked[0].score == pytest.approx(0.5, abs=0.01)

    def test_summaries_are_strings(self, context):
        for insight_class in (DispersionInsight(), SkewInsight(), HeavyTailsInsight(),
                              OutlierInsight(), NormalityInsight()):
            ranked = top_attribute(insight_class, context)
            summary = insight_class.summarize(ranked[0])
            assert isinstance(summary, str) and ranked[0].attributes[0] in summary

    def test_visualizations_have_expected_marks(self, context):
        histogram_classes = (DispersionInsight(), SkewInsight(), HeavyTailsInsight())
        for insight_class in histogram_classes:
            ranked = top_attribute(insight_class, context)
            spec = insight_class.visualize(insight_class.to_insight(ranked[0]), context)
            assert spec.mark == "bar"
        outlier = OutlierInsight()
        ranked = top_attribute(outlier, context)
        assert outlier.visualize(outlier.to_insight(ranked[0]), context).mark == "boxplot"


class TestFrequencyClass:
    def test_candidates_include_categorical_and_discrete(self, shapes_table):
        insight = HeterogeneousFrequenciesInsight()
        names = {attrs[0] for attrs in insight.candidates(shapes_table)}
        assert "category" in names
        assert "group" in names

    def test_skewed_frequencies_beat_uniform(self, context):
        insight = HeterogeneousFrequenciesInsight(k=1)
        scored = {c.attributes[0]: c.score for c in top_attribute(insight, context)}
        assert scored["category"] > scored["group"]

    def test_relfreq_value_matches_exact(self, context):
        insight = HeterogeneousFrequenciesInsight(k=2)
        scored = {c.attributes[0]: c for c in top_attribute(insight, context)}
        assert scored["category"].details["relfreq_topk_raw"] == pytest.approx(0.85, abs=0.03)

    def test_pareto_visualization(self, context):
        insight = HeterogeneousFrequenciesInsight()
        ranked = top_attribute(insight, context)
        spec = insight.visualize(insight.to_insight(ranked[0]), context)
        assert spec.mark == "pareto"
        assert spec.metadata["insight_class"] == "heterogeneous_frequencies"


class TestBivariateClasses:
    def test_linear_relationship_top_pair(self, context):
        ranked = top_attribute(LinearRelationshipInsight(), context)
        assert set(ranked[0].attributes) == {"x", "linear_y"}
        assert ranked[0].score > 0.9

    def test_linear_relationship_score_all_matches_individual(self, context):
        insight = LinearRelationshipInsight()
        candidates = list(insight.candidates(context.table))[:10]
        batched = {c.attributes: c.score for c in insight.score_all(candidates, context)}
        individual = {
            attrs: insight.score(attrs, context).score for attrs in candidates
        }
        for attrs in candidates:
            assert batched[attrs] == pytest.approx(individual[attrs], abs=1e-9)

    def test_spearman_method(self, context):
        insight = LinearRelationshipInsight(method="spearman")
        scored = insight.score(("x", "exp_y"), context)
        assert scored.score == pytest.approx(1.0, abs=0.01)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            LinearRelationshipInsight(method="kendall")

    def test_overview_is_square_heatmap(self, context):
        insight = LinearRelationshipInsight()
        spec = insight.overview(context)
        d = len(context.table.numeric_names())
        assert spec.mark == "rect"
        assert spec.n_points() == d * d

    def test_monotonic_ranks_exponential_over_linear(self, context):
        insight = MonotonicRelationshipInsight()
        scored = {frozenset(c.attributes): c.score for c in top_attribute(insight, context)}
        assert scored[frozenset({"x", "exp_y"})] > scored[frozenset({"x", "linear_y"})]

    def test_monotonic_batch_matches_individual(self, context):
        insight = MonotonicRelationshipInsight()
        candidates = [("x", "exp_y"), ("x", "linear_y"), ("normal", "heavy")]
        batched = {c.attributes: c.score for c in insight.score_all(candidates, context)}
        for attrs in candidates:
            assert batched[attrs] == pytest.approx(insight.score(attrs, context).score, abs=1e-6)

    def test_dependence_detects_group_shift(self, context):
        insight = DependenceInsight()
        scored = insight.score(("group", "shifted_x"), context)
        assert scored.score > 0.8
        assert scored.details["measure"] == "correlation_ratio"

    def test_dependence_categorical_pair(self, context):
        insight = DependenceInsight()
        scored = insight.score(("category", "group"), context)
        assert scored.details["measure"] == "cramers_v"
        assert scored.score < 0.2

    def test_dependence_skips_identifier_columns(self):
        table = DataTable.from_columns(
            {
                "id": [f"row{i}" for i in range(50)],
                "group": ["a", "b"] * 25,
                "value": list(np.random.default_rng(0).standard_normal(50)),
            }
        )
        names = {attrs[0] for attrs in DependenceInsight().candidates(table)}
        assert "id" not in names
        assert "group" in names

    def test_scatter_visualization_has_fit_line(self, context):
        insight = LinearRelationshipInsight()
        ranked = top_attribute(insight, context)
        spec = insight.visualize(insight.to_insight(ranked[0]), context)
        assert spec.mark == "point"
        assert any(layer["mark"] == "line" for layer in spec.layers)


class TestSegmentationClass:
    def test_candidates_require_bounded_grouping(self, shapes_table):
        insight = SegmentationInsight(max_categories=5)
        groupings = {attrs[2] for attrs in insight.candidates(shapes_table)}
        assert groupings <= {"category", "group"}

    def test_shifted_pair_ranks_top(self, context):
        insight = SegmentationInsight()
        ranked = top_attribute(insight, context)
        top = ranked[0]
        assert set(top.attributes[:2]) == {"shifted_x", "shifted_y"}
        assert top.attributes[2] == "group"
        assert top.score > 0.7

    def test_grouped_scatter_visualization(self, context):
        insight = SegmentationInsight()
        ranked = top_attribute(insight, context)
        spec = insight.visualize(insight.to_insight(ranked[0]), context)
        assert spec.mark == "point"
        assert spec.encoding["color"]["field"] == ranked[0].attributes[2]

    def test_candidate_count(self, shapes_table):
        insight = SegmentationInsight()
        assert insight.candidate_count(shapes_table) == len(list(insight.candidates(shapes_table)))
