"""Tests for the pluggable execution layer (repro.core.executor)."""

import threading

import pytest

import pickle

from repro.core.executor import (
    ExecutorConfig,
    MAX_WORKERS_ENV,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    create_executor,
    default_max_workers,
    shard,
)


def _square(x):
    """Module-level so it pickles into worker processes."""
    return x * x


class TestExecutorConfig:
    def test_defaults_are_serial(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert ExecutorConfig().max_workers == 1

    def test_env_var_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "4")
        assert default_max_workers() == 4
        assert ExecutorConfig().max_workers == 4

    def test_env_var_garbage_falls_back_to_serial(self, monkeypatch):
        for bad in ("zero", "", "  ", "-3"):
            monkeypatch.setenv(MAX_WORKERS_ENV, bad)
            assert default_max_workers() == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(max_workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(min_chunk_size=0)


class TestCreateExecutor:
    def test_one_worker_selects_serial(self):
        assert isinstance(create_executor(ExecutorConfig(max_workers=1)), SerialExecutor)

    def test_many_workers_select_parallel(self):
        executor = create_executor(ExecutorConfig(max_workers=3))
        try:
            assert isinstance(executor, ParallelExecutor)
            assert executor.max_workers == 3
        finally:
            executor.close()

    def test_parallel_refuses_single_worker(self):
        with pytest.raises(ValueError):
            ParallelExecutor(ExecutorConfig(max_workers=1))


class TestMapSemantics:
    @pytest.mark.parametrize("make", [
        lambda: SerialExecutor(),
        lambda: ParallelExecutor(ExecutorConfig(max_workers=4)),
    ])
    def test_map_preserves_order(self, make):
        with make() as executor:
            assert executor.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    @pytest.mark.parametrize("make", [
        lambda: SerialExecutor(),
        lambda: ParallelExecutor(ExecutorConfig(max_workers=4)),
    ])
    def test_map_propagates_exceptions(self, make):
        def boom(x):
            if x == 7:
                raise RuntimeError("item 7 failed")
            return x

        with make() as executor:
            with pytest.raises(RuntimeError, match="item 7"):
                executor.map(boom, range(10))

    def test_map_handles_empty_and_single_item(self):
        with ParallelExecutor(ExecutorConfig(max_workers=2)) as executor:
            assert executor.map(lambda x: x, []) == []
            assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_parallel_actually_fans_out(self):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous(_):
            # Only passes if 3 workers are inside map at the same time.
            barrier.wait()
            return threading.current_thread().name

        with ParallelExecutor(ExecutorConfig(max_workers=3)) as executor:
            names = executor.map(rendezvous, range(3))
        assert len(set(names)) == 3

    def test_concurrent_submitters_share_one_pool(self):
        executor = ParallelExecutor(ExecutorConfig(max_workers=4))
        results = {}

        def submit(tag):
            results[tag] = executor.map(lambda x: (tag, x), range(8))

        try:
            threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for tag, out in results.items():
                assert out == [(tag, x) for x in range(8)]
        finally:
            executor.close()

    def test_closed_parallel_executor_refuses_work(self):
        executor = ParallelExecutor(ExecutorConfig(max_workers=2))
        executor.map(lambda x: x, range(4))
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError):
            executor.map(lambda x: x, range(4))
        with pytest.raises(RuntimeError):
            executor.map(lambda x: x, [1])  # single-item fast path too


class TestProcessExecutor:
    def test_backend_process_selects_process_executor(self):
        executor = create_executor(
            ExecutorConfig(max_workers=2, backend="process"))
        try:
            assert isinstance(executor, ProcessExecutor)
            assert executor.max_workers == 2
        finally:
            executor.close()

    def test_one_worker_still_selects_serial(self):
        executor = create_executor(
            ExecutorConfig(max_workers=1, backend="process"))
        assert isinstance(executor, SerialExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutorConfig(backend="fiber")

    def test_process_refuses_single_worker(self):
        with pytest.raises(ValueError):
            ProcessExecutor(ExecutorConfig(max_workers=1, backend="process"))

    def test_map_preserves_order_across_processes(self):
        with ProcessExecutor(ExecutorConfig(max_workers=2,
                                            backend="process")) as executor:
            assert executor.map(_square, range(8)) == [x * x for x in range(8)]
            assert executor.pickle_fallbacks == 0

    def test_unpicklable_work_runs_inline_and_is_counted(self):
        captured = []  # closures over locals never pickle

        def record(x):
            captured.append(x)
            return x + 1

        with ProcessExecutor(ExecutorConfig(max_workers=2,
                                            backend="process")) as executor:
            assert pickle.dumps(_square)  # sanity: the probe is the gate
            assert executor.map(record, range(4)) == [1, 2, 3, 4]
            assert executor.pickle_fallbacks == 1
            assert captured == [0, 1, 2, 3]  # ran in *this* interpreter

    def test_single_item_short_circuits_the_pool(self):
        executor = ProcessExecutor(ExecutorConfig(max_workers=2,
                                                  backend="process"))
        try:
            assert executor.map(_square, [3]) == [9]
            assert executor._pool is None  # no process was ever spawned
        finally:
            executor.close()

    def test_submit_round_trips(self):
        with ProcessExecutor(ExecutorConfig(max_workers=2,
                                            backend="process")) as executor:
            assert executor.submit(_square, 6).result(timeout=60) == 36

    def test_closed_executor_refuses_work(self):
        executor = ProcessExecutor(ExecutorConfig(max_workers=2,
                                                  backend="process"))
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError):
            executor.map(_square, range(4))


class TestShard:
    def test_concatenation_reproduces_input(self):
        for n_items in (0, 1, 5, 17, 100):
            items = list(range(n_items))
            for n_shards in (1, 2, 3, 8, 200):
                chunks = shard(items, n_shards)
                assert [x for chunk in chunks for x in chunk] == items

    def test_chunk_sizes_differ_by_at_most_one(self):
        chunks = shard(list(range(23)), 4)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert len(chunks) == 4

    def test_min_chunk_size_limits_shard_count(self):
        assert len(shard(list(range(10)), 8, min_chunk_size=6)) == 1
        assert len(shard(list(range(100)), 8, min_chunk_size=25)) == 4

    def test_deterministic_pure_function(self):
        items = list(range(37))
        assert shard(items, 5, 4) == shard(items, 5, 4)
