"""Tests for the pluggable execution layer (repro.core.executor)."""

import threading

import pytest

from repro.core.executor import (
    ExecutorConfig,
    MAX_WORKERS_ENV,
    ParallelExecutor,
    SerialExecutor,
    create_executor,
    default_max_workers,
    shard,
)


class TestExecutorConfig:
    def test_defaults_are_serial(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert ExecutorConfig().max_workers == 1

    def test_env_var_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "4")
        assert default_max_workers() == 4
        assert ExecutorConfig().max_workers == 4

    def test_env_var_garbage_falls_back_to_serial(self, monkeypatch):
        for bad in ("zero", "", "  ", "-3"):
            monkeypatch.setenv(MAX_WORKERS_ENV, bad)
            assert default_max_workers() == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(max_workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(min_chunk_size=0)


class TestCreateExecutor:
    def test_one_worker_selects_serial(self):
        assert isinstance(create_executor(ExecutorConfig(max_workers=1)), SerialExecutor)

    def test_many_workers_select_parallel(self):
        executor = create_executor(ExecutorConfig(max_workers=3))
        try:
            assert isinstance(executor, ParallelExecutor)
            assert executor.max_workers == 3
        finally:
            executor.close()

    def test_parallel_refuses_single_worker(self):
        with pytest.raises(ValueError):
            ParallelExecutor(ExecutorConfig(max_workers=1))


class TestMapSemantics:
    @pytest.mark.parametrize("make", [
        lambda: SerialExecutor(),
        lambda: ParallelExecutor(ExecutorConfig(max_workers=4)),
    ])
    def test_map_preserves_order(self, make):
        with make() as executor:
            assert executor.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    @pytest.mark.parametrize("make", [
        lambda: SerialExecutor(),
        lambda: ParallelExecutor(ExecutorConfig(max_workers=4)),
    ])
    def test_map_propagates_exceptions(self, make):
        def boom(x):
            if x == 7:
                raise RuntimeError("item 7 failed")
            return x

        with make() as executor:
            with pytest.raises(RuntimeError, match="item 7"):
                executor.map(boom, range(10))

    def test_map_handles_empty_and_single_item(self):
        with ParallelExecutor(ExecutorConfig(max_workers=2)) as executor:
            assert executor.map(lambda x: x, []) == []
            assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_parallel_actually_fans_out(self):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous(_):
            # Only passes if 3 workers are inside map at the same time.
            barrier.wait()
            return threading.current_thread().name

        with ParallelExecutor(ExecutorConfig(max_workers=3)) as executor:
            names = executor.map(rendezvous, range(3))
        assert len(set(names)) == 3

    def test_concurrent_submitters_share_one_pool(self):
        executor = ParallelExecutor(ExecutorConfig(max_workers=4))
        results = {}

        def submit(tag):
            results[tag] = executor.map(lambda x: (tag, x), range(8))

        try:
            threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for tag, out in results.items():
                assert out == [(tag, x) for x in range(8)]
        finally:
            executor.close()

    def test_closed_parallel_executor_refuses_work(self):
        executor = ParallelExecutor(ExecutorConfig(max_workers=2))
        executor.map(lambda x: x, range(4))
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError):
            executor.map(lambda x: x, range(4))
        with pytest.raises(RuntimeError):
            executor.map(lambda x: x, [1])  # single-item fast path too


class TestShard:
    def test_concatenation_reproduces_input(self):
        for n_items in (0, 1, 5, 17, 100):
            items = list(range(n_items))
            for n_shards in (1, 2, 3, 8, 200):
                chunks = shard(items, n_shards)
                assert [x for chunk in chunks for x in chunk] == items

    def test_chunk_sizes_differ_by_at_most_one(self):
        chunks = shard(list(range(23)), 4)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert len(chunks) == 4

    def test_min_chunk_size_limits_shard_count(self):
        assert len(shard(list(range(10)), 8, min_chunk_size=6)) == 1
        assert len(shard(list(range(100)), 8, min_chunk_size=25)) == 4

    def test_deterministic_pure_function(self):
        items = list(range(37))
        assert shard(items, 5, 4) == shard(items, 5, 4)
