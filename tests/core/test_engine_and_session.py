"""Tests for the Foresight engine façade and exploration sessions."""

import json
from typing import Iterator

import pytest

from repro import Foresight
from repro.core.engine import EngineConfig
from repro.core.insight import Insight, InsightClass, ScoredCandidate, singletons
from repro.core.query import InsightQuery
from repro.core.session import ExplorationSession
from repro.errors import InsightError, UnknownInsightClassError
from repro.sketch.store import SketchStoreConfig
from repro.viz.spec import VisualizationSpec


class TestEngineBasics:
    def test_catalogue_lists_twelve_classes(self, oecd_engine):
        assert len(oecd_engine.insight_classes()) == 12

    def test_store_built_in_approximate_mode(self, oecd_engine):
        assert oecd_engine.store is not None
        assert oecd_engine.store.stats.n_rows == 35

    def test_exact_mode_skips_preprocessing(self, oecd_table):
        engine = Foresight(oecd_table, config=EngineConfig(mode="exact"))
        assert engine.store is None
        result = engine.query("skew", top_k=2)
        assert len(result) == 2

    def test_repr(self, oecd_engine):
        assert "oecd" in repr(oecd_engine)


class TestEngineQueries:
    def test_query_returns_ranked_insights(self, oecd_engine):
        result = oecd_engine.query("linear_relationship", top_k=3)
        assert len(result) == 3
        assert set(result.top().attributes) == {
            "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
        }

    def test_query_accepts_prebuilt_query(self, oecd_engine):
        result = oecd_engine.query(InsightQuery("skew", top_k=2, mode="exact"))
        assert len(result) == 2

    def test_query_rejects_mixed_arguments(self, oecd_engine):
        with pytest.raises(InsightError):
            oecd_engine.query(InsightQuery("skew"), top_k=2)

    def test_query_with_fixed_attribute(self, oecd_engine):
        result = oecd_engine.query(
            "linear_relationship", top_k=3, fixed=("SelfReportedHealth",), mode="exact"
        )
        assert all(i.involves("SelfReportedHealth") for i in result)

    def test_unknown_class_raises(self, oecd_engine):
        with pytest.raises(UnknownInsightClassError):
            oecd_engine.query("sorcery")

    def test_exact_and_approximate_agree_on_top_pair(self, oecd_engine):
        approx = oecd_engine.query("linear_relationship", top_k=1, mode="approximate")
        exact = oecd_engine.query("linear_relationship", top_k=1, mode="exact")
        assert set(approx.top().attributes) == set(exact.top().attributes)
        assert approx.top().score == pytest.approx(exact.top().score, abs=0.1)

    def test_carousels_cover_requested_classes(self, oecd_engine):
        carousels = oecd_engine.carousels(top_k=2, insight_classes=["skew", "outliers"])
        assert [c.insight_class for c in carousels] == ["skew", "outliers"]
        assert all(len(c) <= 2 for c in carousels)
        assert all(c.elapsed_seconds >= 0 for c in carousels)

    def test_carousels_default_covers_all_classes(self, oecd_engine):
        carousels = oecd_engine.carousels(top_k=1)
        assert len(carousels) == 12

    def test_triple_class_gets_candidate_cap(self, oecd_engine):
        result = oecd_engine.query("segmentation", top_k=2)
        assert result.query.max_candidates == oecd_engine.config.max_candidates_triples

    def test_recommend_near(self, oecd_engine):
        focus = oecd_engine.query("normality", top_k=5, mode="exact")
        health = next(i for i in focus if i.attributes == ("SelfReportedHealth",))
        nearby = oecd_engine.recommend_near(health, "linear_relationship", top_k=3, mode="exact")
        assert any(i.involves("SelfReportedHealth") for i in nearby)

    def test_visualize_and_overview(self, oecd_engine):
        insight = oecd_engine.query("linear_relationship", top_k=1).top()
        spec = oecd_engine.visualize(insight)
        assert isinstance(spec, VisualizationSpec)
        assert spec.mark == "point"
        overview = oecd_engine.overview("linear_relationship")
        assert overview.mark == "rect"
        assert oecd_engine.overview("skew") is None

    def test_exact_view(self, oecd_engine):
        exact_engine = oecd_engine.exact()
        assert exact_engine.config.mode == "exact"
        result = exact_engine.query("linear_relationship", top_k=1)
        assert result.top().details["source"] == "exact"


class _ConstantWidthInsight(InsightClass):
    """A trivial plug-in insight class used to test extensibility."""

    name = "value_range"
    label = "Value Range"
    description = "Width of the value range"
    metric_name = "range_width"
    arity = 1
    visualization = "histogram"

    def candidates(self, table) -> Iterator[tuple[str, ...]]:
        yield from singletons(table.numeric_names())

    def score(self, attributes, context):
        column = context.table.numeric_column(attributes[0])
        values = column.valid_values()
        if values.size == 0:
            return None
        return ScoredCandidate(attributes=attributes,
                               score=float(values.max() - values.min()))

    def visualize(self, insight, context):
        from repro.viz.charts import histogram_spec

        values = context.table.numeric_column(insight.attributes[0]).valid_values()
        return histogram_spec(values, insight.attributes[0])


class TestExtensibility:
    def test_register_custom_insight_class(self, oecd_table):
        engine = Foresight(oecd_table, config=EngineConfig(mode="exact"))
        engine.register(_ConstantWidthInsight())
        result = engine.query("value_range", top_k=3)
        assert len(result) == 3
        assert result.top().insight_class == "value_range"
        spec = engine.visualize(result.top())
        assert spec.mark == "bar"

    def test_duplicate_registration_needs_replace(self, oecd_table):
        engine = Foresight(oecd_table, config=EngineConfig(mode="exact"))
        engine.register(_ConstantWidthInsight())
        with pytest.raises(InsightError):
            engine.register(_ConstantWidthInsight())
        engine.register(_ConstantWidthInsight(), replace=True)


class TestExplorationSession:
    def test_carousels_without_focus(self, oecd_engine):
        session = ExplorationSession(oecd_engine, name="demo")
        carousels = session.carousels(top_k=2, insight_classes=["linear_relationship"])
        assert len(carousels) == 1
        assert len(carousels[0]) == 2

    def test_focus_changes_recommendations(self, oecd_engine):
        session = ExplorationSession(oecd_engine)
        first = session.carousels(top_k=3, insight_classes=["linear_relationship"])[0]
        health_shape = Insight(
            insight_class="normality", attributes=("SelfReportedHealth",),
            score=0.7, metric_name="non_normality",
        )
        session.focus(health_shape)
        assert session.focused_insights == [health_shape]
        focused = session.carousels(top_k=3, insight_classes=["linear_relationship"])[0]
        assert any(i.involves("SelfReportedHealth") for i in focused.insights)
        assert [i.attributes for i in focused.insights] != [i.attributes for i in first.insights]

    def test_focus_is_idempotent_and_unfocus_works(self, oecd_engine):
        session = ExplorationSession(oecd_engine)
        insight = Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness")
        session.focus(insight)
        session.focus(insight)
        assert len(session.focused_insights) == 1
        session.unfocus(insight)
        assert session.focused_insights == []
        session.focus(insight)
        session.clear_focus()
        assert session.focused_insights == []

    def test_recommend_near_focus_requires_focus(self, oecd_engine):
        session = ExplorationSession(oecd_engine)
        with pytest.raises(InsightError):
            session.recommend_near_focus("linear_relationship")

    def test_history_records_actions(self, oecd_engine):
        session = ExplorationSession(oecd_engine)
        session.query("skew", top_k=1)
        session.focus(Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness"))
        actions = [event.action for event in session.history]
        assert actions[0] == "session_started"
        assert "query" in actions
        assert "focus" in actions

    def test_injected_clock_stamps_history(self, oecd_engine):
        """Event timestamps come from the injected clock, not the wall.

        Regression test for the ``time.time()`` call the determinism audit
        flagged in the core: with a fixed clock every event — including the
        ``session_started`` logged by the constructor — carries the
        injected timestamp.
        """
        session = ExplorationSession(oecd_engine, name="fixed", clock=lambda: 123.5)
        session.focus(Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness"))
        session.clear_focus()
        assert [event.timestamp for event in session.history] == [123.5] * 3

    def test_same_clock_same_actions_identical_histories(self, oecd_engine):
        """Two sessions driven identically with the same deterministic clock
        produce byte-identical saved state."""

        def drive(clock):
            session = ExplorationSession(oecd_engine, name="replay", clock=clock)
            session.query("skew", top_k=1)
            session.focus(Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness"))
            return session.save_json()

        def make_clock():
            ticks = iter(range(1000))
            return lambda: float(next(ticks))

        assert drive(make_clock()) == drive(make_clock())

    def test_restore_accepts_clock(self, oecd_engine):
        session = ExplorationSession(oecd_engine, name="orig", clock=lambda: 1.0)
        restored = ExplorationSession.restore(
            oecd_engine, session.save(), clock=lambda: 2.0
        )
        restored.clear_focus()  # no focus: nothing logged
        restored.focus(Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness"))
        assert restored.history[0].timestamp == 1.0  # carried forward verbatim
        assert restored.history[-1].timestamp == 2.0  # stamped by the new clock

    def test_save_and_restore_round_trip(self, oecd_engine):
        session = ExplorationSession(oecd_engine, name="analyst-1")
        insight = Insight("normality", ("SelfReportedHealth",), 0.7, "non_normality",
                          summary="left-skewed", details={"shape": "left-skewed"})
        session.focus(insight)
        payload = session.save_json()
        restored = ExplorationSession.restore_json(oecd_engine, payload)
        assert restored.name == "analyst-1"
        assert restored.focused_insights[0].attributes == ("SelfReportedHealth",)
        assert restored.focused_insights[0].details["shape"] == "left-skewed"
        # The restored state must be valid JSON for sharing with colleagues.
        assert json.loads(payload)["dataset"] == oecd_engine.table.name


class TestEngineConfig:
    def test_custom_sketch_config_respected(self, oecd_table):
        config = EngineConfig(sketch=SketchStoreConfig(hyperplane_width=64, sample_capacity=10))
        engine = Foresight(oecd_table, config=config)
        assert engine.store.stats.hyperplane_width == 64
        assert engine.store.sample_table().n_rows <= 10

    def test_default_top_k_used(self, oecd_table):
        engine = Foresight(oecd_table, config=EngineConfig(default_top_k=2, mode="exact"))
        assert len(engine.query("skew")) == 2
