"""Tests for metadata (tag) constraints on insight queries.

Paper section 2.1, future work: "queries will also allow inclusion of
constraints involving metadata about attributes, e.g., to search for
attributes that represent currency or dates."  This reproduction implements
that extension: schema fields carry free-form tags, and an
:class:`~repro.core.query.InsightQuery` can require every (non-fixed)
attribute of a returned tuple to carry one of a set of tags.
"""

import numpy as np
import pytest

from repro import Foresight
from repro.core.engine import EngineConfig
from repro.core.insight import EvaluationContext, MODE_EXACT
from repro.core.query import InsightQuery, query
from repro.core.ranking import RankingEngine
from repro.core.registry import default_registry
from repro.data import DataTable, NumericColumn
from repro.data.schema import ColumnKind, Field


@pytest.fixture(scope="module")
def tagged_table() -> DataTable:
    """A table whose schema tags mark currency and date-like attributes."""
    rng = np.random.default_rng(0)
    n = 400
    base = rng.standard_normal(n)
    columns = [
        NumericColumn(Field("revenue", ColumnKind.NUMERIC, tags=("currency",)),
                      50_000 + 10_000 * base + 1_000 * rng.standard_normal(n)),
        NumericColumn(Field("cost", ColumnKind.NUMERIC, tags=("currency",)),
                      30_000 + 6_000 * base + 2_000 * rng.standard_normal(n)),
        NumericColumn(Field("salary", ColumnKind.NUMERIC, tags=("currency",)),
                      40_000 + 3_000 * rng.standard_normal(n)),
        NumericColumn(Field("year", ColumnKind.NUMERIC, tags=("date",)),
                      rng.integers(2000, 2020, n).astype(float)),
        NumericColumn(Field("headcount", ColumnKind.NUMERIC),
                      100 + 20 * base + 5 * rng.standard_normal(n)),
        NumericColumn(Field("satisfaction", ColumnKind.NUMERIC),
                      rng.uniform(1, 10, n)),
    ]
    return DataTable(columns, name="company")


@pytest.fixture(scope="module")
def parts(tagged_table):
    engine = RankingEngine(default_registry())
    context = EvaluationContext(table=tagged_table, store=None, mode=MODE_EXACT)
    return engine, context


class TestQueryTagApi:
    def test_with_required_tags_builder(self):
        q = InsightQuery("linear_relationship").with_required_tags("currency", "date")
        assert q.required_tags == ("currency", "date")
        assert q.with_required_tags("currency").required_tags == ("currency", "date")

    def test_query_shorthand_accepts_tags(self):
        q = query("skew", tags="currency")
        assert q.required_tags == ("currency",)
        q = query("skew", tags=["currency", "date"])
        assert q.required_tags == ("currency", "date")

    def test_as_dict_includes_tags(self):
        q = query("skew", tags="currency")
        assert q.as_dict()["required_tags"] == ["currency"]

    def test_admits_tags_logic(self):
        q = InsightQuery("linear_relationship", required_tags=("currency",),
                         fixed_attributes=("year",))
        tags = {"revenue": ("currency",), "year": ("date",), "headcount": ()}
        assert q.admits_tags(tags, ("revenue", "year"))       # fixed attr exempt
        assert not q.admits_tags(tags, ("headcount", "year"))  # untagged partner
        assert InsightQuery("skew").admits_tags(tags, ("headcount",))  # no constraint


class TestTagConstrainedRanking:
    def test_univariate_query_restricted_to_currency(self, parts):
        engine, context = parts
        result = engine.rank(
            InsightQuery("dispersion", top_k=10, mode=MODE_EXACT,
                         required_tags=("currency",)),
            context,
        )
        attributes = {i.attributes[0] for i in result}
        assert attributes <= {"revenue", "cost", "salary"}
        assert len(result) == 3

    def test_pairwise_query_requires_both_attributes_tagged(self, parts):
        engine, context = parts
        result = engine.rank(
            InsightQuery("linear_relationship", top_k=10, mode=MODE_EXACT,
                         required_tags=("currency",)),
            context,
        )
        assert result.insights
        for insight in result:
            assert set(insight.attributes) <= {"revenue", "cost", "salary"}
        # The planted revenue/cost relationship is the strongest currency pair.
        assert set(result.top().attributes) == {"revenue", "cost"}

    def test_fixed_attribute_is_exempt_from_tag_requirement(self, parts):
        engine, context = parts
        result = engine.rank(
            InsightQuery("linear_relationship", top_k=10, mode=MODE_EXACT,
                         fixed_attributes=("headcount",), required_tags=("currency",)),
            context,
        )
        assert result.insights
        for insight in result:
            partner = next(a for a in insight.attributes if a != "headcount")
            assert partner in {"revenue", "cost", "salary"}

    def test_unmatched_tag_returns_empty(self, parts):
        engine, context = parts
        result = engine.rank(
            InsightQuery("skew", top_k=5, mode=MODE_EXACT, required_tags=("geo",)),
            context,
        )
        assert result.insights == []
        assert result.n_candidates > 0

    def test_engine_facade_supports_tags(self, tagged_table):
        engine = Foresight(tagged_table, config=EngineConfig(mode="exact"))
        result = engine.query("linear_relationship", top_k=5, tags=("currency",))
        assert result.insights
        assert all(set(i.attributes) <= {"revenue", "cost", "salary"} for i in result)
