"""Tests for the sketch-backed (approximate) scoring paths and for engine
behaviour on degenerate tables."""

import numpy as np
import pytest

from repro import Foresight
from repro.core.engine import EngineConfig
from repro.core.insight import EvaluationContext, MODE_APPROXIMATE, MODE_EXACT
from repro.core.classes import (
    DispersionInsight,
    HeavyTailsInsight,
    HeterogeneousFrequenciesInsight,
    LinearRelationshipInsight,
    OutlierInsight,
    SkewInsight,
)
from repro.data import DataTable
from repro.data.datasets import make_mixed_table
from repro.sketch.store import SketchStore, SketchStoreConfig


@pytest.fixture(scope="module")
def mixed_table() -> DataTable:
    return make_mixed_table(n_rows=4000, n_numeric=10, n_categorical=2, seed=17)


@pytest.fixture(scope="module")
def contexts(mixed_table):
    store = SketchStore(mixed_table, config=SketchStoreConfig(hyperplane_width=512, seed=2))
    approx = EvaluationContext(table=mixed_table, store=store, mode=MODE_APPROXIMATE)
    exact = EvaluationContext(table=mixed_table, store=store, mode=MODE_EXACT)
    return approx, exact


class TestApproximateScoringPaths:
    @pytest.mark.parametrize("insight_class", [DispersionInsight(), SkewInsight(), HeavyTailsInsight()])
    def test_moment_classes_match_exact_exactly(self, contexts, insight_class):
        approx, exact = contexts
        attributes = ("attr_004",)
        approx_scored = insight_class.score(attributes, approx)
        exact_scored = insight_class.score(attributes, exact)
        # Moment sketches are lossless summaries, so the scores agree to
        # floating point accuracy.
        assert approx_scored.score == pytest.approx(exact_scored.score, rel=1e-9)

    def test_correlation_class_uses_sketch_source(self, contexts):
        approx, exact = contexts
        attributes = ("attr_000", "attr_001")
        approx_scored = LinearRelationshipInsight().score(attributes, approx)
        exact_scored = LinearRelationshipInsight().score(attributes, exact)
        assert approx_scored.details["source"] == "sketch"
        assert exact_scored.details["source"] == "exact"
        assert approx_scored.score == pytest.approx(exact_scored.score, abs=0.15)

    def test_correlation_batch_uses_sketch_matrix(self, contexts):
        approx, _ = contexts
        insight = LinearRelationshipInsight()
        candidates = list(insight.candidates(approx.table))
        scored = insight.score_all(candidates, approx)
        assert scored
        assert all(candidate.details["source"] == "sketch" for candidate in scored)

    def test_outlier_class_approximate_path(self, contexts):
        approx, exact = contexts
        insight = OutlierInsight()
        attributes = ("attr_009",)
        approx_scored = insight.score(attributes, approx)
        exact_scored = insight.score(attributes, exact)
        assert approx_scored.score >= 0.0
        # The sketch path estimates outliers from quantile fences on a row
        # sample; it must agree with the exact metric on whether outliers
        # exist at all.
        assert (approx_scored.score > 0) == (exact_scored.score > 0)

    def test_frequency_class_sketch_vs_exact(self, contexts):
        approx, exact = contexts
        insight = HeterogeneousFrequenciesInsight(k=3)
        attributes = ("cat_00",)
        approx_scored = insight.score(attributes, approx)
        exact_scored = insight.score(attributes, exact)
        assert approx_scored.details["source"] == "sketch"
        assert exact_scored.details["source"] == "exact"
        assert approx_scored.score == pytest.approx(exact_scored.score, abs=0.05)

    def test_engine_modes_agree_on_strong_structure(self, mixed_table):
        engine = Foresight(mixed_table)
        approx_top = engine.query("linear_relationship", top_k=3, mode="approximate")
        exact_top = engine.query("linear_relationship", top_k=3, mode="exact")
        approx_pairs = {frozenset(i.attributes) for i in approx_top}
        exact_pairs = {frozenset(i.attributes) for i in exact_top}
        assert approx_pairs & exact_pairs


class TestDegenerateTables:
    def test_all_numeric_table(self):
        table = DataTable.from_columns(
            {"a": np.arange(30.0).tolist(), "b": (np.arange(30.0) * 2).tolist()}
        )
        engine = Foresight(table)
        carousels = engine.carousels(top_k=2)
        by_class = {c.insight_class: c for c in carousels}
        assert len(by_class["linear_relationship"]) == 1
        # Classes that need categorical columns simply return empty carousels.
        assert len(by_class["dependence"]) == 0
        assert len(by_class["segmentation"]) == 0

    def test_all_categorical_table(self):
        rng = np.random.default_rng(0)
        table = DataTable.from_columns(
            {
                "color": rng.choice(["r", "g", "b"], 200).tolist(),
                "shape": rng.choice(["square", "circle"], 200).tolist(),
            }
        )
        engine = Foresight(table)
        by_class = {c.insight_class: c for c in engine.carousels(top_k=2)}
        assert len(by_class["linear_relationship"]) == 0
        assert len(by_class["heterogeneous_frequencies"]) == 2
        assert len(by_class["dependence"]) == 1

    def test_single_column_table(self):
        table = DataTable.from_columns({"only": list(range(50))})
        engine = Foresight(table)
        result = engine.query("dispersion", top_k=3)
        assert len(result) == 1
        assert engine.query("linear_relationship", top_k=3).insights == []
        assert engine.overview("linear_relationship") is None

    def test_constant_column_scores_zero_not_error(self):
        table = DataTable.from_columns(
            {"constant": [5.0] * 40, "varying": np.random.default_rng(1).standard_normal(40).tolist()}
        )
        engine = Foresight(table, config=EngineConfig(mode="exact"))
        dispersion = {i.attributes[0]: i.score for i in engine.query("dispersion", top_k=5)}
        assert dispersion["constant"] == 0.0
        correlation = engine.query("linear_relationship", top_k=5)
        assert all(i.score == 0.0 for i in correlation if "constant" in i.attributes)

    def test_tiny_table(self):
        table = DataTable.from_columns({"x": [1.0, 2.0, 3.0], "y": [3.0, 2.0, 1.0]})
        engine = Foresight(table)
        result = engine.query("linear_relationship", top_k=1)
        assert result.top().score == pytest.approx(1.0, abs=0.2)

    def test_empty_table(self):
        table = DataTable([], name="empty")
        engine = Foresight(table, preprocess=False)
        assert engine.carousels(top_k=1) is not None
        assert all(len(c) == 0 for c in engine.carousels(top_k=1))

    def test_table_with_heavy_missingness(self):
        rng = np.random.default_rng(2)
        values = rng.standard_normal(100)
        values[:90] = np.nan
        table = DataTable.from_columns({"sparse": values.tolist(),
                                        "dense": rng.standard_normal(100).tolist()})
        engine = Foresight(table, config=EngineConfig(mode="exact"))
        missing = engine.query("missing_values", top_k=1)
        assert missing.top().attributes == ("sparse",)
        assert missing.top().score == pytest.approx(0.9)
