"""Tests for the ranking engine and neighborhood recommendation."""

import pytest

from repro.core.insight import EvaluationContext, Insight, MODE_EXACT
from repro.core.neighborhood import (
    NeighborhoodConfig,
    NeighborhoodRecommender,
    attribute_jaccard,
    insight_similarity,
    score_proximity,
)
from repro.core.query import InsightQuery, MetricRange
from repro.core.ranking import RankingEngine
from repro.core.registry import default_registry


@pytest.fixture(scope="module")
def engine_parts(oecd_table):
    registry = default_registry()
    engine = RankingEngine(registry)
    context = EvaluationContext(table=oecd_table, store=None, mode=MODE_EXACT)
    return engine, context


class TestRankingEngine:
    def test_returns_top_k_sorted(self, engine_parts):
        engine, context = engine_parts
        result = engine.rank(InsightQuery("linear_relationship", top_k=4, mode=MODE_EXACT), context)
        assert len(result) == 4
        scores = [i.score for i in result]
        assert scores == sorted(scores, reverse=True)
        assert result.top().score == scores[0]

    def test_top_pair_is_the_planted_one(self, engine_parts):
        engine, context = engine_parts
        result = engine.rank(InsightQuery("linear_relationship", top_k=1, mode=MODE_EXACT), context)
        assert set(result.top().attributes) == {
            "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
        }

    def test_fixed_attribute_constraint(self, engine_parts):
        engine, context = engine_parts
        query = InsightQuery(
            "linear_relationship", top_k=3, mode=MODE_EXACT,
            fixed_attributes=("SelfReportedHealth",),
        )
        result = engine.rank(query, context)
        assert all(i.involves("SelfReportedHealth") for i in result)
        assert set(result.top().attributes) == {"SelfReportedHealth", "LifeSatisfaction"}

    def test_excluded_attribute_constraint(self, engine_parts):
        engine, context = engine_parts
        query = InsightQuery(
            "linear_relationship", top_k=5, mode=MODE_EXACT,
            excluded_attributes=("TimeDevotedToLeisure",),
        )
        result = engine.rank(query, context)
        assert all(not i.involves("TimeDevotedToLeisure") for i in result)

    def test_metric_range_filters_trivial_correlations(self, engine_parts):
        engine, context = engine_parts
        query = InsightQuery(
            "linear_relationship", top_k=10, mode=MODE_EXACT,
            metric_range=MetricRange(0.5, 0.8),
        )
        result = engine.rank(query, context)
        assert result.insights, "range query should still find mid-strength pairs"
        assert all(0.5 <= i.score <= 0.8 for i in result)

    def test_max_candidates_truncation(self, engine_parts):
        engine, context = engine_parts
        query = InsightQuery("linear_relationship", top_k=3, mode=MODE_EXACT, max_candidates=10)
        result = engine.rank(query, context)
        assert result.truncated
        assert result.n_scored <= 10

    def test_bookkeeping_counts(self, engine_parts):
        engine, context = engine_parts
        result = engine.rank(InsightQuery("skew", top_k=3, mode=MODE_EXACT), context)
        assert result.n_candidates == len(context.table.numeric_names())
        assert result.n_scored <= result.n_candidates
        assert result.n_admitted >= len(result.insights)

    def test_rank_all(self, engine_parts):
        engine, context = engine_parts
        queries = [InsightQuery("skew", top_k=2, mode=MODE_EXACT),
                   InsightQuery("outliers", top_k=2, mode=MODE_EXACT)]
        results = engine.rank_all(queries, context)
        assert set(results) == {"skew", "outliers"}
        assert all(len(r) <= 2 for r in results.values())

    def test_attribute_sets_helper(self, engine_parts):
        engine, context = engine_parts
        result = engine.rank(InsightQuery("dispersion", top_k=3, mode=MODE_EXACT), context)
        assert len(result.attribute_sets()) == len(result)


def _insight(cls: str, attrs: tuple[str, ...], score: float) -> Insight:
    return Insight(insight_class=cls, attributes=attrs, score=score, metric_name="m")


class TestSimilarity:
    def test_attribute_jaccard(self):
        a = _insight("linear_relationship", ("x", "y"), 0.9)
        b = _insight("linear_relationship", ("y", "z"), 0.8)
        c = _insight("linear_relationship", ("u", "v"), 0.8)
        assert attribute_jaccard(a, b) == pytest.approx(1 / 3)
        assert attribute_jaccard(a, c) == 0.0
        assert attribute_jaccard(a, a) == 1.0

    def test_score_proximity_within_class(self):
        a = _insight("skew", ("x",), 0.9)
        b = _insight("skew", ("y",), 0.85)
        far = _insight("skew", ("z",), 0.1)
        assert score_proximity(a, b) > score_proximity(a, far)

    def test_score_proximity_across_classes_attenuated(self):
        a = _insight("skew", ("x",), 0.9)
        b = _insight("outliers", ("y",), 0.9)
        same = _insight("skew", ("y",), 0.9)
        assert score_proximity(a, b) == pytest.approx(0.5 * score_proximity(a, same))

    def test_similarity_combines_both(self):
        a = _insight("linear_relationship", ("x", "y"), 0.9)
        near = _insight("linear_relationship", ("x", "z"), 0.88)
        far = _insight("linear_relationship", ("u", "v"), 0.2)
        assert insight_similarity(a, near) > insight_similarity(a, far)

    def test_weight_validation(self):
        a = _insight("skew", ("x",), 0.5)
        with pytest.raises(ValueError):
            insight_similarity(a, a, attribute_weight=1.5)


class TestNeighborhoodRecommender:
    def test_nearby_prefers_focus_attributes(self, engine_parts, oecd_table):
        engine, context = engine_parts
        recommender = NeighborhoodRecommender(engine)
        focus = _insight("normality", ("SelfReportedHealth",), 0.7)
        result = recommender.nearby([focus], "linear_relationship", context, top_k=5)
        assert len(result) == 5
        top_two = result.insights[:2]
        assert any(i.involves("SelfReportedHealth") for i in top_two)

    def test_focused_insight_not_recommended_back(self, engine_parts):
        engine, context = engine_parts
        recommender = NeighborhoodRecommender(engine)
        focus = _insight(
            "linear_relationship",
            ("TimeDevotedToLeisure", "EmployeesWorkingVeryLongHours"),
            0.92,
        )
        result = recommender.nearby([focus], "linear_relationship", context, top_k=5)
        assert all(i.key != focus.key for i in result)

    def test_empty_focus_falls_back_to_strength(self, engine_parts):
        engine, context = engine_parts
        recommender = NeighborhoodRecommender(engine)
        result = recommender.nearby([], "skew", context, top_k=3)
        scores = [i.score for i in result]
        assert scores == sorted(scores, reverse=True)

    def test_similarity_to_focus_zero_without_focus(self, engine_parts):
        engine, _ = engine_parts
        recommender = NeighborhoodRecommender(engine)
        assert recommender.similarity_to_focus(_insight("skew", ("x",), 1.0), []) == 0.0

    def test_config_strength_weight_changes_order(self, engine_parts):
        engine, context = engine_parts
        strength_only = NeighborhoodRecommender(
            engine, NeighborhoodConfig(strength_weight=1.0)
        )
        similarity_heavy = NeighborhoodRecommender(
            engine, NeighborhoodConfig(strength_weight=0.0)
        )
        focus = _insight("normality", ("SelfReportedHealth",), 0.7)
        by_strength = strength_only.nearby([focus], "linear_relationship", context, top_k=5)
        by_similarity = similarity_heavy.nearby([focus], "linear_relationship", context, top_k=5)
        assert all(i.involves("SelfReportedHealth") for i in by_similarity.insights[:3])
        # Pure strength ordering must start with the globally strongest pair.
        assert set(by_strength.insights[0].attributes) == {
            "EmployeesWorkingVeryLongHours", "TimeDevotedToLeisure",
        }
