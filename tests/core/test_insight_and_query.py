"""Tests for Insight objects, the registry and InsightQuery."""

import pytest

from repro.core.insight import EvaluationContext, Insight, pairs, singletons
from repro.core.query import InsightQuery, MetricRange, query
from repro.core.registry import InsightRegistry, default_registry
from repro.core.classes import LinearRelationshipInsight, SkewInsight
from repro.errors import InsightError, QueryError, UnknownInsightClassError


class TestInsight:
    def make(self, **overrides) -> Insight:
        payload = dict(
            insight_class="linear_relationship",
            attributes=("a", "b"),
            score=0.9,
            metric_name="abs_pearson",
            summary="a and b are correlated",
            details={"correlation": -0.9},
        )
        payload.update(overrides)
        return Insight(**payload)

    def test_key_ignores_score(self):
        assert self.make(score=0.9).key == self.make(score=0.1).key

    def test_involves_and_shared(self):
        insight = self.make()
        other = self.make(attributes=("b", "c"))
        assert insight.involves("a")
        assert not insight.involves("z")
        assert insight.shares_attributes(other) == 1

    def test_as_dict_round_trip_fields(self):
        payload = self.make().as_dict()
        assert payload["attributes"] == ["a", "b"]
        assert payload["details"]["correlation"] == -0.9

    def test_str_contains_class_and_score(self):
        text = str(self.make())
        assert "linear_relationship" in text
        assert "0.9" in text


class TestHelpers:
    def test_pairs_are_ordered_and_unique(self):
        result = list(pairs(["a", "b", "c"]))
        assert result == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_singletons(self):
        assert list(singletons(["x", "y"])) == [("x",), ("y",)]


class TestRegistry:
    def test_default_registry_has_twelve_classes(self):
        registry = default_registry()
        assert len(registry) == 12
        assert "linear_relationship" in registry
        assert "outliers" in registry
        assert "heavy_tails" in registry

    def test_register_and_get(self):
        registry = InsightRegistry()
        registry.register(SkewInsight())
        assert registry.get("skew").name == "skew"

    def test_duplicate_registration_rejected(self):
        registry = InsightRegistry()
        registry.register(SkewInsight())
        with pytest.raises(InsightError):
            registry.register(SkewInsight())
        registry.register(SkewInsight(), replace=True)

    def test_unknown_class(self):
        registry = InsightRegistry()
        with pytest.raises(UnknownInsightClassError):
            registry.get("nope")

    def test_unregister(self):
        registry = InsightRegistry()
        registry.register(SkewInsight())
        registry.unregister("skew")
        assert "skew" not in registry
        with pytest.raises(UnknownInsightClassError):
            registry.unregister("skew")

    def test_describe_lists_metadata(self):
        descriptions = default_registry().describe()
        names = {d["name"] for d in descriptions}
        assert "segmentation" in names
        linear = next(d for d in descriptions if d["name"] == "linear_relationship")
        assert linear["arity"] == 2
        assert linear["has_overview"] is True


class TestMetricRange:
    def test_contains(self):
        r = MetricRange(0.5, 0.8)
        assert r.contains(0.6)
        assert not r.contains(0.9)
        assert not r.contains(0.4)

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            MetricRange(1.0, 0.0)

    def test_default_is_unbounded(self):
        r = MetricRange()
        assert r.contains(-1e9)
        assert r.contains(1e9)


class TestInsightQuery:
    def test_defaults(self):
        q = InsightQuery("skew")
        assert q.top_k == 5
        assert q.mode == "approximate"

    def test_validation(self):
        with pytest.raises(QueryError):
            InsightQuery("")
        with pytest.raises(QueryError):
            InsightQuery("skew", top_k=0)
        with pytest.raises(QueryError):
            InsightQuery("skew", mode="fuzzy")
        with pytest.raises(QueryError):
            InsightQuery("skew", max_candidates=0)
        with pytest.raises(QueryError):
            InsightQuery("skew", fixed_attributes=("a",), excluded_attributes=("a",))

    def test_admits_attributes(self):
        q = InsightQuery("linear_relationship", fixed_attributes=("x",),
                         excluded_attributes=("z",))
        assert q.admits_attributes(("x", "y"))
        assert not q.admits_attributes(("y", "w"))
        assert not q.admits_attributes(("x", "z"))

    def test_admits_score(self):
        q = InsightQuery("linear_relationship", metric_range=MetricRange(0.5, 0.8))
        assert q.admits_score(0.6)
        assert not q.admits_score(0.95)

    def test_builders_are_pure(self):
        q = InsightQuery("skew")
        fixed = q.with_fixed("a").with_excluded("b").with_metric_range(0.1, 0.9)
        assert q.fixed_attributes == ()
        assert fixed.fixed_attributes == ("a",)
        assert fixed.excluded_attributes == ("b",)
        assert fixed.metric_range.minimum == 0.1
        assert fixed.exact().mode == "exact"
        assert fixed.approximate().mode == "approximate"
        assert fixed.with_top_k(9).top_k == 9

    def test_query_shorthand(self):
        q = query("linear_relationship", top_k=3, fixed="x", metric_min=0.5, metric_max=0.8)
        assert q.fixed_attributes == ("x",)
        assert q.metric_range.minimum == 0.5
        assert q.metric_range.maximum == 0.8
        assert q.top_k == 3

    def test_query_shorthand_excluded_list(self):
        q = query("skew", excluded=["a", "b"])
        assert q.excluded_attributes == ("a", "b")

    def test_as_dict(self):
        q = query("skew", top_k=2)
        payload = q.as_dict()
        assert payload["insight_class"] == "skew"
        assert payload["top_k"] == 2


class TestEvaluationContext:
    def test_use_sketches_flag(self, oecd_engine):
        context = EvaluationContext(table=oecd_engine.table, store=oecd_engine.store)
        assert context.use_sketches
        assert not context.exact().use_sketches
        no_store = EvaluationContext(table=oecd_engine.table, store=None)
        assert not no_store.use_sketches

    def test_class_candidate_counts(self, oecd_table):
        linear = LinearRelationshipInsight()
        d = len(oecd_table.numeric_names())
        assert linear.candidate_count(oecd_table) == d * (d - 1) // 2
        assert len(list(linear.candidates(oecd_table))) == linear.candidate_count(oecd_table)
