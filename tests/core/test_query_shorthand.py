"""Tests for the ``query(...)`` shorthand normalisation and tag semantics.

Covers the kwarg conveniences the engine's ``query(name, **kwargs)`` shim
forwards (``fixed``/``excluded``/``tags`` given as a bare string or any
sequence, ``metric_min``/``metric_max``), and the fixed-attribute
exemption in :meth:`InsightQuery.admits_tags`.
"""

import pytest

from repro.core.query import InsightQuery, MetricRange, query
from repro.errors import QueryError


class TestShorthandNormalisation:
    def test_fixed_string_becomes_singleton_tuple(self):
        assert query("skew", fixed="A").fixed_attributes == ("A",)

    @pytest.mark.parametrize("value", [("A", "B"), ["A", "B"]])
    def test_fixed_sequence_becomes_tuple(self, value):
        assert query("skew", fixed=value).fixed_attributes == ("A", "B")

    def test_excluded_string_and_sequence(self):
        assert query("skew", excluded="A").excluded_attributes == ("A",)
        assert query("skew", excluded=["A", "B"]).excluded_attributes == ("A", "B")

    def test_tags_string_and_sequence(self):
        assert query("skew", tags="currency").required_tags == ("currency",)
        assert query("skew", tags=("currency", "date")).required_tags == (
            "currency", "date",
        )

    def test_metric_bounds_build_a_range(self):
        assert query("skew", metric_min=0.5).metric_range == MetricRange(0.5, float("inf"))
        assert query("skew", metric_max=0.8).metric_range == MetricRange(float("-inf"), 0.8)
        assert query("skew", metric_min=0.5, metric_max=0.8).metric_range == (
            MetricRange(0.5, 0.8)
        )

    def test_no_bounds_means_unbounded_range(self):
        assert query("skew").metric_range == MetricRange()

    def test_other_kwargs_pass_through(self):
        built = query("skew", top_k=7, mode="exact", max_candidates=9)
        assert (built.top_k, built.mode, built.max_candidates) == (7, "exact", 9)

    def test_empty_metric_range_rejected(self):
        with pytest.raises(QueryError):
            query("skew", metric_min=0.9, metric_max=0.1)

    def test_fixed_excluded_overlap_rejected(self):
        with pytest.raises(QueryError):
            query("skew", fixed="A", excluded=("A", "B"))


class TestAdmitsTags:
    TAGS = {"revenue": ("currency",), "cost": ("currency",),
            "year": ("date",), "headcount": ()}

    def test_no_required_tags_admits_everything(self):
        q = InsightQuery("linear_relationship")
        assert q.admits_tags(self.TAGS, ("headcount", "year"))

    def test_all_attributes_must_carry_a_required_tag(self):
        q = query("linear_relationship", tags="currency")
        assert q.admits_tags(self.TAGS, ("revenue", "cost"))
        assert not q.admits_tags(self.TAGS, ("revenue", "year"))
        assert not q.admits_tags(self.TAGS, ("revenue", "headcount"))

    def test_any_of_several_required_tags_suffices(self):
        q = query("linear_relationship", tags=("currency", "date"))
        assert q.admits_tags(self.TAGS, ("revenue", "year"))

    def test_fixed_attributes_are_exempt(self):
        # "Which currency attributes correlate with headcount?" — the fixed
        # (untagged) anchor must not disqualify the tuple.
        q = query("linear_relationship", fixed="headcount", tags="currency")
        assert q.admits_tags(self.TAGS, ("headcount", "revenue"))
        # The non-fixed partner still needs the tag.
        assert not q.admits_tags(self.TAGS, ("headcount", "year"))

    def test_unknown_attributes_count_as_untagged(self):
        q = query("linear_relationship", tags="currency")
        assert not q.admits_tags(self.TAGS, ("revenue", "mystery"))
