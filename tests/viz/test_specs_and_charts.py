"""Tests for visualization specs, chart builders and ASCII rendering."""

import json

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.stats.correlation import linear_fit
from repro.viz.ascii import render, render_table
from repro.viz.charts import (
    bar_spec,
    boxplot_spec,
    grouped_scatter_spec,
    heatmap_spec,
    histogram_spec,
    pareto_spec,
    scatter_spec,
)
from repro.viz.spec import (
    VisualizationSpec,
    encoding_channel,
    records_from_arrays,
    spec_summary,
)


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.random.default_rng(0).standard_normal(500)


class TestSpec:
    def test_to_dict_and_json(self):
        spec = VisualizationSpec(
            mark="bar",
            title="t",
            data=[{"a": 1}],
            encoding={"x": encoding_channel("a", "quantitative")},
            metadata={"note": "hello"},
        )
        payload = spec.to_dict()
        assert payload["mark"] == "bar"
        assert payload["data"]["values"] == [{"a": 1}]
        assert payload["usermeta"]["note"] == "hello"
        parsed = json.loads(spec.to_json())
        assert parsed["encoding"]["x"]["field"] == "a"

    def test_field_names_and_n_points(self):
        spec = VisualizationSpec(
            mark="point", title="t", data=[{"a": 1, "b": 2}] * 3,
            encoding={
                "x": encoding_channel("a", "quantitative"),
                "y": encoding_channel("b", "quantitative"),
            },
        )
        assert spec.field_names() == ["a", "b"]
        assert spec.n_points() == 3

    def test_records_from_arrays(self):
        records = records_from_arrays(x=np.array([1.0, 2.0]), label=["a", "b"])
        assert records == [{"x": 1.0, "label": "a"}, {"x": 2.0, "label": "b"}]

    def test_records_from_arrays_length_check(self):
        with pytest.raises(ValueError):
            records_from_arrays(x=[1, 2], y=[1])

    def test_spec_summary(self):
        spec = VisualizationSpec(mark="bar", title="Counts", data=[{"a": 1}])
        assert "bar" in spec_summary(spec)
        assert "Counts" in spec_summary(spec)


class TestChartBuilders:
    def test_histogram_spec(self, values):
        spec = histogram_spec(values, "x", bins=12)
        assert spec.mark == "bar"
        assert spec.n_points() == 12
        assert sum(r["count"] for r in spec.data) == values.size
        assert spec.metadata["column"] == "x"

    def test_boxplot_spec(self, values):
        noisy = np.concatenate([values, [40.0, -35.0]])
        spec = boxplot_spec(noisy, "x")
        assert spec.mark == "boxplot"
        record = spec.data[0]
        assert record["q1"] <= record["median"] <= record["q3"]
        assert spec.metadata["n_outliers"] >= 2
        assert spec.layers and spec.layers[0]["mark"] == "point"

    def test_pareto_spec(self):
        labels = ["a"] * 60 + ["b"] * 25 + ["c"] * 15
        spec = pareto_spec(labels, "letter")
        assert spec.mark == "pareto"
        assert [r["label"] for r in spec.data] == ["a", "b", "c"]
        assert spec.data[-1]["cumulative_frequency"] == pytest.approx(1.0)

    def test_pareto_category_cap(self):
        labels = [f"v{i}" for i in range(100)]
        spec = pareto_spec(labels, "many", max_categories=10)
        assert spec.n_points() == 10
        assert spec.metadata["n_categories_total"] == 100

    def test_scatter_spec_with_fit(self, values):
        x = values
        y = 2.0 * x + 0.1 * np.random.default_rng(1).standard_normal(values.size)
        spec = scatter_spec(x, y, "x", "y")
        assert spec.mark == "point"
        assert spec.metadata["pearson_r"] == pytest.approx(1.0, abs=0.01)
        assert spec.layers[0]["mark"] == "line"
        assert len(spec.layers[0]["data"]["values"]) == 2

    def test_scatter_spec_downsamples(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(5000)
        y = rng.standard_normal(5000)
        spec = scatter_spec(x, y, "x", "y", max_points=100)
        assert spec.n_points() == 100
        assert spec.metadata["n_points_total"] == 5000

    def test_scatter_spec_empty_raises(self):
        with pytest.raises(VisualizationError):
            scatter_spec(np.array([np.nan]), np.array([1.0]), "x", "y")

    def test_scatter_with_precomputed_fit(self, values):
        fit = linear_fit(values, values)
        spec = scatter_spec(values, values, "x", "x2", fit=fit)
        assert spec.metadata["slope"] == pytest.approx(1.0)

    def test_grouped_scatter_spec(self, clustered_table):
        spec = grouped_scatter_spec(
            clustered_table.numeric_column("x").values,
            clustered_table.numeric_column("y").values,
            clustered_table.categorical_column("cluster").labels(),
            "x", "y", "cluster",
        )
        assert spec.encoding["color"]["field"] == "cluster"
        assert spec.n_points() <= 2000

    def test_heatmap_spec(self):
        matrix = np.array([[1.0, -0.5], [-0.5, 1.0]])
        spec = heatmap_spec(matrix, ["a", "b"])
        assert spec.mark == "rect"
        assert spec.n_points() == 4
        assert {r["correlation"] for r in spec.data} == {1.0, -0.5}

    def test_heatmap_validation(self):
        with pytest.raises(VisualizationError):
            heatmap_spec(np.ones((2, 3)), ["a", "b"])
        with pytest.raises(VisualizationError):
            heatmap_spec(np.ones((2, 2)), ["a"])

    def test_bar_spec(self):
        spec = bar_spec(["x", "y"], [3, 5], "label", value_name="count")
        assert spec.mark == "bar"
        assert spec.data[1]["count"] == 5.0
        with pytest.raises(VisualizationError):
            bar_spec(["x"], [1, 2], "label")


class TestAsciiRendering:
    def test_histogram_rendering(self, values):
        text = render(histogram_spec(values, "x", bins=8))
        assert "Distribution of x" in text
        assert "#" in text

    def test_boxplot_rendering(self, values):
        text = render(boxplot_spec(values, "x"))
        assert "median" in text
        assert "M" in text

    def test_scatter_rendering(self, values):
        y = values * 2
        text = render(scatter_spec(values, y, "x", "y"), width=40, height=10)
        assert "o" in text
        assert "x:" in text and "y:" in text

    def test_heatmap_rendering(self):
        matrix = np.array([[1.0, 0.2], [0.2, 1.0]])
        text = render(heatmap_spec(matrix, ["alpha", "beta"]))
        assert "alpha" in text

    def test_pareto_rendering(self):
        text = render(pareto_spec(["a", "a", "b"], "letter"))
        assert "a" in text and "|" in text

    def test_unknown_mark_message(self):
        spec = VisualizationSpec(mark="sankey", title="weird")
        assert "no ASCII renderer" in render(spec)

    def test_empty_spec(self):
        spec = VisualizationSpec(mark="bar", title="empty",
                                 encoding={"x": encoding_channel("a", "nominal"),
                                           "y": encoding_channel("b", "quantitative")})
        assert "(empty)" in render(spec)

    def test_render_table(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "b", "value": 2.0}]
        text = render_table(rows)
        assert "name" in text and "1.235" in text
        assert render_table([]) == "(no rows)"
