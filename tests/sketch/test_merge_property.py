"""Property tests for sketch merge correctness — the ingest invariant.

The live-ingestion subsystem (:mod:`repro.ingest`) rests on one claim:
for every sketch type, ``merge(build(A), build(B))`` answers queries
within the **same error bound** as ``build(A + B)``.  These tests state
that claim per sketch type over hypothesis-generated data and random
split points:

* moments — the merge is lossless: merged statistics equal the
  single-pass statistics to float precision;
* quantile (GK) — the merged summary's rank error stays within the
  ``ε·n`` bound over the union;
* count-min — merged point estimates never undercount and overshoot by
  at most the merged sketch's own ``ε·n`` bound;
* Misra–Gries — merged estimates stay within ``[c(x) − n/capacity,
  c(x)]``;
* Space-Saving — merged estimates stay within ``[c(x),
  c(x) + n/capacity]``;
* entropy — with the head tracked exactly (distinct values within
  capacity) the merged estimate equals the exact Shannon entropy of the
  union;
* streaming hyperplane — merged disjoint row partitions finalize to the
  byte-identical signature of a single-partition build;
* reservoir sample — the merged sample is drawn from the union with
  per-side inclusion proportional to stream sizes (correct weighting).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sketch.countmin import CountMinSketch
from repro.sketch.entropy import EntropySketch
from repro.sketch.frequent import MisraGriesSketch, SpaceSavingSketch, exact_counts
from repro.sketch.hyperplane import StreamingHyperplaneSketch
from repro.sketch.moments import MomentSketch
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import ReservoirSample

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False,
    width=64,
)
float_lists = st.lists(finite_floats, min_size=4, max_size=400)
#: ≤ 12 distinct labels: small enough that counter sketches with default
#: capacities track the head exactly, making bounds sharp.
label_lists = st.lists(
    st.sampled_from([f"v{i}" for i in range(12)]), min_size=2, max_size=500
)
splits = st.integers(min_value=0, max_value=500)


def _split(values, split):
    split = min(split, len(values))
    return values[:split], values[split:]


class TestMomentMerge:
    @given(values=float_lists, split=splits)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_lossless(self, values, split):
        array = np.asarray(values)
        a, b = _split(array, split)
        whole = MomentSketch()
        whole.update_array(array)
        left, right = MomentSketch(), MomentSketch()
        left.update_array(a)
        right.update_array(b)
        left.merge(right)
        assert left.count == whole.count
        assert np.isclose(left.mean(), whole.mean(), rtol=1e-9, atol=1e-9)
        assert np.isclose(left.variance(), whole.variance(),
                          rtol=1e-6, atol=1e-6)
        if not (math.isnan(whole.skewness()) or math.isnan(left.skewness())):
            assert np.isclose(left.skewness(), whole.skewness(),
                              rtol=1e-5, atol=1e-5)
        assert left.minimum() == whole.minimum()
        assert left.maximum() == whole.maximum()


class TestQuantileMerge:
    @given(values=st.lists(finite_floats, min_size=10, max_size=600),
           split=splits,
           q=st.sampled_from([0.05, 0.25, 0.5, 0.75, 0.95]))
    @settings(max_examples=60, deadline=None)
    def test_merged_rank_error_within_epsilon(self, values, split, q):
        epsilon = 0.05
        array = np.asarray(values)
        a, b = _split(array, split)
        left, right = QuantileSketch(epsilon), QuantileSketch(epsilon)
        left.update_array(a)
        right.update_array(b)
        left.merge(right)
        assert left.count == array.size
        estimate = left.quantile(q)
        ordered = np.sort(array)
        rank_low = np.searchsorted(ordered, estimate, side="left")
        rank_high = np.searchsorted(ordered, estimate, side="right")
        target = q * (array.size - 1) + 1
        # Same slack the single-build property test grants: the quantile
        # query scans with an epsilon*n margin on top of the summary's
        # epsilon*n tuple uncertainty.
        slack = 2 * epsilon * array.size + 1
        assert rank_low - slack <= target <= rank_high + slack


class TestCountMinMerge:
    @given(labels=label_lists, split=splits)
    @settings(max_examples=60, deadline=None)
    def test_merged_estimates_bounded(self, labels, split):
        a, b = _split(labels, split)
        left = CountMinSketch(width=64, depth=4, seed=7)
        right = CountMinSketch(width=64, depth=4, seed=7)
        left.update_many(a)
        right.update_many(b)
        left.merge(right)
        truth = exact_counts(labels)
        assert left.count == len(labels)
        for value, count in truth.items():
            estimate = left.estimate(value)
            assert estimate >= count          # never undercounts
            assert estimate <= count + left.error_bound()


class TestMisraGriesMerge:
    @given(labels=label_lists, split=splits,
           capacity=st.sampled_from([2, 4, 8, 32]))
    @settings(max_examples=60, deadline=None)
    def test_merged_undercount_bound(self, labels, split, capacity):
        a, b = _split(labels, split)
        left = MisraGriesSketch(capacity=capacity)
        right = MisraGriesSketch(capacity=capacity)
        left.update_many(a)
        right.update_many(b)
        left.merge(right)
        truth = exact_counts(labels)
        n = len(labels)
        assert left.count == n
        for value, count in truth.items():
            estimate = left.estimate(value)
            assert estimate <= count
            assert estimate >= count - n / capacity


class TestSpaceSavingMerge:
    @given(labels=label_lists, split=splits,
           capacity=st.sampled_from([4, 8, 32]))
    @settings(max_examples=60, deadline=None)
    def test_merged_overcount_bound(self, labels, split, capacity):
        a, b = _split(labels, split)
        left = SpaceSavingSketch(capacity=capacity)
        right = SpaceSavingSketch(capacity=capacity)
        left.update_many(a)
        right.update_many(b)
        left.merge(right)
        truth = exact_counts(labels)
        n = len(labels)
        assert left.count == n
        for value, count in truth.items():
            estimate = left.estimate(value)
            if estimate:  # tracked items never undercount ...
                assert estimate >= count
            assert estimate <= count + 2 * n / capacity  # ... or overshoot far


class TestEntropyMerge:
    @given(labels=label_lists, split=splits)
    @settings(max_examples=60, deadline=None)
    def test_merged_entropy_exact_when_head_fits(self, labels, split):
        a, b = _split(labels, split)
        left = EntropySketch(capacity=64, seed=3)
        right = EntropySketch(capacity=64, seed=3)
        left.update_many(a)
        right.update_many(b)
        left.merge(right)
        counts = exact_counts(labels)
        n = len(labels)
        exact = -sum(
            (c / n) * math.log2(c / n) for c in counts.values() if c
        )
        assert left.count == n
        # ≤ 12 distinct values against capacity 64: the Space-Saving head
        # is exact on both sides and stays exact under the merge, so the
        # estimator's bound collapses to float precision.
        assert np.isclose(left.estimate_entropy(), exact, atol=1e-9)


class TestStreamingHyperplaneMerge:
    @given(values=st.lists(finite_floats, min_size=2, max_size=120),
           split=st.integers(min_value=0, max_value=120))
    @settings(max_examples=25, deadline=None)
    def test_merged_signature_is_byte_identical(self, values, split):
        split = min(split, len(values))
        array = np.asarray(values)
        mean = float(array.mean())
        whole = StreamingHyperplaneSketch(width=64, seed=5, mean=mean)
        whole.update_array(array)
        left = StreamingHyperplaneSketch(width=64, seed=5, mean=mean,
                                         row_offset=0)
        right = StreamingHyperplaneSketch(width=64, seed=5, mean=mean,
                                          row_offset=split)
        left.update_array(array[:split])
        right.update_array(array[split:])
        left.merge(right)
        assert np.array_equal(left.signature().bits, whole.signature().bits)


class TestReservoirMerge:
    @given(split=st.integers(min_value=0, max_value=300),
           capacity=st.sampled_from([5, 20, 50]),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_merged_sample_structure(self, split, capacity, seed):
        values = list(range(300))
        a, b = values[:split], values[split:]
        left = ReservoirSample(capacity=capacity, seed=seed)
        right = ReservoirSample(capacity=capacity, seed=seed + 1)
        left.update_many(a)
        right.update_many(b)
        pool = set(left.sample) | set(right.sample)
        left.merge(right)
        assert left.count == len(values)
        assert len(left.sample) == min(capacity, len(pool))
        assert set(left.sample) <= set(values)
        assert set(left.sample) <= pool

    def test_merge_weighting_is_proportional(self):
        """Inclusion probability tracks stream size — correct weighting.

        Side A contributes 3x the rows of side B; over many independent
        merges the fraction of merged-sample items that came from A must
        concentrate on 3/4 (binomial concentration, wide tolerance).
        """
        n_a, n_b, capacity, trials = 600, 200, 40, 300
        fractions = []
        for seed in range(trials):
            left = ReservoirSample(capacity=capacity, seed=seed)
            right = ReservoirSample(capacity=capacity, seed=10_000 + seed)
            left.update_many(range(n_a))                    # A: 0..599
            right.update_many(range(n_a, n_a + n_b))        # B: 600..799
            left.merge(right)
            from_a = sum(1 for item in left.sample if item < n_a)
            fractions.append(from_a / len(left.sample))
        observed = float(np.mean(fractions))
        expected = n_a / (n_a + n_b)
        # std of the mean is ~ sqrt(p(1-p)/capacity/trials) ≈ 0.004;
        # 0.03 is a ~7-sigma band, flake-proof yet tight enough to catch
        # an unweighted (50/50) merge by a mile.
        assert abs(observed - expected) < 0.03
