"""Tests for the random hyperplane (SimHash) correlation sketch."""

import numpy as np
import pytest

from repro.errors import SketchError, SketchMergeError
from repro.data.datasets import make_correlated_pair
from repro.sketch.hyperplane import (
    HyperplaneSketcher,
    StreamingHyperplaneSketch,
    suggest_width,
)
from repro.stats.correlation import correlation_matrix, pearson


@pytest.fixture(scope="module")
def pair_matrix() -> np.ndarray:
    table = make_correlated_pair(20_000, 0.8, seed=0)
    matrix, _ = table.numeric_matrix()
    return matrix


class TestSuggestWidth:
    def test_grows_with_n(self):
        assert suggest_width(1_000_000) > suggest_width(1_000)

    def test_multiple_of_eight(self):
        for n in (100, 10_000, 1_000_000):
            assert suggest_width(n) % 8 == 0

    def test_bounds(self):
        assert suggest_width(1) == 64
        assert suggest_width(10**9, maximum=512) == 512


class TestBatchSketcher:
    def test_estimates_strong_correlation(self, pair_matrix):
        sketcher = HyperplaneSketcher(n_rows=pair_matrix.shape[0], width=1024, seed=1)
        sketches = sketcher.sketch_matrix(pair_matrix)
        estimate = sketches[0].estimate_correlation(sketches[1])
        exact = pearson(pair_matrix[:, 0], pair_matrix[:, 1])
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_self_correlation_is_one(self, pair_matrix):
        sketcher = HyperplaneSketcher(n_rows=pair_matrix.shape[0], width=256, seed=2)
        sketch = sketcher.sketch_matrix(pair_matrix)[0]
        assert sketch.estimate_correlation(sketch) == pytest.approx(1.0)

    def test_negated_column_gives_minus_one(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(5000)
        matrix = np.column_stack([x, -x])
        sketcher = HyperplaneSketcher(n_rows=5000, width=256, seed=3)
        sketches = sketcher.sketch_matrix(matrix)
        assert sketches[0].estimate_correlation(sketches[1]) == pytest.approx(-1.0)

    def test_independent_columns_near_zero(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((20_000, 2))
        sketcher = HyperplaneSketcher(n_rows=20_000, width=1024, seed=4)
        sketches = sketcher.sketch_matrix(matrix)
        assert abs(sketches[0].estimate_correlation(sketches[1])) < 0.15

    def test_correlation_matrix_close_to_exact(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal(10_000)
        matrix = np.column_stack(
            [base + 0.3 * rng.standard_normal(10_000) for _ in range(4)]
            + [rng.standard_normal(10_000)]
        )
        sketcher = HyperplaneSketcher(n_rows=10_000, width=1024, seed=5)
        approx = sketcher.correlation_matrix(sketcher.sketch_matrix(matrix))
        exact = correlation_matrix(matrix)
        errors = np.abs(approx - exact)
        assert errors.max() < 0.2
        assert errors.mean() < 0.06
        np.testing.assert_allclose(np.diag(approx), 1.0)

    def test_missing_values_handled(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(5000)
        y = 0.9 * x + 0.4 * rng.standard_normal(5000)
        x_gappy = x.copy()
        x_gappy[::50] = np.nan
        matrix = np.column_stack([x_gappy, y])
        sketcher = HyperplaneSketcher(n_rows=5000, width=512, seed=6)
        sketches = sketcher.sketch_matrix(matrix)
        assert sketches[0].estimate_correlation(sketches[1]) > 0.7

    def test_memory_accounting_matches_paper_claim(self):
        # |B| * k bits of memory for the whole numeric block.
        sketcher = HyperplaneSketcher(n_rows=1000, width=512, seed=7)
        assert sketcher.memory_bytes(n_columns=30) == 30 * 512 // 8
        matrix = np.random.default_rng(7).standard_normal((1000, 3))
        for sketch in sketcher.sketch_matrix(matrix):
            assert sketch.memory_bytes() == 512 // 8

    def test_incompatible_sketches_rejected(self):
        rng = np.random.default_rng(8)
        matrix = rng.standard_normal((100, 1))
        a = HyperplaneSketcher(n_rows=100, width=64, seed=1).sketch_matrix(matrix)[0]
        b = HyperplaneSketcher(n_rows=100, width=64, seed=2).sketch_matrix(matrix)[0]
        with pytest.raises(SketchMergeError):
            a.estimate_correlation(b)

    def test_row_count_validation(self):
        sketcher = HyperplaneSketcher(n_rows=100, width=64)
        with pytest.raises(SketchError):
            sketcher.sketch_matrix(np.zeros((50, 2)))

    def test_parameter_validation(self):
        with pytest.raises(SketchError):
            HyperplaneSketcher(n_rows=0)
        with pytest.raises(SketchError):
            HyperplaneSketcher(n_rows=10, width=0)

    def test_deterministic_given_seed(self, pair_matrix):
        a = HyperplaneSketcher(n_rows=pair_matrix.shape[0], width=128, seed=9)
        b = HyperplaneSketcher(n_rows=pair_matrix.shape[0], width=128, seed=9)
        np.testing.assert_array_equal(
            a.sketch_matrix(pair_matrix)[0].bits, b.sketch_matrix(pair_matrix)[0].bits
        )


class TestStreamingSketch:
    def test_matches_batch_signature(self):
        rng = np.random.default_rng(10)
        values = rng.standard_normal(500)
        streaming = StreamingHyperplaneSketch(width=64, seed=11, mean=float(values.mean()))
        streaming.update_array(values)
        signature = streaming.signature()
        assert signature.width == 64
        assert signature.bits.size == 8

    def test_merge_of_partitions_equals_single_pass(self):
        rng = np.random.default_rng(12)
        values = rng.standard_normal(400)
        mean = float(values.mean())
        whole = StreamingHyperplaneSketch(width=64, seed=13, mean=mean)
        whole.update_array(values)
        left = StreamingHyperplaneSketch(width=64, seed=13, mean=mean, row_offset=0)
        left.update_array(values[:150])
        right = StreamingHyperplaneSketch(width=64, seed=13, mean=mean, row_offset=150)
        right.update_array(values[150:])
        left.merge(right)
        np.testing.assert_array_equal(left.signature().bits, whole.signature().bits)

    def test_merge_parameter_check(self):
        a = StreamingHyperplaneSketch(width=64, seed=1)
        b = StreamingHyperplaneSketch(width=128, seed=1)
        with pytest.raises(SketchMergeError):
            a.merge(b)

    def test_correlation_between_streamed_columns(self):
        rng = np.random.default_rng(14)
        x = rng.standard_normal(2000)
        y = 0.9 * x + np.sqrt(1 - 0.81) * rng.standard_normal(2000)
        sketch_x = StreamingHyperplaneSketch(width=512, seed=15, mean=float(x.mean()))
        sketch_y = StreamingHyperplaneSketch(width=512, seed=15, mean=float(y.mean()))
        sketch_x.update_array(x)
        sketch_y.update_array(y)
        estimate = sketch_x.signature().estimate_correlation(sketch_y.signature())
        assert estimate == pytest.approx(0.9, abs=0.12)
