"""Tests for the moment, quantile, frequent-items, Count-Min, entropy,
projection and reservoir sketches."""

import numpy as np
import pytest

from repro.errors import EmptyColumnError, SketchError, SketchMergeError
from repro.sketch.countmin import CountMinSketch
from repro.sketch.entropy import EntropySketch
from repro.sketch.frequent import MisraGriesSketch, SpaceSavingSketch, exact_counts
from repro.sketch.moments import MomentSketch
from repro.sketch.projection import RandomProjectionSketcher
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import ReservoirSample, reservoir_row_indices, sample_pairs
from repro.stats.frequency import shannon_entropy
from repro.stats.moments import kurtosis, skewness


@pytest.fixture(scope="module")
def zipf_labels() -> list[str]:
    rng = np.random.default_rng(0)
    ranks = np.arange(1, 301, dtype=float)
    p = ranks**-1.4
    p /= p.sum()
    return [f"item_{i}" for i in rng.choice(300, size=30_000, p=p)]


class TestMomentSketch:
    def test_matches_exact_metrics(self):
        values = np.random.default_rng(1).lognormal(size=20_000)
        sketch = MomentSketch()
        sketch.update_array(values)
        assert sketch.count == values.size
        assert sketch.mean() == pytest.approx(float(values.mean()))
        assert sketch.variance() == pytest.approx(float(values.var()))
        assert sketch.skewness() == pytest.approx(skewness(values), rel=1e-9)
        assert sketch.kurtosis() == pytest.approx(kurtosis(values), rel=1e-9)

    def test_merge(self):
        rng = np.random.default_rng(2)
        a_values, b_values = rng.standard_normal(1000), rng.standard_normal(1500) + 3
        a, b = MomentSketch(), MomentSketch()
        a.update_array(a_values)
        b.update_array(b_values)
        a.merge(b)
        combined = np.concatenate([a_values, b_values])
        assert a.mean() == pytest.approx(float(combined.mean()))
        assert a.kurtosis() == pytest.approx(kurtosis(combined), rel=1e-9)

    def test_merge_type_check(self):
        with pytest.raises(SketchMergeError):
            MomentSketch().merge(QuantileSketch())

    def test_memory_is_constant(self):
        sketch = MomentSketch()
        sketch.update_array(np.arange(100_000, dtype=float))
        assert sketch.memory_bytes() == 56


class TestQuantileSketch:
    def test_rank_error_within_epsilon(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(50_000)
        epsilon = 0.01
        sketch = QuantileSketch(epsilon=epsilon)
        sketch.update_array(values)
        ordered = np.sort(values)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = sketch.quantile(q)
            true_rank = np.searchsorted(ordered, estimate, side="right")
            assert abs(true_rank - q * values.size) <= 2 * epsilon * values.size + 1

    def test_streaming_updates_match_batch(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 100, 3000)
        streaming = QuantileSketch(epsilon=0.02)
        for value in values:
            streaming.update(float(value))
        batch = QuantileSketch(epsilon=0.02)
        batch.update_array(values)
        for q in (0.25, 0.5, 0.75):
            assert streaming.quantile(q) == pytest.approx(batch.quantile(q), abs=5.0)

    def test_space_is_sublinear(self):
        sketch = QuantileSketch(epsilon=0.01)
        sketch.update_array(np.random.default_rng(5).standard_normal(100_000))
        assert sketch.n_tuples < 2_000

    def test_merge(self):
        rng = np.random.default_rng(6)
        left_values = rng.uniform(0, 1, 10_000)
        right_values = rng.uniform(1, 2, 10_000)
        left, right = QuantileSketch(0.01), QuantileSketch(0.01)
        left.update_array(left_values)
        right.update_array(right_values)
        left.merge(right)
        assert left.count == 20_000
        assert left.median() == pytest.approx(1.0, abs=0.05)

    def test_merge_epsilon_check(self):
        with pytest.raises(SketchMergeError):
            QuantileSketch(0.01).merge(QuantileSketch(0.05))

    def test_empty_query_raises(self):
        with pytest.raises(EmptyColumnError):
            QuantileSketch().quantile(0.5)

    def test_cdf_and_rank(self):
        sketch = QuantileSketch(epsilon=0.01)
        sketch.update_array(np.arange(1000, dtype=float))
        assert sketch.cdf(500.0) == pytest.approx(0.5, abs=0.05)
        assert sketch.rank(-1.0) == 0

    def test_five_number_summary_ordered(self):
        sketch = QuantileSketch(epsilon=0.02)
        sketch.update_array(np.random.default_rng(7).standard_normal(5000))
        summary = sketch.five_number_summary()
        assert summary["min"] <= summary["q1"] <= summary["median"] <= summary["q3"] <= summary["max"]

    def test_nan_ignored(self):
        sketch = QuantileSketch()
        sketch.update(float("nan"))
        assert sketch.count == 0

    def test_epsilon_validation(self):
        with pytest.raises(SketchError):
            QuantileSketch(epsilon=0.7)


class TestFrequentItems:
    def test_misra_gries_error_bound(self, zipf_labels):
        capacity = 64
        sketch = MisraGriesSketch(capacity=capacity)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        bound = len(zipf_labels) / capacity
        for label, true_count in truth.items():
            estimate = sketch.estimate(label)
            assert estimate <= true_count
            assert estimate >= true_count - bound - 1

    def test_misra_gries_finds_heavy_hitters(self, zipf_labels):
        sketch = MisraGriesSketch(capacity=32)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        true_top3 = {k for k, _ in sorted(truth.items(), key=lambda kv: -kv[1])[:3]}
        sketch_top3 = {k for k, _ in sketch.top_k(3)}
        assert true_top3 == sketch_top3

    def test_misra_gries_relfreq(self, zipf_labels):
        sketch = MisraGriesSketch(capacity=128)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        exact_top5 = sum(sorted(truth.values(), reverse=True)[:5]) / len(zipf_labels)
        assert sketch.relative_frequency_topk(5) == pytest.approx(exact_top5, abs=0.05)

    def test_misra_gries_merge(self, zipf_labels):
        half = len(zipf_labels) // 2
        a, b = MisraGriesSketch(64), MisraGriesSketch(64)
        a.update_many(zipf_labels[:half])
        b.update_many(zipf_labels[half:])
        a.merge(b)
        truth = exact_counts(zipf_labels)
        top = max(truth, key=truth.get)
        assert a.estimate(top) <= truth[top]
        assert a.estimate(top) >= truth[top] - 2 * len(zipf_labels) / 64 - 2
        assert a.count == len(zipf_labels)

    def test_misra_gries_merge_capacity_check(self):
        with pytest.raises(SketchMergeError):
            MisraGriesSketch(8).merge(MisraGriesSketch(16))

    def test_space_saving_overestimates(self, zipf_labels):
        sketch = SpaceSavingSketch(capacity=64)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        for label, _ in sketch.top_k(10):
            assert sketch.estimate(label) >= truth[label]
            assert sketch.guaranteed_count(label) <= truth[label]

    def test_space_saving_heavy_hitters_present(self, zipf_labels):
        sketch = SpaceSavingSketch(capacity=64)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        true_top = max(truth, key=truth.get)
        assert true_top in dict(sketch.top_k(5))

    def test_space_saving_merge(self, zipf_labels):
        half = len(zipf_labels) // 2
        a, b = SpaceSavingSketch(64), SpaceSavingSketch(64)
        a.update_many(zipf_labels[:half])
        b.update_many(zipf_labels[half:])
        a.merge(b)
        assert a.count == len(zipf_labels)
        truth = exact_counts(zipf_labels)
        true_top = max(truth, key=truth.get)
        assert a.estimate(true_top) >= truth[true_top] * 0.8

    def test_none_ignored(self):
        sketch = MisraGriesSketch(4)
        sketch.update(None)
        assert sketch.count == 0

    def test_capacity_validation(self):
        with pytest.raises(SketchError):
            MisraGriesSketch(0)
        with pytest.raises(SketchError):
            SpaceSavingSketch(0)


class TestCountMin:
    def test_overestimates_within_bound(self, zipf_labels):
        sketch = CountMinSketch(width=512, depth=4, seed=1)
        sketch.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        violations = 0
        for label, true_count in truth.items():
            estimate = sketch.estimate(label)
            assert estimate >= true_count
            if estimate > true_count + sketch.error_bound():
                violations += 1
        assert violations <= len(truth) * 0.05

    def test_from_error_bounds_sizes(self):
        sketch = CountMinSketch.from_error_bounds(epsilon=0.001, delta=0.01)
        assert sketch.width >= 2718
        assert sketch.depth >= 5

    def test_merge(self, zipf_labels):
        half = len(zipf_labels) // 2
        a = CountMinSketch(width=256, depth=4, seed=2)
        b = CountMinSketch(width=256, depth=4, seed=2)
        a.update_many(zipf_labels[:half])
        b.update_many(zipf_labels[half:])
        a.merge(b)
        whole = CountMinSketch(width=256, depth=4, seed=2)
        whole.update_many(zipf_labels)
        truth = exact_counts(zipf_labels)
        top = max(truth, key=truth.get)
        assert a.estimate(top) == whole.estimate(top)

    def test_merge_parameter_check(self):
        with pytest.raises(SketchMergeError):
            CountMinSketch(width=128, seed=1).merge(CountMinSketch(width=128, seed=2))

    def test_relative_frequency(self):
        sketch = CountMinSketch(width=64, depth=3)
        sketch.update_many(["a"] * 80 + ["b"] * 20)
        assert sketch.relative_frequency("a") == pytest.approx(0.8, abs=0.1)


class TestEntropySketch:
    def test_estimates_entropy_of_skewed_stream(self, zipf_labels):
        sketch = EntropySketch(capacity=256, seed=1)
        sketch.update_many(zipf_labels)
        exact = shannon_entropy(zipf_labels)
        assert sketch.estimate_entropy() == pytest.approx(exact, rel=0.2)

    def test_uniform_stream_has_high_normalized_entropy(self):
        rng = np.random.default_rng(2)
        labels = [f"v{i}" for i in rng.integers(0, 50, 20_000)]
        sketch = EntropySketch(capacity=128, seed=3)
        sketch.update_many(labels)
        assert sketch.estimate_normalized_entropy() > 0.9

    def test_single_value_stream(self):
        sketch = EntropySketch(capacity=16)
        sketch.update_many(["x"] * 1000)
        assert sketch.estimate_entropy() == pytest.approx(0.0, abs=1e-6)

    def test_merge(self, zipf_labels):
        half = len(zipf_labels) // 2
        a, b = EntropySketch(capacity=256, seed=4), EntropySketch(capacity=256, seed=4)
        a.update_many(zipf_labels[:half])
        b.update_many(zipf_labels[half:])
        a.merge(b)
        assert a.count == len(zipf_labels)
        assert a.estimate_entropy() == pytest.approx(shannon_entropy(zipf_labels), rel=0.25)


class TestRandomProjection:
    def test_norm_and_dot_estimates(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(5000)
        y = 0.7 * x + 0.7 * rng.standard_normal(5000)
        sketcher = RandomProjectionSketcher(n_rows=5000, width=512, seed=6)
        sx, sy = sketcher.sketch_matrix(np.column_stack([x, y]), center=False)
        assert sx.estimate_norm_squared() == pytest.approx(float(x @ x), rel=0.15)
        assert sx.estimate_dot(sy) == pytest.approx(float(x @ y), rel=0.2)

    def test_correlation_estimate(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(10_000)
        y = 0.85 * x + np.sqrt(1 - 0.85**2) * rng.standard_normal(10_000)
        sketcher = RandomProjectionSketcher(n_rows=10_000, width=1024, seed=8)
        sx, sy = sketcher.sketch_matrix(np.column_stack([x, y]))
        assert sx.estimate_correlation(sy) == pytest.approx(0.85, abs=0.1)

    def test_incompatible_sketches(self):
        rng = np.random.default_rng(9)
        matrix = rng.standard_normal((100, 1))
        a = RandomProjectionSketcher(100, width=64, seed=1).sketch_matrix(matrix)[0]
        b = RandomProjectionSketcher(100, width=64, seed=2).sketch_matrix(matrix)[0]
        with pytest.raises(SketchMergeError):
            a.estimate_dot(b)

    def test_distance_estimate(self):
        x = np.zeros(1000)
        y = np.ones(1000)
        sketcher = RandomProjectionSketcher(1000, width=512, seed=10)
        sx, sy = sketcher.sketch_matrix(np.column_stack([x, y]), center=False)
        assert sx.estimate_distance(sy) == pytest.approx(np.sqrt(1000), rel=0.2)


class TestReservoir:
    def test_sample_size_bounded(self):
        sample = ReservoirSample(capacity=100, seed=0)
        sample.update_many(range(10_000))
        assert len(sample.sample) == 100
        assert sample.count == 10_000

    def test_small_stream_kept_entirely(self):
        sample = ReservoirSample(capacity=100, seed=1)
        sample.update_many(range(30))
        assert sorted(sample.sample) == list(range(30))

    def test_approximately_uniform(self):
        sample = ReservoirSample(capacity=2000, seed=2)
        sample.update_many(range(20_000))
        mean = float(np.mean(sample.sample_array()))
        assert mean == pytest.approx(10_000, rel=0.1)

    def test_merge_preserves_capacity_and_count(self):
        a, b = ReservoirSample(50, seed=3), ReservoirSample(50, seed=4)
        a.update_many(range(1000))
        b.update_many(range(1000, 3000))
        a.merge(b)
        assert a.count == 3000
        assert len(a.sample) == 50

    def test_row_indices_helper(self):
        indices = reservoir_row_indices(10, capacity=20)
        assert indices.tolist() == list(range(10))
        sampled = reservoir_row_indices(1000, capacity=10, seed=5)
        assert len(sampled) == 10
        assert len(set(sampled.tolist())) == 10

    def test_sample_pairs(self):
        x = np.arange(100.0)
        y = np.arange(100.0) * 2
        xs, ys = sample_pairs(x, y, capacity=10, seed=6)
        assert xs.size == ys.size == 10
        np.testing.assert_allclose(ys, xs * 2)
