"""Tests for the SketchStore (preprocessing layer)."""

import numpy as np
import pytest

from repro.errors import SketchNotAvailableError
from repro.data.datasets import make_mixed_table
from repro.sketch.store import (
    SketchStore,
    SketchStoreConfig,
    merge_column_sketches,
    preprocess,
)
from repro.stats import (
    kurtosis,
    median,
    pearson,
    relative_frequency_topk,
    skewness,
    variance,
)


@pytest.fixture(scope="module")
def store_table():
    return make_mixed_table(n_rows=3000, n_numeric=8, n_categorical=2, seed=9)


@pytest.fixture(scope="module")
def store(store_table) -> SketchStore:
    return SketchStore(store_table, config=SketchStoreConfig(hyperplane_width=512, seed=1))


class TestConstruction:
    def test_preprocess_convenience(self, store_table):
        assert isinstance(preprocess(store_table), SketchStore)

    def test_stats_recorded(self, store):
        stats = store.stats
        assert stats.n_rows == 3000
        assert stats.n_numeric == 8
        assert stats.n_categorical == 2
        assert stats.hyperplane_width == 512
        assert stats.seconds > 0
        assert stats.total_sketch_bytes > 0
        assert set(stats.per_stage_seconds) == {"hyperplane", "numeric", "categorical"}

    def test_every_column_has_sketches(self, store, store_table):
        for name in store_table.column_names():
            assert store.has_column(name)

    def test_unknown_column_raises(self, store):
        with pytest.raises(SketchNotAvailableError):
            store.column_sketches("nope")

    def test_sample_table_bounded(self, store):
        sample = store.sample_table()
        assert sample.n_rows <= store.config.sample_capacity
        assert sample.column_names() == store.table.column_names()


class TestApproximateMetrics:
    def test_moments_match_exact(self, store, store_table):
        name = "attr_003"
        values = store_table.numeric_column(name).valid_values()
        assert store.approx_mean(name) == pytest.approx(float(values.mean()))
        assert store.approx_variance(name) == pytest.approx(variance(values))
        assert store.approx_skewness(name) == pytest.approx(skewness(values), abs=1e-9)
        assert store.approx_kurtosis(name) == pytest.approx(kurtosis(values), abs=1e-9)

    def test_quantiles_close_to_exact(self, store, store_table):
        name = "attr_001"
        values = store_table.numeric_column(name).valid_values()
        assert store.approx_quantile(name, 0.5) == pytest.approx(median(values), abs=0.1)
        summary = store.approx_five_number_summary(name)
        assert summary["q1"] <= summary["median"] <= summary["q3"]

    def test_correlation_close_to_exact(self, store, store_table):
        x = store_table.numeric_column("attr_000").values
        y = store_table.numeric_column("attr_001").values
        exact = pearson(x, y)
        assert store.approx_correlation("attr_000", "attr_001") == pytest.approx(exact, abs=0.15)

    def test_correlation_matrix_shape_and_symmetry(self, store):
        matrix, names = store.approx_correlation_matrix()
        assert matrix.shape == (len(names), len(names))
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_relfreq_close_to_exact(self, store, store_table):
        labels = store_table.categorical_column("cat_00").valid_labels()
        exact = relative_frequency_topk(labels, 3)
        assert store.approx_relative_frequency_topk("cat_00", 3) == pytest.approx(exact, abs=0.05)

    def test_top_values(self, store, store_table):
        top = store.approx_top_values("cat_00", 3)
        assert len(top) == 3
        counts = store_table.categorical_column("cat_00").value_counts()
        assert top[0][0] == next(iter(counts))

    def test_entropy_positive(self, store):
        assert store.approx_entropy("cat_00") > 0
        assert 0 <= store.approx_normalized_entropy("cat_00") <= 1

    def test_outlier_strength_nonnegative(self, store):
        for name in ("attr_000", "attr_007"):
            assert store.approx_outlier_strength(name) >= 0.0

    def test_missing_sketch_raises(self, store):
        with pytest.raises(SketchNotAvailableError):
            store.approx_relative_frequency_topk("attr_000", 3)


class TestConfig:
    def test_resolved_width_default_uses_suggestion(self):
        config = SketchStoreConfig()
        assert config.resolved_width(100_000) >= 256

    def test_resolved_width_override(self):
        assert SketchStoreConfig(hyperplane_width=128).resolved_width(10**6) == 128

    def test_quantile_sample_cap_applied(self):
        table = make_mixed_table(n_rows=5000, n_numeric=2, n_categorical=0, seed=2)
        store = SketchStore(
            table, config=SketchStoreConfig(quantile_sample_cap=500, hyperplane_width=64)
        )
        bundle = store.column_sketches("attr_000")
        assert bundle.quantiles.count == 500


class TestMerge:
    def test_merge_column_sketches_over_partitions(self):
        table = make_mixed_table(n_rows=2000, n_numeric=3, n_categorical=1, seed=3)
        left, right = table.split(0.5, seed=0)
        config = SketchStoreConfig(hyperplane_width=64)
        store_left = SketchStore(left, config=config)
        store_right = SketchStore(right, config=config)
        merged = merge_column_sketches(
            {n: store_left.column_sketches(n) for n in table.column_names()},
            {n: store_right.column_sketches(n) for n in table.column_names()},
        )
        whole_values = table.numeric_column("attr_000").valid_values()
        assert merged["attr_000"].moments.count == whole_values.size
        assert merged["attr_000"].moments.mean() == pytest.approx(float(whole_values.mean()))
        assert merged["cat_00"].frequent.count == table.n_rows

    def test_merge_leaves_inputs_untouched(self):
        """Inputs are published snapshots: merging must copy, not mutate.

        Regression test for the in-place ``sketch_a.merge(sketch_b)`` the
        snapshot-immutability audit flagged: merging used to fold the right
        partition into the left input's sketches, corrupting any store
        still serving queries from them.
        """
        table = make_mixed_table(n_rows=1000, n_numeric=2, n_categorical=1, seed=7)
        left, right = table.split(0.5, seed=0)
        config = SketchStoreConfig(hyperplane_width=64)
        left_bundles = {
            n: SketchStore(left, config=config).column_sketches(n)
            for n in table.column_names()
        }
        right_bundles = {
            n: SketchStore(right, config=config).column_sketches(n)
            for n in table.column_names()
        }
        left_counts = {n: b.moments.count for n, b in left_bundles.items() if b.moments}
        left_means = {n: b.moments.mean() for n, b in left_bundles.items() if b.moments}
        merged = merge_column_sketches(left_bundles, right_bundles)
        for name, count in left_counts.items():
            assert left_bundles[name].moments.count == count
            assert left_bundles[name].moments.mean() == left_means[name]
            assert merged[name].moments.count > count
            assert merged[name].moments is not left_bundles[name].moments

    def test_merge_output_order_is_insertion_order_free(self):
        """Merged bundles come back in sorted column order regardless of the
        hash/insertion order of the input mappings (byte-identical
        serialization either way)."""
        table = make_mixed_table(n_rows=600, n_numeric=3, n_categorical=1, seed=9)
        left, right = table.split(0.5, seed=1)
        config = SketchStoreConfig(hyperplane_width=64)
        store_left = SketchStore(left, config=config)
        store_right = SketchStore(right, config=config)
        names = table.column_names()
        forward = {n: store_left.column_sketches(n) for n in names}
        backward = {n: store_right.column_sketches(n) for n in reversed(names)}
        merged = merge_column_sketches(forward, backward)
        assert list(merged) == sorted(names)
        flipped = merge_column_sketches(
            {n: forward[n] for n in reversed(names)},
            {n: backward[n] for n in names},
        )
        assert list(flipped) == list(merged)
