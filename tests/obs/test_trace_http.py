"""End-to-end socket tests for the trace surface.

Real TCP, real threads: requests go through admission, coalescing, the
worker pool and (for the durable tests) the group-commit journal, and
the traces served back by ``/v1/traces`` must tell exactly that story —
down to the rider waits summing to the ``rider_wait_seconds_total``
metric.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.data.datasets import make_mixed_table
from repro.ingest.maintenance import IngestConfig
from repro.obs.config import ObsConfig
from repro.server import (
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerResponseError,
    serving,
)
from repro.service import InsightRequest, Workspace


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n_rows=300, n_numeric=4, n_categorical=2, seed=17)


@pytest.fixture()
def workspace(table):
    workspace = Workspace()
    workspace.register("demo", lambda: table)
    return workspace


def _request(top_k: int = 3) -> InsightRequest:
    return InsightRequest(dataset="demo", insight_classes=("skew", "outliers"),
                          top_k=top_k)


def walk(node):
    """Flatten one span tree, depth first."""
    yield node
    for child in node["children"]:
        yield from walk(child)


def names(trace) -> set:
    return {span["name"] for span in walk(trace["root"])}


class TestRequestTraces:
    def test_every_response_names_its_trace(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                insight_trace_id = client.last_trace_id
                assert insight_trace_id
                client.healthz()
                assert client.last_trace_id
                assert client.last_trace_id != insight_trace_id

    def test_direct_insight_trace_tells_the_whole_story(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                trace = client.trace(client.last_trace_id)
        assert trace["name"] == "request"
        root = trace["root"]
        assert root["attributes"]["endpoint"] == "insights"
        assert root["attributes"]["status"] == 200
        assert root["attributes"]["dataset"] == "demo"
        # The request lifecycle across the thread handoff into the
        # workspace: the dispatched handle (a cache miss: engine
        # snapshot + pipeline) parents straight to the request root.
        assert {
            "workspace.handle", "engine.snapshot", "pipeline.execute",
        } <= names(trace)
        # An unloaded server grants the admission slot and a worker
        # thread instantly, so neither wait records a span (see
        # test_contended_admission_records_a_wait_span).
        assert "admission.wait" not in names(trace)
        assert "request.dispatch" not in names(trace)
        [handle_span] = [s for s in walk(root)
                         if s["name"] == "workspace.handle"]
        assert handle_span["attributes"]["cache"] == "miss"

    def test_contended_admission_records_a_wait_span(self, workspace):
        # With one in-flight slot, concurrent cold requests queue in
        # admission — the queued ones' traces must show the wait as a
        # synthesized admission.wait span (an unloaded grant records
        # nothing, see test_direct_insight_trace_tells_the_whole_story).
        config = ServerConfig(port=0, coalesce_window=0.0, max_in_flight=1)
        n = 3
        trace_ids: list = [None] * n
        with serving(workspace, config) as handle:
            barrier = threading.Barrier(n)

            def worker(index: int) -> None:
                with ReproClient(*handle.address, timeout=60) as client:
                    barrier.wait()
                    # Distinct top_k per worker: no cache hits, so each
                    # request holds the slot for a full pipeline run.
                    client.insights(_request(top_k=3 + index))
                    trace_ids[index] = client.last_trace_id

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ReproClient(*handle.address) as client:
                waited = [tid for tid in trace_ids
                          if "admission.wait" in names(client.trace(tid))]
        assert waited, "no queued request recorded an admission.wait span"

    def test_cache_hit_trace_skips_the_pipeline(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                client.insights(_request())
                trace = client.trace(client.last_trace_id)
        assert "pipeline.execute" not in names(trace)
        [handle_span] = [s for s in walk(trace["root"])
                         if s["name"] == "workspace.handle"]
        assert handle_span["attributes"]["cache"] == "hit"

    def test_unknown_trace_is_a_404_envelope(self, workspace):
        with serving(workspace, ServerConfig(port=0)) as handle:
            with ReproClient(*handle.address) as client:
                with pytest.raises(ServerResponseError) as excinfo:
                    client.trace("no-such-trace")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_trace"

    def test_traces_listing_filters(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                client.insights(_request(top_k=4))
                listing = client.traces(dataset="demo")
                assert len(listing["traces"]) == 2
                assert all(t["dataset"] == "demo"
                           for t in listing["traces"])
                limited = client.traces(dataset="demo", limit=1)
                assert len(limited["traces"]) == 1
                assert listing["tracing"]["enabled"] is True
                nothing = client.traces(dataset="absent")
                assert nothing["traces"] == []
                raw = client.request_raw("GET", "/v1/traces?limit=zero")
                assert raw.status == 400

    def test_tracing_can_be_disabled_per_server(self, workspace):
        config = ServerConfig(port=0, obs=ObsConfig(enabled=False))
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                assert client.last_trace_id is None
                assert client.traces()["traces"] == []
                assert client.healthz()["config"]["obs"]["enabled"] is False


class TestCoalescedBatchTrace:
    def test_batch_trace_riders_match_the_metric(self, workspace):
        workspace.engine("demo")  # prebuild: requests coalesce tightly
        config = ServerConfig(port=0, coalesce_window=0.25,
                              coalesce_max_batch=16)
        n_clients = 3
        barrier = threading.Barrier(n_clients)
        request_trace_ids: dict[int, str] = {}

        with serving(workspace, config) as handle:
            def fire(index: int) -> None:
                with ReproClient(*handle.address) as client:
                    barrier.wait()
                    client.insights(_request(top_k=index + 1))
                    request_trace_ids[index] = client.last_trace_id

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            with ReproClient(*handle.address) as client:
                listing = client.traces()["traces"]
                batches = [client.trace(t["trace_id"]) for t in listing
                           if t["name"] == "coalesce.batch"]
                metrics = client.metrics()

        assert batches, "no coalesce.batch trace was recorded"
        riders = [span for batch in batches for span in walk(batch["root"])
                  if span["name"] == "coalesce.rider"]
        assert len(riders) == n_clients
        # Every rider answers to the request trace its client was handed.
        assert ({r["attributes"]["request_trace_id"] for r in riders}
                == set(request_trace_ids.values()))
        # The batch really batched (the barrier packed one window) and
        # each batch dispatched exactly once.
        assert max(b["root"]["attributes"]["size"] for b in batches) >= 2
        for batch in batches:
            dispatches = [s for s in walk(batch["root"])
                          if s["name"] == "coalesce.dispatch"]
            assert len(dispatches) == 1
            assert [s["name"] for s in walk(batch["root"])].count(
                "workspace.handle") >= 1
        # The traced rider waits and the aggregate metric are two views
        # of the same measurements.
        total_wait = sum(
            sum(r["attributes"]["wait_seconds"]
                for r in walk(batch["root"])
                if r["name"] == "coalesce.rider")
            for batch in batches
        )
        metric = metrics["server"]["coalesce"]["rider_wait_seconds_total"]
        assert total_wait == pytest.approx(metric, rel=1e-9)


class TestDurableAppendTrace:
    def test_group_commit_append_trace_carries_fsync_role(self, tmp_path,
                                                          table):
        workspace = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(group_commit=True, max_group_delay=0.005),
        )
        workspace.register("demo", lambda: table)
        delta = make_mixed_table(n_rows=10, n_numeric=4, n_categorical=2,
                                 seed=18).to_records()
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("demo", delta)
                listing = client.traces()["traces"]
                appends = [client.trace(t["trace_id"]) for t in listing
                           if t["name"] == "workspace.append"]
        assert len(appends) == 1
        trace = appends[0]
        assert trace["dataset"] == "demo"
        spans = {s["name"]: s for s in walk(trace["root"])}
        assert spans["journal.append"]["attributes"]["n_rows"] == 10
        # The group-commit pipeline acknowledged this append with a
        # named fsync role — the ticket wait is its own span.
        role = spans["journal.commit_wait"]["attributes"]["fsync_role"]
        assert role in {"leader", "follower", "covered"}
        assert trace["root"]["attributes"]["applied"] in {
            "deferred", "delta_merge", "rebuild"
        }

    def test_inline_fsync_is_labelled_on_the_journal_span(self, tmp_path,
                                                          table):
        workspace = Workspace(data_dir=str(tmp_path))  # no commit pipeline
        workspace.register("demo", lambda: table)
        delta = make_mixed_table(n_rows=5, n_numeric=4, n_categorical=2,
                                 seed=19).to_records()
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("demo", delta)
                listing = client.traces()["traces"]
                appends = [client.trace(t["trace_id"]) for t in listing
                           if t["name"] == "workspace.append"]
        spans = {s["name"]: s for s in walk(appends[0]["root"])}
        assert spans["journal.append"]["attributes"]["fsync_role"] == "inline"
        assert "journal.commit_wait" not in spans


class TestRuntimeConfigAndEvents:
    def test_slow_threshold_is_adjustable_over_http(self, workspace, caplog):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                applied = client.set_slow_threshold(0.0)
                assert applied["slow_ms"] == 0.0
                with caplog.at_level(logging.INFO,
                                     logger="repro.obs.events"):
                    client.insights(_request())
                with pytest.raises(ServerResponseError) as excinfo:
                    client.set_slow_threshold(-5)
                assert excinfo.value.status == 400
                raw = client.request_raw("POST", "/v1/traces:config",
                                         {"nope": 1})
                assert raw.status == 400
        events = [json.loads(r.message) for r in caplog.records
                  if '"slow_request"' in r.message]
        assert events, "threshold 0 must flag every request as slow"
        assert events[0]["name"] == "request"
        assert events[0]["trace_id"]

    def test_metrics_document_and_prometheus_expose_tracing(self, workspace):
        config = ServerConfig(port=0, coalesce_window=0.0)
        with serving(workspace, config) as handle:
            with ReproClient(*handle.address) as client:
                client.insights(_request())
                document = client.metrics()
                text = client.metrics_text()
        obs = document["obs"]
        assert obs["tracing"]["traces_recorded"] >= 1
        spans = obs["spans"]
        assert "request" in spans and "workspace.handle" in spans
        for snapshot in spans.values():
            assert {"count", "sum_seconds", "max_seconds", "p50_seconds",
                    "p95_seconds", "p99_seconds", "bounds",
                    "buckets"} <= set(snapshot)
        latency = document["server"]["latency"]
        assert "p99_seconds" in latency
        assert latency["bounds"]
        assert "repro_tracing_enabled 1" in text
        assert 'repro_span_duration_seconds_count{span="request"}' in text
        assert "repro_coalesce_rider_wait_seconds_total" in text
