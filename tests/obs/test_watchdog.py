"""Watchdog units: loop lag, rebuild stalls, lock waits.

Thresholds are driven directly (``observe``, short deadlines, manual
contention) rather than by provoking a genuinely degraded process, so
every trip asserted here is deterministic.
"""

from __future__ import annotations

import json
import logging
import threading
import time

import pytest

from repro.obs.watchdog import (
    LockWaitWatchdog,
    LoopLagMonitor,
    StallDetector,
    install_lock_wait,
    uninstall_lock_wait,
)


def _events(caplog) -> list[dict]:
    return [json.loads(record.message) for record in caplog.records]


class TestLoopLagMonitor:
    def test_below_threshold_samples_without_tripping(self, caplog):
        monitor = LoopLagMonitor(threshold_ms=100.0)
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            monitor.observe(0.010)
            monitor.observe(0.050)
        snap = monitor.snapshot()
        assert snap["samples"] == 2
        assert snap["trips"] == 0
        assert snap["last_lag_seconds"] == 0.050
        assert snap["max_lag_seconds"] == 0.050
        assert caplog.records == []

    def test_lag_past_threshold_trips_and_emits(self, caplog):
        monitor = LoopLagMonitor(threshold_ms=100.0)
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            monitor.observe(0.250)
        assert monitor.snapshot()["trips"] == 1
        [event] = _events(caplog)
        assert event["event"] == "event_loop_lag"
        assert event["lag_ms"] == 250.0
        assert event["threshold_ms"] == 100.0

    def test_zero_threshold_never_trips(self):
        monitor = LoopLagMonitor(threshold_ms=0.0)
        monitor.observe(10.0)
        snap = monitor.snapshot()
        assert snap["samples"] == 1
        assert snap["trips"] == 0

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            LoopLagMonitor(interval=0.0)


class TestStallDetector:
    def test_job_past_deadline_fires(self, caplog):
        detector = StallDetector(deadline_seconds=0.05)
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            token = detector.watch("demo", kind="background_rebuild")
            deadline = time.monotonic() + 5.0
            while (detector.snapshot()["trips"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        snap = detector.snapshot()
        assert snap["trips"] == 1
        assert snap["stalled"] == ["demo"]
        [event] = _events(caplog)
        assert event["event"] == "rebuild_stall"
        assert event["name"] == "demo"
        assert event["kind"] == "background_rebuild"
        assert event["elapsed_seconds"] >= 0.05
        # Late completion clears the stalled listing; the trip stays.
        token.done()
        snap = detector.snapshot()
        assert snap["active"] == 0
        assert snap["stalled"] == []
        assert snap["trips"] == 1

    def test_completion_before_deadline_disarms(self, caplog):
        detector = StallDetector(deadline_seconds=0.10)
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            token = detector.watch("quick")
            token.done()
            time.sleep(0.20)
        snap = detector.snapshot()
        assert snap["trips"] == 0
        assert snap["watched_total"] == 1
        assert caplog.records == []

    def test_zero_deadline_disables(self):
        detector = StallDetector(deadline_seconds=0.0)
        token = detector.watch("demo")
        token.done()  # the shared no-op token: nothing to cancel
        assert detector.snapshot()["watched_total"] == 0


class TestLockWaitWatchdog:
    def test_contended_wait_is_counted(self):
        watchdog = LockWaitWatchdog(threshold_ms=20.0)
        from repro.obs.watchdog import _WaitTimedLock

        lock = _WaitTimedLock(threading.Lock(), watchdog)
        release = threading.Event()

        def holder():
            with lock:
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        while not lock.locked():
            time.sleep(0.001)
        timer = threading.Timer(0.08, release.set)
        timer.start()
        with lock:
            pass
        thread.join()
        snap = watchdog.snapshot()
        # The wait happened outside any declared lock site, so it is
        # counted as unattributed rather than reported as a trip.
        assert snap["unattributed"] == 1
        assert snap["trips"] == 0

    def test_uncontended_acquire_records_nothing(self):
        watchdog = LockWaitWatchdog(threshold_ms=1.0)
        from repro.obs.watchdog import _WaitTimedLock

        lock = _WaitTimedLock(threading.Lock(), watchdog)
        with lock:
            pass
        snap = watchdog.snapshot()
        assert snap["trips"] == 0
        assert snap["unattributed"] == 0

    def test_install_patches_and_uninstall_restores(self):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        watchdog = LockWaitWatchdog(threshold_ms=50.0)
        try:
            watchdog.install()
            assert threading.Lock is not original_lock
            lock = threading.Lock()
            with lock:  # the proxy still behaves like a lock
                assert lock.locked()
            assert not lock.locked()
        finally:
            watchdog.uninstall()
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            LockWaitWatchdog(threshold_ms=0.0)

    def test_install_lock_wait_zero_is_disabled(self):
        assert install_lock_wait(0.0) is None
        uninstall_lock_wait()  # idempotent when nothing installed


class TestWorkspaceIntegration:
    def test_workspace_wires_configured_deadline(self):
        from repro.obs.config import ObsConfig
        from repro.service import Workspace

        workspace = Workspace(obs=ObsConfig(rebuild_deadline_s=7.5))
        try:
            watchdogs = workspace.debug_info()["watchdogs"]
            assert watchdogs["rebuild_stall"]["deadline_seconds"] == 7.5
            assert "lock_wait" not in watchdogs  # opt-in, default off
        finally:
            workspace.close()

    def test_background_rebuild_is_watched_and_completes(self):
        from repro.data.datasets import make_mixed_table
        from repro.ingest.maintenance import IngestConfig
        from repro.service import Workspace

        table = make_mixed_table(n_rows=300, n_numeric=2, n_categorical=1,
                                 seed=5)
        workspace = Workspace(
            ingest=IngestConfig(rebuild_fraction=0.01, background_rebuild=True)
        )
        try:
            workspace.register("demo", lambda: table)
            workspace.engine("demo")  # build: appends can delta-merge
            rows = make_mixed_table(n_rows=60, n_numeric=2, n_categorical=1,
                                    seed=6).to_records()
            workspace.append("demo", rows)
            assert workspace.wait_for_rebuilds(timeout=30.0)
            snap = workspace.debug_info()["watchdogs"]["rebuild_stall"]
            assert snap["watched_total"] >= 1
            assert snap["active"] == 0
            assert snap["trips"] == 0
        finally:
            workspace.close()
