"""Unit tests for :mod:`repro.obs.resources`.

Cost recorders (counter accumulation, nesting-safe CPU windows, the
ambient thread-local channel and its ``carry_cost`` propagation to
worker threads) and the workspace-side :class:`CostAggregator` (rolling
per-key windows checked against a brute-force recompute, monotone
lifetime totals, the top-K ring) — plus the ObsConfig knob surface the
subsystem is configured through.
"""

from __future__ import annotations

import argparse
import threading
import time

import pytest

from repro.obs.config import ObsConfig
from repro.obs.resources import (
    CostAggregator,
    CostRecorder,
    attach_recorder,
    carry_cost,
    current_recorder,
    record_cache_probe,
    record_candidates,
    record_journal_bytes,
    record_rows,
    record_sketch_probe,
)


def _burn_cpu(seconds: float = 0.02) -> int:
    """Spin the CPU for roughly ``seconds`` of *thread* time."""
    deadline = time.thread_time() + seconds
    acc = 0
    while time.thread_time() < deadline:
        acc += 1
    return acc


class TestCostRecorder:
    def test_counters_accumulate_and_snapshot(self):
        recorder = CostRecorder()
        recorder.add("rows_scanned", 100)
        recorder.add("rows_scanned", 50)
        recorder.add("candidates_enumerated", 12)
        recorder.add("candidates_pruned", 4)
        recorder.add("sketch_probes", 3)
        recorder.add("cache_hits")
        recorder.add("cache_misses")
        recorder.add("bytes_journaled", 2048)
        snapshot = recorder.finish().snapshot()
        assert snapshot["rows_scanned"] == 150
        assert snapshot["candidates_enumerated"] == 12
        assert snapshot["candidates_pruned"] == 4
        assert snapshot["sketch_probes"] == 3
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache_misses"] == 1
        assert snapshot["bytes_journaled"] == 2048
        assert snapshot["wall_seconds"] >= 0.0
        # Every declared counter appears, even untouched ones.
        for name in CostRecorder.COUNTERS:
            assert name in snapshot

    def test_cpu_window_measures_thread_cpu(self):
        recorder = CostRecorder()
        with recorder.cpu_window():
            _burn_cpu(0.02)
        assert recorder.cpu_seconds >= 0.015

    def test_nested_window_on_same_thread_does_not_double_bill(self):
        recorder = CostRecorder()
        before = time.thread_time()
        with recorder.cpu_window():
            with recorder.cpu_window():  # serial executor, inline shard
                _burn_cpu(0.02)
        external = time.thread_time() - before
        # Double billing would record ~2x the externally measured CPU.
        assert recorder.cpu_seconds <= external * 1.5 + 0.005

    def test_windows_on_distinct_threads_sum(self):
        recorder = CostRecorder()

        def shard():
            with recorder.cpu_window():
                _burn_cpu(0.02)

        threads = [threading.Thread(target=shard) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Two shards at >= 20ms thread-CPU each.
        assert recorder.cpu_seconds >= 0.03


class TestAmbientChannel:
    def test_helpers_are_noops_without_a_recorder(self):
        assert current_recorder() is None
        record_rows(10)
        record_sketch_probe()
        record_candidates(5, 2)
        record_journal_bytes(100)
        record_cache_probe(True)  # nothing to assert: must not raise

    def test_attach_records_and_restores(self):
        recorder = CostRecorder()
        with attach_recorder(recorder):
            assert current_recorder() is recorder
            record_rows(7)
            record_cache_probe(False)
        assert current_recorder() is None
        assert recorder.rows_scanned == 7
        assert recorder.cache_misses == 1

    def test_attach_none_is_a_noop(self):
        with attach_recorder(None) as attached:
            assert attached is None
            assert current_recorder() is None

    def test_carry_cost_identity_without_recorder(self):
        def fn():
            return 42

        assert carry_cost(fn) is fn

    def test_carry_cost_bills_worker_threads(self):
        recorder = CostRecorder()
        results = []

        def shard():
            record_rows(25)
            _burn_cpu(0.02)
            results.append(current_recorder())

        with attach_recorder(recorder):
            carried = carry_cost(shard)
        thread = threading.Thread(target=carried)
        thread.start()
        thread.join()
        assert results == [recorder]
        assert recorder.rows_scanned == 25
        assert recorder.cpu_seconds >= 0.015


class TestCostAggregator:
    @staticmethod
    def _snapshot(i: int) -> dict:
        return {
            "cpu_seconds": float(i), "wall_seconds": float(i) * 2,
            "rows_scanned": i * 10, "candidates_enumerated": i,
            "candidates_pruned": 0, "sketch_probes": i,
            "cache_hits": 0, "cache_misses": 1, "bytes_journaled": 0,
        }

    def test_rolling_window_matches_brute_force_recompute(self):
        agg = CostAggregator(window=4)
        snapshots = [self._snapshot(i) for i in range(10)]
        for snap in snapshots:
            agg.record(snap, datasets=("demo",))
        window = agg.snapshot()["datasets"]["demo"]
        last4 = snapshots[-4:]
        assert window["requests"] == 4
        assert window["requests_total"] == 10
        assert window["cpu_seconds"] == pytest.approx(
            sum(s["cpu_seconds"] for s in last4))
        assert window["rows_scanned"] == sum(s["rows_scanned"] for s in last4)

    def test_totals_are_lifetime_monotone(self):
        agg = CostAggregator(window=2)
        for i in range(6):
            agg.record(self._snapshot(i), datasets=("demo",))
        totals = agg.snapshot()["totals"]
        assert totals["rows_scanned"] == sum(i * 10 for i in range(6))
        assert totals["cpu_seconds"] == pytest.approx(sum(range(6)))
        assert agg.snapshot()["requests_total"] == 6

    def test_multi_key_request_counts_once_globally(self):
        agg = CostAggregator(window=8)
        agg.record(self._snapshot(3), datasets=("a", "b"),
                   classes=("skew", "outliers"))
        snap = agg.snapshot()
        assert snap["requests_total"] == 1
        assert snap["datasets"]["a"]["requests"] == 1
        assert snap["datasets"]["b"]["requests"] == 1
        assert snap["classes"]["skew"]["requests"] == 1
        assert snap["classes"]["outliers"]["requests"] == 1
        assert snap["totals"]["rows_scanned"] == 30

    def test_top_requests_sorted_by_cpu(self):
        agg = CostAggregator(window=8)
        for cpu in (1.0, 5.0, 3.0):
            snap = self._snapshot(0)
            snap["cpu_seconds"] = cpu
            agg.record(snap, datasets=("demo",), trace_id=f"t{cpu}")
        top = agg.top_requests(2)
        assert [entry["cpu_seconds"] for entry in top] == [5.0, 3.0]
        assert top[0]["trace_id"] == "t5.0"
        assert top[0]["datasets"] == ["demo"]
        # snapshot(top_k=...) embeds the same listing.
        assert agg.snapshot(top_k=1)["top_requests"][0]["cpu_seconds"] == 5.0
        assert "top_requests" not in agg.snapshot()

    def test_forget_dataset_drops_window_keeps_totals(self):
        agg = CostAggregator(window=4)
        agg.record(self._snapshot(2), datasets=("gone",))
        agg.forget_dataset("gone")
        snap = agg.snapshot()
        assert "gone" not in snap["datasets"]
        assert snap["requests_total"] == 1
        assert snap["totals"]["rows_scanned"] == 20

    def test_cpu_histogram_counts_every_request(self):
        agg = CostAggregator(window=4)
        for i in range(5):
            agg.record(self._snapshot(i), datasets=("demo",))
        assert agg.snapshot()["cpu_seconds_histogram"]["count"] == 5

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            CostAggregator(window=0)


class TestObsConfigKnobs:
    def test_env_round_trip(self):
        config = ObsConfig.from_env({
            "REPRO_OBS_RESOURCES_ENABLED": "false",
            "REPRO_OBS_COST_WINDOW": "64",
            "REPRO_OBS_DEBUG_TOP_K": "5",
            "REPRO_OBS_LOOP_LAG_MS": "250",
            "REPRO_OBS_REBUILD_DEADLINE_S": "12.5",
            "REPRO_OBS_LOCK_WAIT_MS": "80",
        })
        assert config.resources_enabled is False
        assert config.cost_window == 64
        assert config.debug_top_k == 5
        assert config.loop_lag_ms == 250.0
        assert config.rebuild_deadline_s == 12.5
        assert config.lock_wait_ms == 80.0

    def test_cli_round_trip(self):
        parser = argparse.ArgumentParser()
        ObsConfig.add_cli_arguments(parser, base=ObsConfig())
        args = parser.parse_args([
            "--obs-resources-enabled", "no",
            "--obs-cost-window", "32",
            "--obs-debug-top-k", "3",
            "--obs-loop-lag-ms", "150",
            "--obs-rebuild-deadline-s", "9",
            "--obs-lock-wait-ms", "40",
        ])
        config = ObsConfig.from_args(args)
        assert config.resources_enabled is False
        assert config.cost_window == 32
        assert config.debug_top_k == 3
        assert config.loop_lag_ms == 150.0
        assert config.rebuild_deadline_s == 9.0
        assert config.lock_wait_ms == 40.0

    @pytest.mark.parametrize("kwargs", [
        {"cost_window": 0},
        {"debug_top_k": -1},
        {"loop_lag_ms": -1.0},
        {"rebuild_deadline_s": -1.0},
        {"lock_wait_ms": -0.5},
    ])
    def test_validation_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ObsConfig(**kwargs)
