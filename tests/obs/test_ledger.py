"""The memory ledger against its recursive-walk oracle.

The ledger's incremental counters (re-sized only at mutation points)
must stay within tolerance of :func:`repro.obs.ledger.deep_sizeof` —
a full recursive ``getsizeof`` walk — after append/rebuild/eviction
churn, and the on-disk rows must match ``stat()`` exactly.  This is
the PR's acceptance criterion for the ``/v1/debug`` memory surface.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np
import pytest

from repro.data.datasets import make_mixed_table
from repro.obs.ledger import MemoryLedger, deep_sizeof, table_bytes
from repro.service import InsightRequest, Workspace


class TestMemoryLedger:
    def test_set_get_add(self):
        ledger = MemoryLedger()
        ledger.set("table", 1000, dataset="demo")
        ledger.add("table", 500, dataset="demo")
        assert ledger.get("table", dataset="demo") == 1500
        assert ledger.get("table", dataset="other") == 0

    def test_snapshot_aggregates_components_and_datasets(self):
        ledger = MemoryLedger()
        ledger.set("table", 100, dataset="a")
        ledger.set("table", 200, dataset="b")
        ledger.set("sketches", 50, dataset="a")
        snap = ledger.snapshot()
        assert snap["components"] == {"sketches": 50, "table": 300}
        assert snap["datasets"] == {"a": {"sketches": 50, "table": 100},
                                    "b": {"table": 200}}
        assert snap["total_bytes"] == 350

    def test_snapshot_merges_extra_components(self):
        ledger = MemoryLedger()
        ledger.set("table", 100, dataset="a")
        snap = ledger.snapshot(extra={"result_cache": 40, "trace_ring": 10})
        assert snap["components"]["result_cache"] == 40
        assert snap["components"]["trace_ring"] == 10
        assert snap["total_bytes"] == 150

    def test_forget_dataset_drops_every_row(self):
        ledger = MemoryLedger()
        ledger.set("table", 100, dataset="gone")
        ledger.set("sketches", 50, dataset="gone")
        ledger.set("table", 7, dataset="kept")
        ledger.forget_dataset("gone")
        snap = ledger.snapshot()
        assert snap["datasets"] == {"kept": {"table": 7}}
        assert snap["total_bytes"] == 7


class TestDeepSizeof:
    def test_counts_a_shared_base_once(self):
        base = np.zeros((1000, 4))
        views = [base[:, i] for i in range(4)]
        total = deep_sizeof(views)
        assert total >= base.nbytes
        assert total < base.nbytes * 2

    def test_owning_array_not_double_counted(self):
        array = np.zeros(10_000, dtype=np.float64)
        total = deep_sizeof(array)
        assert array.nbytes <= total < array.nbytes * 1.1

    def test_skips_machinery(self):
        obj = {"lock": threading.Lock(), "fn": deep_sizeof, "n": 1}
        assert deep_sizeof(obj) < 1000

    def test_cycle_safe(self):
        node: dict = {"n": 1}
        node["self"] = node
        assert deep_sizeof(node) > 0


class TestTableBytesOracle:
    def test_table_bytes_within_tolerance_of_walk(self):
        table = make_mixed_table(n_rows=4000, n_numeric=4,
                                 n_categorical=2, seed=3)
        incremental = table_bytes(table)
        oracle = deep_sizeof(table)
        # The incremental sizer skips constant Python metadata (Field
        # objects, dicts); the numpy payload dominates at this size.
        assert incremental == pytest.approx(oracle, rel=0.10)


class TestWorkspaceLedgerUnderChurn:
    """The acceptance criterion: ledger vs oracle after real churn."""

    @pytest.fixture()
    def workspace(self, tmp_path):
        table = make_mixed_table(n_rows=2000, n_numeric=4,
                                 n_categorical=2, seed=11)
        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("demo", lambda: table)
        yield workspace
        workspace.close()

    @staticmethod
    def _churn(workspace: Workspace) -> None:
        delta = make_mixed_table(n_rows=400, n_numeric=4, n_categorical=2,
                                 seed=12).to_records()
        for start in range(0, 1200, 400):
            workspace.append("demo", delta[:200])
            workspace.handle(InsightRequest(
                dataset="demo", insight_classes=("skew", "outliers"),
                top_k=3 + start // 400))
        workspace.rebuild("demo")
        workspace.handle(InsightRequest(dataset="demo",
                                        insight_classes=("skew",), top_k=2))

    def test_table_row_tracks_the_oracle(self, workspace):
        self._churn(workspace)
        memory = workspace.debug_info()["memory"]
        row = memory["datasets"]["demo"]["table"]
        oracle = deep_sizeof(workspace.table("demo"))
        assert row == pytest.approx(oracle, rel=0.12)

    def test_sketches_row_is_the_stores_payload(self, workspace):
        self._churn(workspace)
        memory = workspace.debug_info()["memory"]
        row = memory["datasets"]["demo"]["sketches"]
        store = workspace.engine("demo").store
        assert row == store.memory_bytes()
        # The payload accounting is a documented lower bound on the
        # full allocation walk (it excludes Python object overhead).
        assert 0 < row <= deep_sizeof(store)

    def test_disk_rows_match_stat_exactly(self, workspace, tmp_path):
        self._churn(workspace)
        workspace.flush("demo")
        memory = workspace.debug_info()["memory"]
        demo = memory["datasets"]["demo"]
        directory = Path(tmp_path, "demo")
        journal = sum(p.stat().st_size
                      for p in directory.glob("journal-*.seg"))
        snapshots = sum(p.stat().st_size
                        for p in directory.glob("snapshot-*"))
        assert demo["journal_disk"] == journal
        assert demo["snapshot_disk"] == snapshots
        assert journal > 0

    def test_result_cache_row_tracks_cached_values(self, workspace):
        self._churn(workspace)
        cache = workspace.cache
        reported = workspace.debug_info()["memory"]["components"][
            "result_cache"]
        assert reported == cache.info()["bytes"]
        oracle = sum(deep_sizeof(cache.get(key)) for key in cache.keys())
        assert reported == pytest.approx(oracle, rel=0.25)
        # Eviction churn: invalidation returns the counter to zero.
        workspace.invalidate("demo")
        assert workspace.debug_info()["memory"]["components"][
            "result_cache"] == 0

    def test_total_is_the_component_sum(self, workspace):
        self._churn(workspace)
        memory = workspace.debug_info()["memory"]
        assert memory["total_bytes"] == sum(memory["components"].values())

    def test_disabled_resources_keep_the_ledger_empty(self, tmp_path):
        from repro.obs.config import ObsConfig

        table = make_mixed_table(n_rows=200, n_numeric=2, n_categorical=1,
                                 seed=13)
        workspace = Workspace(obs=ObsConfig(resources_enabled=False))
        try:
            workspace.register("demo", lambda: table)
            workspace.handle(InsightRequest(dataset="demo",
                                            insight_classes=("skew",),
                                            top_k=2))
            memory = workspace.debug_info()["memory"]
            assert memory["datasets"] == {}
            assert workspace.debug_info()["costs"]["requests_total"] == 0
        finally:
            workspace.close()
