"""Unit tests for :mod:`repro.obs`: spans, the ring, drains, context.

Everything time-sensitive runs against an injected fake clock so
durations (and therefore filters, histograms and slow events) are
exact, not sleep-based.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.core.executor import ExecutorConfig, ParallelExecutor
from repro.obs.config import ObsConfig
from repro.obs.events import emit
from repro.obs.tracer import (
    NOOP_SPAN,
    SPAN_BUCKETS,
    Tracer,
    bind,
    carry_current,
    current_span,
    obs_span,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_tracer(clock: FakeClock, **overrides) -> Tracer:
    config = ObsConfig(**overrides)
    return Tracer(config, wall_clock=lambda: 1_000.0, clock=clock)


# ---------------------------------------------------------------------------
# Span lifecycle and ambient context
# ---------------------------------------------------------------------------
class TestSpanLifecycle:
    def test_nested_with_spans_parent_via_ambient(self, clock):
        tracer = make_tracer(clock)
        with tracer.span("outer", dataset="oecd"):
            clock.advance(0.010)
            with tracer.span("inner"):
                clock.advance(0.005)
        [summary] = tracer.traces()
        assert summary["name"] == "outer"
        assert summary["dataset"] == "oecd"
        assert summary["n_spans"] == 2
        trace = tracer.trace(summary["trace_id"])
        assert trace["root"]["name"] == "outer"
        [child] = trace["root"]["children"]
        assert child["name"] == "inner"
        assert child["duration_ms"] == pytest.approx(5.0)
        assert trace["duration_ms"] == pytest.approx(15.0)
        assert trace["start_unix"] == 1_000.0

    def test_ambient_is_clean_after_exit(self, clock):
        tracer = make_tracer(clock)
        with tracer.span("root"):
            assert current_span() is not None
        assert current_span() is None

    def test_exception_records_error_attribute(self, clock):
        tracer = make_tracer(clock)
        with pytest.raises(ValueError):
            with tracer.span("root"):
                raise ValueError("boom")
        trace = tracer.trace(tracer.traces()[0]["trace_id"])
        assert trace["root"]["attributes"]["error"] == "ValueError"

    def test_end_is_idempotent(self, clock):
        tracer = make_tracer(clock)
        span = tracer.start_span("request")
        try:
            clock.advance(0.020)
        finally:
            span.end()
        clock.advance(5.0)
        span.end()  # second end must not re-record or re-time
        assert tracer.stats()["traces_recorded"] == 1
        [summary] = tracer.traces()
        assert summary["duration_ms"] == pytest.approx(20.0)

    def test_start_span_never_touches_ambient(self, clock):
        tracer = make_tracer(clock)
        span = tracer.start_span("request")
        try:
            assert current_span() is None
        finally:
            span.end()

    def test_explicit_parent_wins_over_ambient(self, clock):
        tracer = make_tracer(clock)
        root = tracer.start_span("request")
        try:
            with tracer.span("unrelated"):
                child = tracer.start_span("stage", parent=root)
                child.end()
        finally:
            root.end()
        trace = tracer.trace(root.trace_id)
        names = [node["name"] for node in trace["root"]["children"]]
        assert names == ["stage"]

    def test_disabled_tracer_hands_out_the_noop(self, clock):
        tracer = make_tracer(clock, enabled=False)
        assert tracer.span("a") is NOOP_SPAN
        assert tracer.start_span("b") is NOOP_SPAN
        with tracer.span("a") as span:
            span.set_attribute("k", "v")
        assert tracer.traces() == []
        assert tracer.stats()["enabled"] is False

    def test_noop_parent_starts_a_fresh_root(self, clock):
        tracer = make_tracer(clock)
        span = tracer.start_span("request", parent=NOOP_SPAN)
        span.end()
        assert tracer.traces()[0]["name"] == "request"

    def test_record_span_synthesizes_a_completed_child(self, clock):
        # The after-the-fact span: timed with tracer.clock(), recorded
        # only when the caller decides the elapsed time is worth keeping.
        tracer = make_tracer(clock)
        root = tracer.start_span("request")
        try:
            started = tracer.clock()
            clock.advance(0.050)
            tracer.record_span("admission.wait", root, started)
        finally:
            root.end()
        trace = tracer.trace(root.trace_id)
        [wait] = trace["root"]["children"]
        assert wait["name"] == "admission.wait"
        assert wait["duration_ms"] == pytest.approx(50.0)
        assert wait["start_ms"] == pytest.approx(0.0)

    def test_record_span_needs_a_real_parent(self, clock):
        # Synthesized spans never root a trace: no parent (or a no-op
        # parent, or a disabled tracer) records nothing.
        tracer = make_tracer(clock)
        tracer.record_span("admission.wait", None, tracer.clock())
        tracer.record_span("admission.wait", NOOP_SPAN, tracer.clock())
        assert tracer.stats()["spans_recorded"] == 0
        disabled = make_tracer(clock, enabled=False)
        root = disabled.start_span("request")
        disabled.record_span("admission.wait", root, disabled.clock())
        assert disabled.stats()["spans_recorded"] == 0


# ---------------------------------------------------------------------------
# The bounded ring
# ---------------------------------------------------------------------------
class TestRing:
    def test_capacity_bound_evicts_oldest(self, clock):
        tracer = make_tracer(clock, ring_capacity=4)
        ids = []
        for i in range(10):
            with tracer.span("request", index=i):
                clock.advance(0.001)
            ids.append(tracer.traces(limit=1)[0]["trace_id"])
        held = tracer.traces()
        assert len(held) == 4
        # Newest first, and exactly the last four survive.
        assert [t["trace_id"] for t in held] == list(reversed(ids[-4:]))
        assert tracer.trace(ids[0]) is None  # evicted
        assert tracer.trace(ids[-1]) is not None
        stats = tracer.stats()
        assert stats["traces_recorded"] == 10
        assert stats["traces_held"] == 4

    def test_abandoned_traces_hold_no_tracer_state(self, clock):
        tracer = make_tracer(clock, ring_capacity=1)
        # Roots that never complete, each with one finished child.  The
        # completed children land in their trace's own bucket, which the
        # tracer holds no reference to — nothing is recorded, nothing
        # accumulates, and the abandoned trace GCs with its spans.
        for _ in range(6):
            root = tracer.start_span("stuck")
            child = tracer.start_span("stage", parent=root)
            child.end()
        with tracer.span("healthy"):
            clock.advance(0.001)
        stats = tracer.stats()
        assert stats["traces_recorded"] == 1
        assert stats["spans_recorded"] == 1
        assert [t["name"] for t in tracer.traces()] == ["healthy"]

    def test_configure_resizes_ring_and_keeps_newest(self, clock):
        tracer = make_tracer(clock, ring_capacity=8)
        for i in range(8):
            with tracer.span("request", index=i):
                pass
        tracer.configure(ObsConfig(ring_capacity=2))
        held = tracer.traces()
        assert len(held) == 2
        # The two newest survive the resize.
        indices = [tracer.trace(t["trace_id"])["root"]["attributes"]["index"]
                   for t in held]
        assert indices == [7, 6]
        assert tracer.stats()["ring_capacity"] == 2

    def test_set_slow_ms_validates(self, clock):
        tracer = make_tracer(clock)
        assert tracer.set_slow_ms(10.0) == 10.0
        with pytest.raises(ValueError):
            tracer.set_slow_ms(-1)


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------
class TestTraceFilters:
    @pytest.fixture
    def tracer(self, clock):
        tracer = make_tracer(clock)
        for dataset, seconds in (
            ("oecd", 0.100), ("imdb", 0.300), ("oecd", 0.300),
        ):
            with tracer.span("request", dataset=dataset):
                clock.advance(seconds)
        return tracer

    def test_dataset_filter(self, tracer):
        assert [t["dataset"] for t in tracer.traces(dataset="oecd")] == [
            "oecd", "oecd"
        ]

    def test_min_duration_filter(self, tracer):
        slow = tracer.traces(min_duration_ms=200.0)
        assert len(slow) == 2
        assert all(t["duration_ms"] >= 200.0 for t in slow)

    def test_limit_applies_after_filters(self, tracer):
        limited = tracer.traces(dataset="oecd", limit=1)
        assert len(limited) == 1
        # Newest matching trace, not newest overall.
        assert limited[0]["duration_ms"] == pytest.approx(300.0)


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------
class TestHistograms:
    def test_per_span_name_schema(self, clock):
        tracer = make_tracer(clock)
        for seconds in (0.004, 0.004, 0.080):
            with tracer.span("request"):
                clock.advance(seconds)
        histograms = tracer.histograms()
        snapshot = histograms["request"]
        assert snapshot["count"] == 3
        assert snapshot["sum_seconds"] == pytest.approx(0.088)
        assert snapshot["max_seconds"] == pytest.approx(0.080)
        assert snapshot["p50_seconds"] == 0.005
        assert snapshot["p99_seconds"] == 0.1
        assert snapshot["bounds"] == list(SPAN_BUCKETS)
        assert snapshot["buckets"]["le_0.005"] == 2
        assert snapshot["buckets"]["le_inf"] == 0

    def test_child_spans_feed_their_own_series(self, clock):
        tracer = make_tracer(clock)
        with tracer.span("request"):
            with tracer.span("engine.build"):
                clock.advance(0.050)
        assert set(tracer.histograms()) == {"engine.build", "request"}


# ---------------------------------------------------------------------------
# Threads: lock-free buffers, drains, context handoff
# ---------------------------------------------------------------------------
class TestThreads:
    def test_eight_thread_drain_is_exact(self, clock):
        tracer = make_tracer(clock, ring_capacity=512)
        threads, per_thread, children = 8, 25, 3
        barrier = threading.Barrier(threads)
        errors: list[BaseException] = []

        def work() -> None:
            try:
                barrier.wait()
                for _ in range(per_thread):
                    with tracer.span("request"):
                        for _ in range(children):
                            with tracer.span("stage"):
                                pass
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert errors == []
        stats = tracer.stats()
        assert stats["traces_recorded"] == threads * per_thread
        assert stats["spans_recorded"] == threads * per_thread * (children + 1)
        assert all(
            t["n_spans"] == children + 1 for t in tracer.traces(limit=200)
        )

    def test_executor_map_reparents_worker_spans(self, clock):
        tracer = make_tracer(clock)
        executor = ParallelExecutor(ExecutorConfig(max_workers=4))
        try:
            def shard(item: int) -> int:
                with obs_span("shard.score", index=item):
                    return item * 2
            with tracer.span("request") as root:
                results = executor.map(shard, range(6))
            assert results == [0, 2, 4, 6, 8, 10]
        finally:
            executor.close()
        trace = tracer.trace(root.trace_id)
        shards = [n for n in trace["root"]["children"]
                  if n["name"] == "shard.score"]
        assert len(shards) == 6
        assert sorted(n["attributes"]["index"] for n in shards) == list(range(6))

    def test_bind_hands_span_to_a_foreign_thread(self, clock):
        tracer = make_tracer(clock)
        root = tracer.start_span("request")

        def on_worker() -> None:
            with obs_span("stage"):
                pass

        try:
            thread = threading.Thread(target=bind(root, on_worker))
            thread.start()
            thread.join()
        finally:
            root.end()
        trace = tracer.trace(root.trace_id)
        assert [n["name"] for n in trace["root"]["children"]] == ["stage"]

    def test_carry_current_is_noop_outside_spans(self, clock):
        calls = []
        fn = carry_current(calls.append)
        fn(1)
        assert calls == [1]
        assert current_span() is None


# ---------------------------------------------------------------------------
# obs_span helper
# ---------------------------------------------------------------------------
class TestObsSpan:
    def test_without_ambient_span_is_the_noop(self):
        assert obs_span("journal.append") is NOOP_SPAN

    def test_with_ambient_span_parents_to_it(self, clock):
        tracer = make_tracer(clock)
        with tracer.span("request") as root:
            with obs_span("journal.append", n_rows=3):
                pass
        trace = tracer.trace(root.trace_id)
        [child] = trace["root"]["children"]
        assert child["name"] == "journal.append"
        assert child["attributes"] == {"n_rows": 3}


# ---------------------------------------------------------------------------
# Events: slow requests and the structured log
# ---------------------------------------------------------------------------
class TestEvents:
    def test_slow_root_emits_slow_request(self, clock, caplog):
        tracer = make_tracer(clock, slow_ms=200.0)
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            with tracer.span("request", dataset="oecd"):
                clock.advance(0.150)  # under threshold: no event
            with tracer.span("request", dataset="imdb"):
                clock.advance(0.250)
        payloads = [json.loads(r.message) for r in caplog.records]
        assert len(payloads) == 1
        event = payloads[0]
        assert event["event"] == "slow_request"
        assert event["dataset"] == "imdb"
        assert event["duration_ms"] == pytest.approx(250.0)
        assert event["threshold_ms"] == 200.0
        assert "ts" in event

    def test_emit_is_silent_when_logger_disabled(self, caplog):
        emit("rebuild_swap", dataset="oecd")  # default WARNING level
        assert caplog.records == []

    def test_emit_stringifies_non_json_values(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs.events"):
            emit("fsync_failure", error=OSError("disk gone"))
        [record] = caplog.records
        assert json.loads(record.message)["error"] == "disk gone"


# ---------------------------------------------------------------------------
# ObsConfig parsing
# ---------------------------------------------------------------------------
class TestObsConfig:
    def test_defaults(self):
        config = ObsConfig()
        assert config.enabled is True
        assert config.ring_capacity == 256
        assert config.slow_ms == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(ring_capacity=0)
        with pytest.raises(ValueError):
            ObsConfig(slow_ms=-1.0)

    def test_from_env(self):
        config = ObsConfig.from_env({
            "REPRO_OBS_ENABLED": "off",
            "REPRO_OBS_RING_CAPACITY": "32",
            "REPRO_OBS_SLOW_MS": "50",
        })
        assert config == ObsConfig(enabled=False, ring_capacity=32,
                                   slow_ms=50.0)

    def test_from_env_rejects_bad_bool(self):
        with pytest.raises(ValueError):
            ObsConfig.from_env({"REPRO_OBS_ENABLED": "maybe"})
