"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Foresight
from repro.data import DataTable
from repro.data.datasets import (
    load_imdb,
    load_oecd,
    load_parkinson,
    make_clustered_table,
    make_mixed_table,
    make_numeric_table,
)


@pytest.fixture(scope="session", autouse=True)
def _lock_order_tracking():
    """Runtime lock-order checking behind ``REPRO_DEBUG_LOCKS=1``.

    Wraps every lock the suite creates in a tracing proxy, records the
    actual acquisition order against the hierarchy declared in
    ``repro.analysis.project``, and fails the session at teardown if any
    thread ever inverted it — the dynamic counterpart of the static
    ``lock-order`` rule, catching interleavings the AST walker cannot see.
    """
    if os.environ.get("REPRO_DEBUG_LOCKS") != "1":
        yield
        return
    from repro.analysis.runtime import LockTracker

    tracker = LockTracker().install()
    try:
        yield
    finally:
        tracker.uninstall()
        tracker.assert_clean()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def oecd_table() -> DataTable:
    return load_oecd()


@pytest.fixture(scope="session")
def parkinson_table() -> DataTable:
    # A reduced row count keeps the suite fast while preserving structure.
    return load_parkinson(n_rows=600)


@pytest.fixture(scope="session")
def imdb_table() -> DataTable:
    return load_imdb(n_rows=1200)


@pytest.fixture(scope="session")
def small_mixed_table() -> DataTable:
    return make_mixed_table(n_rows=500, n_numeric=12, n_categorical=3, seed=3)


@pytest.fixture(scope="session")
def medium_numeric_table() -> DataTable:
    return make_numeric_table(n_rows=4000, n_columns=20, seed=5)


@pytest.fixture(scope="session")
def clustered_table() -> DataTable:
    return make_clustered_table(n_rows=900, n_clusters=3, seed=11)


@pytest.fixture(scope="session")
def simple_table() -> DataTable:
    """A tiny, fully deterministic table used by data-layer unit tests."""
    return DataTable.from_columns(
        {
            "height": [1.62, 1.75, 1.80, None, 1.68, 1.90],
            "weight": [55.0, 72.0, 80.5, 64.0, None, 95.0],
            "city": ["Oslo", "Paris", "Paris", "Lima", "Oslo", "Paris"],
            "smoker": [True, False, False, True, False, False],
            "children": [0, 2, 1, 3, 2, 1],
        },
        name="people",
    )


@pytest.fixture(scope="session")
def oecd_engine(oecd_table: DataTable) -> Foresight:
    return Foresight(oecd_table)
