"""Fixture corpus for the six ``repro.analysis`` checkers.

Every rule gets at least one seeded-bad snippet it must fire on and a
good twin it must stay quiet on, plus suppression honoring and the
unused-suppression error for the engine itself.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Analyzer,
    AsyncHygieneRule,
    DeterminismRule,
    DurabilityRule,
    ImmutabilityRule,
    LockOrderRule,
    LockSpec,
    ProjectConfig,
    TraceHygieneRule,
    build_analyzer,
)
from repro.analysis.__main__ import main as lint_main


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_rule(rule, paths) -> list:
    return Analyzer([rule]).run(paths).findings


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------
LOCK_CONFIG = ProjectConfig(
    lock_modules=("locked.py",),
    locks=(
        LockSpec("fixture.entry", 10, "locked.py", "Service", "_entry_lock", reentrant=True),
        LockSpec("fixture.registry", 20, "locked.py", "Service", "_registry_lock"),
        LockSpec("fixture.left", 30, "locked.py", "Service", "_left_lock"),
        LockSpec("fixture.right", 30, "locked.py", "Service", "_right_lock"),
    ),
)

LOCK_PREAMBLE = """
    import threading
    from contextlib import contextmanager

    class Service:
        def __init__(self):
            self._entry_lock = threading.RLock()
            self._registry_lock = threading.Lock()
            self._left_lock = threading.Lock()
            self._right_lock = threading.Lock()
"""


class TestLockOrder:
    def test_conformant_nesting_is_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def ok(self):
            with self._entry_lock:
                with self._registry_lock:
                    pass
    """,
        )
        assert run_rule(LockOrderRule(LOCK_CONFIG), [path]) == []

    def test_inversion_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def bad(self):
            with self._registry_lock:
                with self._entry_lock:
                    pass
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "inverts the declared hierarchy" in findings[0].message

    def test_undeclared_lock_creation_and_acquisition(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def sneaky(self):
            self._extra_lock = threading.Lock()
            with self._extra_lock:
                pass
    """,
        )
        messages = [f.message for f in run_rule(LockOrderRule(LOCK_CONFIG), [path])]
        assert any("not in the declared hierarchy" in m for m in messages)
        assert any("undeclared lock" in m for m in messages)

    def test_reentrancy_honored(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def reenter_ok(self):
            with self._entry_lock:
                with self._entry_lock:
                    pass

        def reenter_bad(self):
            with self._registry_lock:
                with self._registry_lock:
                    pass
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "non-reentrant" in findings[0].message
        assert "fixture.registry" in findings[0].message

    def test_interprocedural_inversion_through_helper(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def _take_entry(self):
            with self._entry_lock:
                return 1

        def bad_caller(self):
            with self._registry_lock:
                return self._take_entry()
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "inverts" in findings[0].message

    def test_contextmanager_yield_held_propagates(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        @contextmanager
        def _held_registry(self):
            with self._registry_lock:
                yield self

        def bad_body(self):
            with self._held_registry():
                with self._entry_lock:
                    pass
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "inverts" in findings[0].message

    def test_manual_acquire_holds_to_release(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def manual_bad(self):
            self._registry_lock.acquire()
            try:
                with self._entry_lock:
                    pass
            finally:
                self._registry_lock.release()
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "inverts" in findings[0].message

    def test_nonblocking_acquire_not_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def try_lock(self):
            with self._registry_lock:
                got = self._entry_lock.acquire(blocking=False)
                if got:
                    self._entry_lock.release()
    """,
        )
        assert run_rule(LockOrderRule(LOCK_CONFIG), [path]) == []

    def test_equal_level_cycle_detected(self, tmp_path):
        path = write(
            tmp_path,
            "locked.py",
            LOCK_PREAMBLE
            + """
        def forward(self):
            with self._left_lock:
                with self._right_lock:
                    pass

        def backward(self):
            with self._right_lock:
                with self._left_lock:
                    pass
    """,
        )
        findings = run_rule(LockOrderRule(LOCK_CONFIG), [path])
        assert len(findings) == 1
        assert "cycle" in findings[0].message


# ---------------------------------------------------------------------------
# snapshot-immutability
# ---------------------------------------------------------------------------
IMMUTABLE_CONFIG = ProjectConfig(
    immutable_types=("DataTable",),
    builder_modules=("builder.py",),
    mutating_methods=("merge", "append", "update"),
    immutability_scopes=("",),
)

MUTATOR = """
    def tamper(table: DataTable, other: DataTable):
        table.version = 2
        table.columns["x"] = None
        table.merge(other)
"""

FRESH = """
    import copy

    def combine(table: DataTable, other: DataTable):
        fresh = copy.deepcopy(table)
        fresh.merge(other)
        return fresh
"""


class TestImmutability:
    def test_mutations_flagged_outside_builders(self, tmp_path):
        path = write(tmp_path, "consumer.py", MUTATOR)
        findings = run_rule(ImmutabilityRule(IMMUTABLE_CONFIG), [path])
        assert len(findings) == 3
        kinds = {f.message.split(" on ")[0] for f in findings}
        assert "attribute assignment" in kinds
        assert "item assignment" in kinds
        assert "mutating call .merge()" in kinds

    def test_builder_module_is_exempt(self, tmp_path):
        path = write(tmp_path, "builder.py", MUTATOR)
        assert run_rule(ImmutabilityRule(IMMUTABLE_CONFIG), [path]) == []

    def test_fresh_copy_is_sanctioned(self, tmp_path):
        path = write(tmp_path, "consumer.py", FRESH)
        assert run_rule(ImmutabilityRule(IMMUTABLE_CONFIG), [path]) == []

    def test_alias_stays_tracked(self, tmp_path):
        path = write(
            tmp_path,
            "consumer.py",
            """
        def alias(table: DataTable, other: DataTable):
            same = table
            same.merge(other)
    """,
        )
        findings = run_rule(ImmutabilityRule(IMMUTABLE_CONFIG), [path])
        assert len(findings) == 1

    def test_container_of_snapshots_is_not_tracked(self, tmp_path):
        path = write(
            tmp_path,
            "consumer.py",
            """
        def build(tables: list[DataTable]):
            out: list[DataTable] = []
            out.append(tables[0])
            return out
    """,
        )
        assert run_rule(ImmutabilityRule(IMMUTABLE_CONFIG), [path]) == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
DETERMINISM_CONFIG = ProjectConfig(determinism_scopes=("",))


class TestDeterminism:
    def test_bad_sources_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import random, time
        import numpy as np

        def bad():
            a = random.random()
            b = np.random.rand(3)
            c = np.random.default_rng()
            d = time.time()
            for item in set([3, 1, 2]):
                yield item
    """,
        )
        findings = run_rule(DeterminismRule(DETERMINISM_CONFIG), [path])
        assert len(findings) == 5
        text = " ".join(f.message for f in findings)
        assert "unseeded global state" in text
        assert "legacy numpy.random" in text
        assert "without a seed" in text
        assert "wall-clock" in text
        assert "hash order" in text

    def test_good_twin_is_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import numpy as np

        def good(seed: int, names: set[str]):
            rng = np.random.default_rng(seed)
            sample = rng.normal(size=4)
            ordered = [n for n in sorted(names)]
            if "x" in names:
                ordered.append("x")
            return sample, ordered, len(names)
    """,
        )
        assert run_rule(DeterminismRule(DETERMINISM_CONFIG), [path]) == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        config = ProjectConfig(determinism_scopes=("core/",))
        path = write(
            tmp_path,
            "service.py",
            """
        import time

        def stamp():
            return time.time()
    """,
        )
        assert run_rule(DeterminismRule(config), [path]) == []


# ---------------------------------------------------------------------------
# durability-protocol
# ---------------------------------------------------------------------------
DURABILITY_CONFIG = ProjectConfig(
    durability_scopes=("",),
    durability_owner="durable.py",
    lock_modules=("service.py",),
    locks=(LockSpec("fixture.entry", 10, "service.py", "Workspace", "_entry_lock", reentrant=True),),
    journal_attrs=("_journal",),
    journal_write_methods=("append", "write_snapshot", "load"),
    journal_guard_locks=("fixture.entry",),
)


class TestDurability:
    def test_foreign_write_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "other.py",
            """
        import os

        def leak(path):
            with open(path, "w") as fh:
                fh.write("x")
            os.replace(path, path + ".bak")
    """,
        )
        findings = run_rule(DurabilityRule(DURABILITY_CONFIG), [path])
        assert len(findings) == 2
        text = " ".join(f.message for f in findings)
        assert "opened for writing" in text
        assert "os.replace" in text

    def test_reads_and_str_replace_are_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "other.py",
            """
        def fine(path, label):
            with open(path) as fh:
                data = fh.read()
            return data, label.replace("_", " ")
    """,
        )
        assert run_rule(DurabilityRule(DURABILITY_CONFIG), [path]) == []

    def test_owner_rename_requires_fsync(self, tmp_path):
        path = write(
            tmp_path,
            "durable.py",
            """
        import os

        def publish_unsafe(tmp, final):
            os.replace(tmp, final)

        def publish_safe(tmp, final):
            with open(tmp, "w") as fh:
                fh.write("data")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
    """,
        )
        findings = run_rule(DurabilityRule(DURABILITY_CONFIG), [path])
        assert len(findings) == 1
        assert findings[0].line < 8  # only the unsafe publish
        assert "fsync" in findings[0].message

    def test_journal_write_requires_entry_lock(self, tmp_path):
        path = write(
            tmp_path,
            "service.py",
            """
        import threading

        class Workspace:
            def __init__(self, journal):
                self._entry_lock = threading.RLock()
                self._journal = journal

            def guarded(self, record):
                with self._entry_lock:
                    self._journal.append(record)

            def unguarded(self, record):
                self._journal.append(record)

            def guarded_through_helper(self, record):
                with self._entry_lock:
                    self._write(record)

            def _write(self, record):
                self._journal.append(record)
    """,
        )
        findings = run_rule(DurabilityRule(DURABILITY_CONFIG), [path])
        assert len(findings) == 1
        assert "without the owning entry lock" in findings[0].message

    def test_readonly_load_is_quiet_but_repair_needs_guard(self, tmp_path):
        path = write(
            tmp_path,
            "service.py",
            """
        import threading

        class Workspace:
            def __init__(self, journal):
                self._entry_lock = threading.RLock()
                self._journal = journal

            def peek(self, name):
                return self._journal.load(name)

            def recover(self, name):
                return self._journal.load(name, repair=True)
    """,
        )
        findings = run_rule(DurabilityRule(DURABILITY_CONFIG), [path])
        assert len(findings) == 1
        assert findings[0].line == 13


# ---------------------------------------------------------------------------
# async-hygiene
# ---------------------------------------------------------------------------
ASYNC_CONFIG = ProjectConfig(
    async_scopes=("",),
    async_blocking_calls=("time.sleep", "os.fsync"),
    workspace_receivers=("_workspace",),
    workspace_blocking_methods=("handle", "register"),
)


class TestAsyncHygiene:
    def test_blocking_calls_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "server.py",
            """
        import time

        class Handler:
            async def slow(self, request):
                time.sleep(0.1)
                self._lock.acquire()
                return self._workspace.handle(request)
    """,
        )
        findings = run_rule(AsyncHygieneRule(ASYNC_CONFIG), [path])
        assert len(findings) == 3
        text = " ".join(f.message for f in findings)
        assert "time.sleep" in text
        assert "blocking lock acquire" in text
        assert "run_in_executor" in text

    def test_good_twin_is_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "server.py",
            """
        import asyncio

        class Handler:
            async def fast(self, request):
                await asyncio.sleep(0.1)
                await self._controller.acquire(request)
                got = self._lock.acquire(blocking=False)
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._pool, self._workspace.handle, request
                )
    """,
        )
        assert run_rule(AsyncHygieneRule(ASYNC_CONFIG), [path]) == []

    def test_nested_sync_def_excluded(self, tmp_path):
        path = write(
            tmp_path,
            "server.py",
            """
        import time

        class Handler:
            async def dispatch(self, request):
                def on_thread():
                    time.sleep(0.1)
                    return self._workspace.handle(request)
                return await self._loop.run_in_executor(None, on_thread)
    """,
        )
        assert run_rule(AsyncHygieneRule(ASYNC_CONFIG), [path]) == []

    def test_sync_function_ignored(self, tmp_path):
        path = write(
            tmp_path,
            "server.py",
            """
        import time

        def run(workspace, request):
            time.sleep(0.01)
            return workspace.handle(request)
    """,
        )
        assert run_rule(AsyncHygieneRule(ASYNC_CONFIG), [path]) == []


# ---------------------------------------------------------------------------
# suppressions & the engine
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_inline_suppression_honored(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import time

        def stamp():
            return time.time()  # repro: allow(determinism) — service boundary
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        assert report.ok
        assert len(report.suppressed) == 1

    def test_own_line_suppression_covers_next_statement(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import time

        def stamp():
            # repro: allow(determinism) — service boundary timestamping
            # spread over two comment lines before the statement.
            return time.time()
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        assert report.ok
        assert len(report.suppressed) == 1

    def test_unused_suppression_is_a_finding(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        def clean():
            return 1  # repro: allow(determinism) — stale excuse
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        assert not report.ok
        assert report.findings[0].rule == "unused-suppression"

    def test_reasonless_suppression_is_a_finding(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import time

        def stamp():
            return time.time()  # repro: allow(determinism)
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        assert not report.ok
        assert any("must carry a reason" in f.message for f in report.findings)

    def test_suppression_for_other_rule_does_not_mask(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import time

        def stamp():
            return time.time()  # repro: allow(lock-order) — wrong rule id
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        rules = {f.rule for f in report.findings}
        assert rules == {"determinism", "unused-suppression"}


# ---------------------------------------------------------------------------
# trace-hygiene
# ---------------------------------------------------------------------------
TRACE_CONFIG = ProjectConfig(
    tracer_receivers=("tracer", "_tracer"),
    trace_span_functions=("obs_span",),
    trace_exempt_modules=("obs/tracer.py",),
)


class TestTraceHygiene:
    def test_with_statement_spans_are_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        from repro.obs.tracer import obs_span

        class Service:
            def handle(self, name):
                with self._tracer.span("service.handle", dataset=name) as span:
                    span.set_attribute("cache", "hit")
                    with obs_span("engine.snapshot"):
                        pass
    """,
        )
        assert run_rule(TraceHygieneRule(TRACE_CONFIG), [path]) == []

    def test_bare_span_call_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        class Service:
            def handle(self):
                span = self._tracer.span("service.handle")
                return span
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1
        assert "with-statement" in findings[0].message

    def test_bare_obs_span_call_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        from repro.obs.tracer import obs_span

        def work():
            obs_span("engine.build")
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1

    def test_start_span_with_try_finally_is_quiet(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        class Server:
            async def handle(self, request):
                root = self.tracer.start_span("request")
                try:
                    root.set_attribute("endpoint", "insights")
                finally:
                    root.end()
    """,
        )
        assert run_rule(TraceHygieneRule(TRACE_CONFIG), [path]) == []

    def test_unassigned_start_span_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        class Server:
            async def handle(self, request):
                self.tracer.start_span("request")
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1
        assert "assigned" in findings[0].message

    def test_start_span_without_finally_end_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        class Server:
            async def handle(self, request):
                root = self.tracer.start_span("request")
                root.end()
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1
        assert "finally" in findings[0].message

    def test_end_in_nested_function_does_not_count(self, tmp_path):
        # The finally must be in the SAME function: an end() inside a
        # nested callback may never run.
        path = write(
            tmp_path,
            "instrumented.py",
            """
        class Server:
            async def handle(self, request):
                root = self.tracer.start_span("request")

                def later():
                    try:
                        pass
                    finally:
                        root.end()
                return later
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1

    def test_computed_set_attribute_key_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        def annotate(span, stats):
            for key, value in stats.items():
                span.set_attribute(key, value)
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1
        assert "literal string" in findings[0].message

    def test_kwargs_splat_into_span_is_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        def work(tracer, attrs):
            with tracer.span("stage", **attrs):
                pass
    """,
        )
        findings = run_rule(TraceHygieneRule(TRACE_CONFIG), [path])
        assert len(findings) == 1
        assert "**kwargs" in findings[0].message

    def test_tracer_module_is_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "obs/tracer.py",
            """
        def obs_span(name):
            tracer = _ambient_tracer()
            span = tracer.start_span(name)
            return span
    """,
        )
        assert run_rule(TraceHygieneRule(TRACE_CONFIG), [path]) == []

    def test_suppression_is_honored(self, tmp_path):
        path = write(
            tmp_path,
            "instrumented.py",
            """
        def probe(tracer):
            span = tracer.span("probe")  # repro: allow(trace-hygiene) — test probe keeps the cm open across asserts
            return span
    """,
        )
        report = Analyzer([TraceHygieneRule(TRACE_CONFIG)]).run([path])
        assert report.ok
        assert len(report.suppressed) == 1


class TestEngineAndCli:
    def test_report_json_shape(self, tmp_path):
        path = write(
            tmp_path,
            "core.py",
            """
        import time

        def stamp():
            return time.time()
    """,
        )
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        payload = json.loads(report.to_json())
        assert payload["tool"] == "repro-lint"
        assert payload["ok"] is False
        assert payload["summary"] == {"determinism": 1}
        assert payload["findings"][0]["line"] == 5

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "broken.py", "def nope(:\n")
        report = Analyzer([DeterminismRule(DETERMINISM_CONFIG)]).run([path])
        assert not report.ok
        assert report.findings[0].rule == "parse-error"

    def test_cli_exit_codes_and_report_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        bad = write(
            tmp_path,
            "repro/core/bad.py",
            """
        import time

        def stamp():
            return time.time()
    """,
        )
        assert lint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        report_file = tmp_path / "LINT_report.json"
        assert report_file.exists()
        assert json.loads(report_file.read_text())["ok"] is False

        good = write(tmp_path, "repro/core/good.py", "VALUE = 1\n")
        assert lint_main([str(good), "--format", "text"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "missing")]) == 2

    def test_build_analyzer_runs_all_rules(self, tmp_path):
        analyzer = build_analyzer()
        assert len(analyzer.rules) == 6
