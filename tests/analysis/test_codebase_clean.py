"""Tier-1 gate: the live tree has zero unsuppressed analyzer findings.

This is the test every future PR passes through: a new lock outside the
declared hierarchy, a stray ``time.time()`` in the ranking core, an
unguarded journal write, or a blocking call in a coroutine fails the
suite with the same message ``repro-lint`` prints in CI.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import build_analyzer

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_live_tree_has_zero_unsuppressed_findings():
    report = build_analyzer().run([PACKAGE_ROOT])
    assert report.ok, "repro-lint found unsuppressed violations:\n" + report.render_text()


def test_every_suppression_in_tree_is_used_and_reasoned():
    # A clean report already implies this (unused or reasonless
    # suppressions are findings), so just pin the current allowance
    # budget: growing it is a reviewable event, not an accident.
    report = build_analyzer().run([PACKAGE_ROOT])
    assert report.ok
    assert len(report.suppressed) <= 3, (
        "new suppressed findings appeared; each needs review:\n"
        + "\n".join(f.render() for f in report.suppressed)
    )


def test_analyzer_actually_scanned_the_tree():
    report = build_analyzer().run([PACKAGE_ROOT])
    assert report.files >= 60  # the package is ~80 modules; guard against
    # an empty-glob regression silently passing the gate.
