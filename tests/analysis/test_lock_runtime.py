"""Tests for the runtime lock-order shim (``repro.analysis.runtime``).

The declare()-based tests drive the tracker directly with pinned roles;
the install()-based tests prove the end-to-end path: static site table
from the installed package, patched ``threading`` factories, and a real
:class:`~repro.service.workspace.Workspace` staying violation-free.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.project import DEFAULT_CONFIG
from repro.analysis.runtime import LockTracker, _TracedLock


def traced(tracker: LockTracker, role: str, rlock: bool = False) -> _TracedLock:
    inner = threading.RLock() if rlock else threading.Lock()
    lock = _TracedLock(inner, tracker)
    tracker.declare(lock, role)
    return lock


@pytest.fixture()
def tracker() -> LockTracker:
    return LockTracker(DEFAULT_CONFIG)


class TestDeclaredLocks:
    def test_conformant_order_is_clean(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)
        with entry:
            with registry:
                pass
        tracker.assert_clean()

    def test_inversion_recorded_and_raises(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)
        with registry:
            with entry:
                pass
        assert len(tracker.violations) == 1
        violation = tracker.violations[0]
        assert violation.kind == "inversion"
        assert violation.held_role == "workspace.registry"
        assert violation.acquired_role == "workspace.entry"
        with pytest.raises(AssertionError, match="lock-order violation"):
            tracker.assert_clean()

    def test_reentrant_reentry_is_clean(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        with entry:
            with entry:
                pass
        tracker.assert_clean()

    def test_nonreentrant_reentry_recorded(self, tracker):
        # Driven on an RLock so the test does not deadlock; the *role*
        # (workspace.stats) is declared non-reentrant, which is what the
        # tracker checks.
        stats = traced(tracker, "workspace.stats", rlock=True)
        with stats:
            with stats:
                pass
        assert [v.kind for v in tracker.violations] == ["reacquire"]

    def test_release_clears_held_stack(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)
        with registry:
            pass
        with entry:  # registry no longer held: not an inversion
            pass
        tracker.assert_clean()

    def test_nonblocking_acquire_not_checked_but_held(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)
        with registry:
            assert entry.acquire(blocking=False)
            entry.release()
        tracker.assert_clean()

    def test_held_stacks_are_per_thread(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)
        with registry:
            worker = threading.Thread(target=lambda: entry.acquire() and entry.release())
            worker.start()
            worker.join()
        # The worker held nothing when it took the entry lock.
        tracker.assert_clean()

    def test_violations_from_worker_threads_are_recorded(self, tracker):
        entry = traced(tracker, "workspace.entry", rlock=True)
        registry = traced(tracker, "workspace.registry", rlock=True)

        def invert():
            with registry:
                with entry:
                    pass

        worker = threading.Thread(target=invert, name="inverter")
        worker.start()
        worker.join()
        assert len(tracker.violations) == 1
        assert tracker.violations[0].thread == "inverter"


class TestInstalledTracker:
    def test_site_table_resolves_from_installed_package(self):
        tracker = LockTracker(DEFAULT_CONFIG).install()
        try:
            roles = {site.lock_id for site in tracker._sites.values()}
            # Acquisition sites for the core roles must be present, or
            # runtime checking would silently check nothing.
            assert {"workspace.entry", "workspace.registry", "cache.lock"} <= roles
        finally:
            tracker.uninstall()

    def test_patched_factories_produce_traced_locks(self):
        # Compare against the factories in place *before* this install:
        # under REPRO_DEBUG_LOCKS=1 the session fixture has already
        # patched them, and uninstall() must restore exactly that state.
        before_lock, before_rlock = threading.Lock, threading.RLock
        tracker = LockTracker(DEFAULT_CONFIG).install()
        try:
            assert isinstance(threading.Lock(), _TracedLock)
            assert isinstance(threading.RLock(), _TracedLock)
            assert threading.Lock is not before_lock
        finally:
            tracker.uninstall()
        assert threading.Lock is before_lock
        assert threading.RLock is before_rlock

    def test_real_workspace_traffic_is_violation_free(self, tmp_path):
        from repro.data.datasets import make_numeric_table
        from repro.service import InsightRequest
        from repro.service.workspace import Workspace

        tracker = LockTracker(DEFAULT_CONFIG).install()
        try:
            # Durable mode exercises the journal paths (register/replace/
            # reload all write under the entry lock) on traced locks.
            workspace = Workspace(data_dir=str(tmp_path / "data"))
            workspace.register(
                "demo", lambda: make_numeric_table(n_rows=200, n_columns=4, seed=1)
            )
            request = InsightRequest(
                dataset="demo", insight_classes=("skew",), top_k=2
            )
            workspace.handle(request)
            workspace.reload("demo")
            workspace.handle(request)
            workspace.describe()
            workspace.close()
        finally:
            tracker.uninstall()
        tracker.assert_clean()

    def test_condition_bookkeeping_survives_tracing(self):
        # threading.Condition wraps its lock's private bookkeeping; the
        # proxy must delegate it untouched or waiters corrupt the lock.
        tracker = LockTracker(DEFAULT_CONFIG).install()
        try:
            condition = threading.Condition()
            results: list[int] = []

            def consumer():
                with condition:
                    condition.wait(timeout=5)
                    results.append(1)

            worker = threading.Thread(target=consumer)
            worker.start()
            with condition:
                condition.notify()
            worker.join(timeout=5)
            assert results == [1]
        finally:
            tracker.uninstall()
        tracker.assert_clean()
