"""Crash-recovery and fault-injection suite for the durable journal.

The contract under test (ISSUE 5): with a ``data_dir``, a restarted
workspace replays the on-disk write-ahead journal to the **exact**
``(version, seq)`` identity and query payloads an uninterrupted process
would serve — and a torn or corrupted journal tail, at *any* byte
offset of the final record, recovers to the last complete record:
never an exception, never invented data.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.engine import EngineConfig
from repro.core.neighborhood import NeighborhoodConfig
from repro.data.datasets import make_mixed_table
from repro.errors import ServiceError
from repro.ingest import IngestConfig
from repro.ingest.durable import (
    DatasetJournal,
    engine_config_from_payload,
    engine_config_to_payload,
    scan_records,
)
from repro.service import InsightRequest, Workspace
from repro.sketch.store import SketchStoreConfig

#: Shared, deterministic base table + append stream for every scenario.
BASE_SEED, STREAM_SEED = 11, 12
BASE_ROWS = 80


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=3, n_categorical=2,
                            seed=BASE_SEED)


@pytest.fixture(scope="module")
def base_table():
    return _base_table()


@pytest.fixture(scope="module")
def stream(base_table):
    return make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                            seed=STREAM_SEED).to_records()


def _request():
    return InsightRequest(dataset="live", insight_classes=("skew", "outliers"),
                          top_k=3)


def _payload(response) -> str:
    """Canonical response bytes minus wall-clock timing."""
    body = response.to_dict()
    body.pop("timing")
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _open(data_dir, base, **ingest_overrides) -> Workspace:
    defaults = {"rebuild_fraction": float("inf")}
    defaults.update(ingest_overrides)
    workspace = Workspace(data_dir=str(data_dir) if data_dir else None,
                          ingest=IngestConfig(**defaults))
    # Registering over journal-restored state adopts it (the loader only
    # serves future reloads), so restart code is identical to cold-start
    # code — exactly how a production process would boot.
    workspace.register("live", lambda: base)
    return workspace


def _segment_paths(data_dir) -> list[Path]:
    return sorted(Path(data_dir, "live").glob("journal-*.seg"))


class TestRestartReplay:
    def test_restart_after_delta_merges_is_byte_identical(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:12])
        live.append("live", stream[12:20])
        live_response = live.handle(_request())
        # An uninterrupted (never-persisted) twin is the ground truth.
        twin = _open(None, base_table)
        twin.engine("live")
        twin.append("live", stream[:12])
        twin.append("live", stream[12:20])
        assert _payload(live_response) == _payload(twin.handle(_request()))

        # "Crash": the workspace is abandoned mid-flight, never closed.
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == live.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == _payload(live_response)

    def test_restart_with_deferred_appends_only(self, tmp_path, base_table,
                                                stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:10])   # no engine yet: deferred
        assert live.state("live") == (1, 1)
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 1)
        assert restarted.table("live").n_rows == BASE_ROWS + 10
        assert _payload(restarted.handle(_request())) == _payload(
            live.handle(_request())
        )

    def test_cold_build_marker_freezes_the_deferred_rows(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:10])   # deferred
        live.engine("live")                # cold build over base + 10
        live.append("live", stream[10:18])  # delta merge on top
        reference = _payload(live.handle(_request()))
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == reference

    def test_sync_rebuild_compacts_to_a_snapshot(self, tmp_path, base_table,
                                                 stream):
        live = _open(tmp_path, base_table, rebuild_fraction=0.05,
                     background_rebuild=False)
        live.engine("live")
        result = live.append("live", stream[:12])  # 12 > 0.05 * 80
        assert result.applied == "rebuild"
        assert (tmp_path / "live" / "snapshot-00000001.bin").exists()
        reference = _payload(live.handle(_request()))

        loads = []

        def counting_loader():
            loads.append(1)
            return _base_table()

        restarted = Workspace(data_dir=str(tmp_path),
                              ingest=IngestConfig(rebuild_fraction=0.05,
                                                  background_rebuild=False))
        restarted.register("live", counting_loader)
        # The snapshot supplies the rows: the loader never runs.
        assert loads == []
        assert restarted.state("live") == (1, 1)
        assert _payload(restarted.handle(_request())) == reference

    def test_background_swap_record_replays(self, tmp_path, base_table,
                                            stream):
        live = _open(tmp_path, base_table, rebuild_fraction=0.1)
        live.engine("live")
        result = live.append("live", stream[:12])  # beyond budget -> bg
        assert result.applied == "delta_merge"
        assert live.wait_for_rebuilds(timeout=30)
        assert live.state("live") == (1, 2)  # the swap minted seq 2
        reference = _payload(live.handle(_request()))
        live.close()

        restarted = _open(tmp_path, base_table, rebuild_fraction=0.1)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == reference

    def test_restart_continues_seq_and_version_counters(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        restarted = _open(tmp_path, base_table)
        appended = restarted.append("live", stream[5:10])
        assert (appended.version, appended.seq) == (1, 2)
        assert restarted.reload("live") == 2  # versions never repeat
        assert restarted.state("live") == (2, 0)

    def test_inline_table_registration_survives_restart(self, tmp_path,
                                                        base_table, stream):
        live = Workspace(data_dir=str(tmp_path))
        live.register("inline", base_table)
        live.append("inline", stream[:6])
        identity = live.state("inline")
        request = InsightRequest(dataset="inline", insight_classes=("skew",),
                                 top_k=3)
        reference = _payload(live.handle(request))

        # No register call at all: the snapshot is self-contained.
        restarted = Workspace(data_dir=str(tmp_path))
        assert "inline" in restarted
        assert restarted.state("inline") == identity
        assert _payload(restarted.handle(request)) == reference

    def test_concrete_table_cannot_silently_discard_journalled_state(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        restarted = Workspace(data_dir=str(tmp_path))
        with pytest.raises(Exception, match="replace=True"):
            restarted.register("live", base_table)
        # The state survives the refusal and replays once a loader (or an
        # explicit replace) arrives.
        restarted.register("live", lambda: base_table)
        assert restarted.state("live") == (1, 1)

    def test_flush_reports_durability(self, tmp_path, base_table, stream):
        durable = _open(tmp_path, base_table, fsync=False)
        durable.append("live", stream[:3])
        flushed = durable.flush("live")
        assert flushed == {"dataset": "live", "version": 1, "seq": 1,
                           "durable": True}
        transient = _open(None, base_table)
        assert transient.flush("live")["durable"] is False


class TestFaultInjection:
    """Damage the journal tail at every byte offset; recovery must hold."""

    N_APPENDS = 3

    @pytest.fixture()
    def journal(self, tmp_path, base_table, stream):
        """A journal of three 2-row deferred appends, plus its tail span."""
        live = _open(tmp_path, base_table)
        for i in range(self.N_APPENDS):
            live.append("live", stream[2 * i: 2 * i + 2])
        live.close()
        (segment,) = _segment_paths(tmp_path)
        data = segment.read_bytes()
        spans = [(start, end) for _p, start, end in scan_records(data)]
        # generation header + one record per append
        assert len(spans) == 1 + self.N_APPENDS
        return tmp_path, segment, data, spans

    def _recovered(self, tmp_path, base_table):
        restarted = _open(tmp_path, base_table)
        return restarted.state("live"), restarted.table("live").n_rows

    def test_truncation_at_every_byte_offset_of_final_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for cut in range(final_start, final_end):
            segment.write_bytes(data[:cut])
            state, n_rows = self._recovered(tmp_path, base_table)
            assert state == (1, self.N_APPENDS - 1), f"cut at byte {cut}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_corruption_at_every_byte_offset_of_final_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for position in range(final_start, final_end):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x5A
            segment.write_bytes(bytes(corrupted))
            state, n_rows = self._recovered(tmp_path, base_table)
            assert state == (1, self.N_APPENDS - 1), f"flip at byte {position}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_mid_journal_corruption_recovers_to_last_complete_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        second_start, second_end = spans[2]  # header, append#1, append#2, ...
        corrupted = bytearray(data)
        corrupted[(second_start + second_end) // 2] ^= 0xFF
        segment.write_bytes(bytes(corrupted))
        # Everything after the damage is unusable — recovery stops at the
        # last complete record before it, inventing nothing.
        state, n_rows = self._recovered(tmp_path, base_table)
        assert state == (1, 1)
        assert n_rows == BASE_ROWS + 2

    def test_unreadable_generation_header_starts_fresh(self, journal,
                                                       base_table):
        tmp_path, segment, data, spans = journal
        corrupted = bytearray(data)
        corrupted[spans[0][0]] ^= 0xFF  # destroy the header record
        segment.write_bytes(bytes(corrupted))
        state, n_rows = self._recovered(tmp_path, base_table)
        # Nothing of the generation is trustworthy: recover to the base.
        assert state == (1, 0)
        assert n_rows == BASE_ROWS

    def test_tail_recovery_preserves_query_payload_bytes(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:8])
        reference = _payload(live.handle(_request()))  # state at seq 1
        live.append("live", stream[8:16])
        live.close()
        (segment,) = _segment_paths(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the final record
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 1)
        assert _payload(restarted.handle(_request())) == reference

    def test_repair_makes_the_journal_appendable_again(self, journal,
                                                       base_table, stream):
        tmp_path, segment, data, spans = journal
        segment.write_bytes(data[:-5])
        restarted = _open(tmp_path, base_table)
        appended = restarted.append("live", stream[20:24])
        assert (appended.version, appended.seq) == (1, self.N_APPENDS)
        # And the repaired + extended journal replays cleanly once more.
        again = _open(tmp_path, base_table)
        assert again.state("live") == (1, self.N_APPENDS)

    def test_failed_append_rolls_its_torn_bytes_back(self, tmp_path,
                                                     base_table, stream,
                                                     monkeypatch):
        """A failed commit must not leave garbage mid-segment.

        If it did, the *next* successful (acknowledged, fsynced) append
        would land after the garbage — and replay, which stops at the
        first damaged record, would silently drop it.
        """
        import repro.ingest.durable as durable

        live = _open(tmp_path, base_table)
        live.append("live", stream[:3])
        real_fsync = os.fsync
        blown = []

        def failing_fsync(fd):
            if not blown:
                blown.append(True)
                raise OSError(28, "No space left on device")
            return real_fsync(fd)

        monkeypatch.setattr(durable.os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            live.append("live", stream[3:6])
        assert live.state("live") == (1, 1)  # the failed append never landed
        appended = live.append("live", stream[6:9])
        assert (appended.version, appended.seq) == (1, 2)
        monkeypatch.undo()
        live.close()
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert restarted.table("live").n_rows == BASE_ROWS + 6

    def test_orphaned_snapshot_stays_appendable(self, tmp_path, base_table,
                                                stream):
        """Crash between snapshot rename and segment creation: repairable.

        Recovery must recreate the generation segment so the restored
        dataset accepts appends — not serve reads while rejecting every
        write forever.
        """
        live = _open(tmp_path, base_table, rebuild_fraction=0.05,
                     background_rebuild=False)
        live.engine("live")
        live.append("live", stream[:12])  # sync rebuild -> snapshot
        live.close()
        for segment in _segment_paths(tmp_path):
            segment.unlink()  # the crash ate the compaction segment
        restarted = _open(tmp_path, base_table, rebuild_fraction=0.05,
                          background_rebuild=False)
        assert restarted.state("live") == (1, 1)
        appended = restarted.append("live", stream[12:15])
        assert (appended.version, appended.seq) == (1, 2)
        again = _open(tmp_path, base_table, rebuild_fraction=0.05,
                      background_rebuild=False)
        assert again.state("live") == (1, 2)


class TestGenerationRotation:
    """Reload / re-registration must rotate the journal before swapping."""

    def test_reload_rotates_segments_on_disk(self, tmp_path, base_table,
                                             stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        assert len(_segment_paths(tmp_path)) == 1
        live.reload("live")
        (segment,) = _segment_paths(tmp_path)
        assert segment.name.startswith("journal-00000002-")
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)

    def test_stale_generation_deltas_never_replay_onto_the_new_version(
        self, tmp_path, base_table, stream
    ):
        """Regression: crash between generation swap and old-segment cleanup.

        Recovery must pick the newest generation and ignore the stale
        one's deltas entirely — replaying them onto the new version was
        the failure mode the rotate-before-swap ordering exists to
        prevent.
        """
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        (old_segment,) = _segment_paths(tmp_path)
        stale = old_segment.read_bytes()
        live.reload("live")
        # Simulate the crash window: the old generation's segment (with
        # its journalled deltas) is still on disk next to the new one.
        old_segment.write_bytes(stale)
        assert len(_segment_paths(tmp_path)) == 2
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)
        assert restarted.table("live").n_rows == BASE_ROWS  # no stale rows

    def test_crashed_inline_reload_never_loses_the_only_copy(
        self, tmp_path, base_table, stream
    ):
        """Regression: rotating an inline-table generation must not destroy
        the old generation's snapshot before the new one is durable.

        Snapshots are per-generation files; a crash after the new
        version's snapshot is written but before its segment exists must
        recover the OLD generation intact (the reload was never
        acknowledged) — not delete both copies.
        """
        import shutil

        live = Workspace(data_dir=str(tmp_path))
        live.register("inline", base_table)
        live.append("inline", stream[:5])
        live.close()
        before = {p.name: p.read_bytes()
                  for p in (tmp_path / "inline").iterdir()}

        other = Workspace(data_dir=str(tmp_path))
        assert other.reload("inline") == 2
        new_snapshot = (tmp_path / "inline" / "snapshot-00000002.bin"
                        ).read_bytes()
        other.close()

        # Reconstruct the crash window: v1 fully intact, the v2 snapshot
        # landed, the v2 segment never did.
        shutil.rmtree(tmp_path / "inline")
        (tmp_path / "inline").mkdir()
        for name, data in before.items():
            (tmp_path / "inline" / name).write_bytes(data)
        (tmp_path / "inline" / "snapshot-00000002.bin").write_bytes(
            new_snapshot)

        restarted = Workspace(data_dir=str(tmp_path))
        assert restarted.state("inline") == (1, 1)  # old generation intact
        assert restarted.table("inline").n_rows == BASE_ROWS + 5
        # And the dataset still accepts appends after the repair.
        appended = restarted.append("inline", stream[5:8])
        assert (appended.version, appended.seq) == (1, 2)

    def test_replace_registration_rotates_too(self, tmp_path, base_table,
                                              stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        live.register("live", base_table, replace=True)
        assert live.state("live") == (2, 0)
        restarted = Workspace(data_dir=str(tmp_path))
        assert restarted.state("live") == (2, 0)
        assert restarted.table("live").n_rows == BASE_ROWS


class TestKillAndRestart:
    """The acceptance e2e: a SIGKILL-equivalent death, then recovery."""

    CHILD = """
import json, os, sys
sys.path.insert(0, sys.argv[2])
from repro.data.datasets import make_mixed_table
from repro.ingest import IngestConfig
from repro.service import InsightRequest, Workspace

base = make_mixed_table(n_rows={base_rows}, n_numeric=3, n_categorical=2,
                        seed={base_seed})
stream = make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                          seed={stream_seed}).to_records()
workspace = Workspace(data_dir=sys.argv[1],
                      ingest=IngestConfig(rebuild_fraction=float("inf")))
workspace.register("live", lambda: base)
workspace.engine("live")
workspace.append("live", stream[:9])
workspace.append("live", stream[9:17])
response = workspace.handle(InsightRequest(
    dataset="live", insight_classes=("skew", "outliers"), top_k=3))
body = response.to_dict()
body.pop("timing")
print(json.dumps({{
    "state": list(workspace.state("live")),
    "payload": json.dumps(body, sort_keys=True, separators=(",", ":")),
}}))
sys.stdout.flush()
os._exit(17)  # die without any cleanup: no close(), no atexit
"""

    def test_kill_and_restart_is_byte_identical(self, tmp_path, base_table,
                                                stream):
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = self.CHILD.format(base_rows=BASE_ROWS, base_seed=BASE_SEED,
                                  stream_seed=STREAM_SEED)
        result = subprocess.run(
            [sys.executable, "-c", child, str(tmp_path), src],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONHASHSEED": "0"},
        )
        assert result.returncode == 17, result.stderr
        reported = json.loads(result.stdout.strip().splitlines()[-1])

        # The uninterrupted twin, run entirely in this process.
        twin = _open(None, base_table)
        twin.engine("live")
        twin.append("live", stream[:9])
        twin.append("live", stream[9:17])
        twin_payload = _payload(twin.handle(_request()))
        assert reported["state"] == [1, 2]
        assert reported["payload"] == twin_payload

        # Restart over the dead process's data_dir.
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == twin_payload


class TestEngineConfigPersistence:
    """A custom engine config must restore with the snapshot.

    Sketch seeds, capacities and mode all change what a query returns;
    a restored dataset rebuilt under the workspace default would
    silently serve different results than the uninterrupted process.
    """

    def test_config_roundtrips_through_its_payload(self):
        config = EngineConfig(
            default_top_k=4,
            sketch=SketchStoreConfig(seed=7, frequent_capacity=64),
            neighborhood=NeighborhoodConfig(candidate_pool=10),
            max_candidates_triples=1234,
        )
        # Through real JSON text, exactly like the snapshot file.
        payload = json.loads(json.dumps(engine_config_to_payload(config)))
        restored = engine_config_from_payload(payload)
        assert restored.mode == config.mode
        assert restored.default_top_k == 4
        assert restored.max_candidates_triples == 1234
        assert restored.sketch == config.sketch
        assert restored.neighborhood == config.neighborhood

    def test_unknown_payload_keys_are_ignored(self):
        payload = engine_config_to_payload(EngineConfig())
        payload["future_knob"] = True
        payload["sketch"]["future_sketch_knob"] = 3
        restored = engine_config_from_payload(payload)
        assert restored.sketch == EngineConfig().sketch

    def test_custom_config_survives_restart_without_reregistration(
        self, tmp_path, base_table, stream
    ):
        config = EngineConfig(
            default_top_k=4,
            sketch=SketchStoreConfig(seed=7, frequent_capacity=64),
        )
        live = Workspace(data_dir=str(tmp_path),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("live", base_table, engine_config=config)
        live.engine("live")
        live.append("live", stream[:10])
        reference = _payload(live.handle(_request()))
        live.close()

        # No register() at all: snapshot-backed datasets materialise on
        # first use, and must do so under the persisted config.
        restored = Workspace(data_dir=str(tmp_path),
                             ingest=IngestConfig(rebuild_fraction=float("inf")))
        engine = restored.engine("live")
        assert engine.config.sketch.seed == 7
        assert engine.config.sketch.frequent_capacity == 64
        assert engine.config.default_top_k == 4
        assert _payload(restored.handle(_request())) == reference
        restored.close()

    def test_header_config_survives_crash_before_first_snapshot(
        self, tmp_path, base_table, stream
    ):
        """Loader-backed journals have no snapshot until a rebuild: the
        generation header is the custom config's only durable copy, and
        replaying the journalled delta merges under the workspace
        default instead would silently change query results."""
        config = EngineConfig(sketch=SketchStoreConfig(seed=7))
        live = Workspace(data_dir=str(tmp_path),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("live", lambda: base_table, engine_config=config)
        live.engine("live")
        live.append("live", stream[:10])
        reference = _payload(live.handle(_request()))
        live.close()
        # No snapshot was ever written — the scenario under test.
        assert not list(Path(tmp_path, "live").glob("snapshot-*"))

        restored = Workspace(data_dir=str(tmp_path),
                             ingest=IngestConfig(rebuild_fraction=float("inf")))
        restored.register("live", lambda: base_table)  # config omitted
        engine = restored.engine("live")
        assert engine.config.sketch.seed == 7
        assert _payload(restored.handle(_request())) == reference
        restored.close()


class TestRegistrationJournalRace:
    def test_append_racing_a_fresh_registration_waits_for_the_segment(
        self, tmp_path, base_table, stream, monkeypatch
    ):
        """The generation segment is created under the entry lock before
        the entry is usable: an append racing a loader-backed
        registration blocks until the segment exists instead of failing
        with "no journal segment"."""
        workspace = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        real_begin = DatasetJournal.begin_generation
        rotation_started = threading.Event()
        release_rotation = threading.Event()

        def stalled_begin(journal, name, version, **kwargs):
            rotation_started.set()
            assert release_rotation.wait(timeout=30)
            return real_begin(journal, name, version, **kwargs)

        monkeypatch.setattr(DatasetJournal, "begin_generation", stalled_begin)
        register_thread = threading.Thread(
            target=lambda: workspace.register("live", lambda: base_table))
        register_thread.start()
        assert rotation_started.wait(timeout=30)

        results: list = []
        errors: list[Exception] = []

        def append():
            try:
                results.append(workspace.append("live", stream[:3]))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        append_thread = threading.Thread(target=append)
        append_thread.start()
        # The entry is already visible, but its segment isn't durable
        # yet: the append must wait on the registration, not race past
        # it (the old code raised IngestError here).
        append_thread.join(timeout=0.3)
        assert append_thread.is_alive(), errors
        release_rotation.set()
        register_thread.join(timeout=30)
        append_thread.join(timeout=30)

        assert errors == []
        assert results and (results[0].version, results[0].seq) == (1, 1)
        workspace.close()


class TestRecoveryHardening:
    """Failure paths that must never reuse identities or wedge a dataset."""

    def test_corrupt_snapshot_never_reuses_identities(self, tmp_path,
                                                      base_table, stream):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:10])
        assert live.rebuild("live")["seq"] == 2  # writes the snapshot
        live.close()
        snapshot = next(Path(tmp_path, "live").glob("snapshot-*.bin"))
        data = bytearray(snapshot.read_bytes())
        data[len(data) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(data))

        # The compacted rows are unrecoverable; what recovery must NOT
        # do is restart generation 1 at seq 0 and hand out (1, ...)
        # identities again for different data.
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)
        appended = restarted.append("live", stream[:3])
        assert (appended.version, appended.seq) == (2, 1)
        restarted.close()

    def test_closed_workspace_refuses_writes(self, tmp_path, base_table,
                                             stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:3])
        live.close()
        with pytest.raises(ServiceError):
            live.append("live", stream[3:6])
        with pytest.raises(ServiceError):
            live.reload("live")
        with pytest.raises(ServiceError):
            live.register("other", lambda: base_table)
        assert live.rebuild("live") is None
        # The refused writes resurrected no journal handle.
        assert live._journal._handles == {}

    def test_failed_generation_write_unregisters_the_name(
        self, tmp_path, base_table, stream, monkeypatch
    ):
        workspace = Workspace(data_dir=str(tmp_path))
        real_begin = DatasetJournal.begin_generation
        calls = {"n": 0}

        def failing_begin(journal, name, version, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise OSError("disk full")
            return real_begin(journal, name, version, **kwargs)

        monkeypatch.setattr(DatasetJournal, "begin_generation", failing_begin)
        with pytest.raises(OSError):
            workspace.register("live", lambda: base_table)
        # The failed registration left nothing behind: the name is free
        # and immediately functional on retry.
        assert "live" not in workspace
        workspace.register("live", lambda: base_table)
        appended = workspace.append("live", stream[:3])
        assert (appended.version, appended.seq) == (2, 1)
        workspace.close()

    def test_failed_replace_keeps_the_old_dataset_serving(
        self, tmp_path, base_table, stream, monkeypatch
    ):
        """A failed replace rolls back to the previous entry: the old
        generation — in memory and on disk — is untouched, so the
        dataset must keep serving and appending under its old identity
        rather than vanish."""
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:5])
        reference = _payload(live.handle(_request()))

        real_begin = DatasetJournal.begin_generation
        fail = {"armed": True}

        def failing_begin(journal, name, version, **kwargs):
            if fail["armed"]:
                fail["armed"] = False
                raise OSError("disk full")
            return real_begin(journal, name, version, **kwargs)

        monkeypatch.setattr(DatasetJournal, "begin_generation", failing_begin)
        with pytest.raises(OSError):
            live.register("live", lambda: _base_table(), replace=True)

        # The old entry is back: same identity, same payloads (still
        # cache-served — the rollback rightly invalidates nothing), and
        # the journal still appends into the old generation.
        assert live.state("live") == (1, 1)
        after = live.handle(_request())
        assert after.provenance["cache"] == "hit"
        after.provenance = {**after.provenance, "cache": "miss"}
        assert _payload(after) == reference
        appended = live.append("live", stream[5:8])
        assert (appended.version, appended.seq) == (1, 2)
        live.close()
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        restarted.close()

    def test_direct_rebuild_racing_close_discards_itself(
        self, tmp_path, base_table, stream, monkeypatch
    ):
        """close() waits only on the maintenance pool and entry locks —
        a direct rebuild() call mid-off-lock-build escapes both, so its
        swap section must notice the closed workspace and discard
        instead of journalling into a closed journal."""
        import repro.service.workspace as workspace_module

        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:5])

        real_foresight = workspace_module.Foresight
        build_started = threading.Event()
        release_build = threading.Event()

        def stalled_foresight(*args, **kwargs):
            build_started.set()
            assert release_build.wait(timeout=30)
            return real_foresight(*args, **kwargs)

        monkeypatch.setattr(workspace_module, "Foresight", stalled_foresight)
        outcomes: list[dict | None] = []
        worker = threading.Thread(
            target=lambda: outcomes.append(live.rebuild("live")))
        worker.start()
        assert build_started.wait(timeout=30)
        live.close()  # flushes and closes the journal under the rebuild
        monkeypatch.setattr(workspace_module, "Foresight", real_foresight)
        release_build.set()
        worker.join(timeout=30)
        assert not worker.is_alive()

        assert outcomes == [None]  # discarded, nothing journalled
        assert live._journal._handles == {}  # no handle resurrected

    def test_header_config_adopted_when_no_appends_were_journalled(
        self, tmp_path, base_table, stream
    ):
        """Header-only journals (fresh generation, zero appends) carry
        the custom config too: re-registering without one after a
        restart must not fall back to the workspace default."""
        config = EngineConfig(sketch=SketchStoreConfig(seed=7))
        live = Workspace(data_dir=str(tmp_path),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("live", lambda: base_table, engine_config=config)
        live.close()  # crash-equivalent: nothing but the header on disk

        restored = Workspace(data_dir=str(tmp_path),
                             ingest=IngestConfig(rebuild_fraction=float("inf")))
        restored.register("live", lambda: base_table)  # config omitted
        assert restored.engine("live").config.sketch.seed == 7
        # And appends journalled now replay under that config later.
        restored.append("live", stream[:5])
        reference = _payload(restored.handle(_request()))
        restored.close()
        second = Workspace(data_dir=str(tmp_path),
                           ingest=IngestConfig(rebuild_fraction=float("inf")))
        second.register("live", lambda: base_table)
        assert _payload(second.handle(_request())) == reference
        second.close()

    def test_failed_replace_restores_pending_recovery_state(
        self, tmp_path, base_table, stream, monkeypatch
    ):
        """A failed replace of a recovered-but-unregistered dataset must
        re-stash its pending journal state: the rows on disk are intact,
        so a retried loader registration still replays them."""
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:5])  # journalled, then "crash"

        recovered = Workspace(data_dir=str(tmp_path),
                              ingest=IngestConfig(
                                  rebuild_fraction=float("inf")))
        real_begin = DatasetJournal.begin_generation
        fail = {"armed": True}

        def failing_begin(journal, name, version, **kwargs):
            if fail["armed"]:
                fail["armed"] = False
                raise OSError("disk full")
            return real_begin(journal, name, version, **kwargs)

        monkeypatch.setattr(DatasetJournal, "begin_generation", failing_begin)
        with pytest.raises(OSError):
            recovered.register("live", _base_table(), replace=True)

        # The journalled generation still replays on a loader retry —
        # and a concrete table still requires explicit consent.
        with pytest.raises(ServiceError, match="journalled state"):
            recovered.register("live", _base_table())
        recovered.register("live", lambda: base_table)
        assert recovered.state("live") == (1, 1)
        assert recovered.table("live").n_rows == BASE_ROWS + 5
        recovered.close()

    def test_register_racing_close_is_refused(self, tmp_path, base_table,
                                              monkeypatch):
        """close() landing between register()'s entry check and its
        insert must refuse the registration — not let it publish an
        entry and reopen journal handles after the shutdown flush."""
        workspace = Workspace(data_dir=str(tmp_path))
        real_check = Workspace._check_open
        armed = {"v": True}

        def racing_check(self):
            real_check(self)
            if armed["v"]:
                # Deterministically emulate the preemption: close()
                # completes right after the entry check passes.
                armed["v"] = False
                self.close()

        monkeypatch.setattr(Workspace, "_check_open", racing_check)
        with pytest.raises(ServiceError):
            workspace.register("late", lambda: base_table)
        assert "late" not in workspace
        assert workspace._journal._handles == {}

    def test_close_racing_replace_rolls_the_mark_back(
        self, tmp_path, base_table, monkeypatch
    ):
        """close() landing between a replace's supersession mark and its
        install must roll the mark back: a superseded entry left
        current would spin every _locked_entry caller — close()'s own
        flush_all included — forever."""
        workspace = Workspace(data_dir=str(tmp_path))
        workspace.register("live", base_table)

        real_check = Workspace._check_open
        calls = {"n": 0}

        def racing_check(self):
            # Call 1 = register() entry, call 2 = loop pass that marks
            # the old entry, call 3 = the re-check after the mark: the
            # workspace "closes" exactly in that window.
            calls["n"] += 1
            if calls["n"] == 3:
                self._closed = True
            real_check(self)

        monkeypatch.setattr(Workspace, "_check_open", racing_check)
        with pytest.raises(ServiceError, match="closed"):
            workspace.register("live", _base_table(), replace=True)
        monkeypatch.setattr(Workspace, "_check_open", real_check)

        # The mark was rolled back: the old entry is current and
        # lockable — a reader completes instead of spinning.
        assert workspace._entry("live").superseded is False
        result: list[int] = []
        reader = threading.Thread(
            target=lambda: result.append(workspace.table("live").n_rows),
            daemon=True)
        reader.start()
        reader.join(timeout=10)
        assert result == [BASE_ROWS]
        workspace._closed = False  # reopen the simulated close
        workspace.close()


class TestGroupCommit:
    """One fsync may acknowledge many appends — never the reverse.

    Group commit changes *when* the fsync happens (a leader syncs for
    every waiter queued behind it), not *what* durability means: every
    acknowledged append must still be on stable storage, sequence
    numbers must stay dense and per-thread monotone, and a flush racing
    the pipeline must drain it rather than deadlock or drop records.
    """

    N_THREADS = 6
    PER_THREAD = 8

    def _hammer(self, workspace, stream):
        """N threads × 1-row appends; returns per-thread acked seqs."""
        rows = (stream * 2)[: self.N_THREADS * self.PER_THREAD]
        acked: list[list[int]] = [[] for _ in range(self.N_THREADS)]
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_THREADS)

        def appender(index):
            mine = rows[index * self.PER_THREAD:(index + 1) * self.PER_THREAD]
            barrier.wait()
            try:
                for row in mine:
                    acked[index].append(
                        workspace.append("live", [row]).seq)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        workers = [threading.Thread(target=appender, args=(i,))
                   for i in range(self.N_THREADS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert not any(worker.is_alive() for worker in workers)
        assert errors == []
        return acked

    def test_concurrent_appends_stay_gap_free_and_monotone(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table, group_commit=True)
        acked = self._hammer(live, stream)
        total = self.N_THREADS * self.PER_THREAD
        # Each thread saw its own seqs strictly increase, and together
        # they are exactly 1..N: no gap, no duplicate, no invention.
        for seqs in acked:
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
        assert sorted(seq for seqs in acked for seq in seqs) == list(
            range(1, total + 1))
        assert live.state("live") == (1, total)
        stats = live.ingest_stats()["group_commit"]
        assert stats["enabled"] is True
        assert stats["records"] == total
        assert stats["fsyncs_saved"] == stats["records"] - stats["commits"]
        assert 1 <= stats["max_group_size"] <= self.N_THREADS
        live.close()

        # Every acknowledged append replays: identical identity and rows.
        restarted = _open(tmp_path, base_table, group_commit=True)
        assert restarted.state("live") == (1, total)
        assert restarted.table("live").n_rows == BASE_ROWS + total
        restarted.close()

    def test_group_commit_off_path_is_untouched(self, tmp_path, base_table,
                                                stream):
        """Without the knob the journal still fsyncs inline per append
        (append returns no ticket) and reports the pipeline disabled."""
        live = _open(tmp_path, base_table)
        live.append("live", stream[:3])
        stats = live.ingest_stats()["group_commit"]
        assert stats == {"enabled": False, "commits": 0, "records": 0,
                         "fsyncs_saved": 0, "max_group_size": 0}
        live.close()

    def test_flush_racing_group_commit_drains_without_deadlock(
        self, tmp_path, base_table, stream
    ):
        """flush() must drain outstanding commit tickets before its own
        fsync-and-return — concurrently with appenders parked on those
        tickets — and still report the exact response contract."""
        live = _open(tmp_path, base_table, group_commit=True)
        stop = threading.Event()
        flushes: list[dict] = []
        flush_errors: list[Exception] = []

        def flusher():
            try:
                while not stop.is_set():
                    flushes.append(live.flush("live"))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                flush_errors.append(exc)

        worker = threading.Thread(target=flusher)
        worker.start()
        try:
            acked = self._hammer(live, stream)
        finally:
            stop.set()
            worker.join(timeout=60)
        assert not worker.is_alive()
        assert flush_errors == []
        total = self.N_THREADS * self.PER_THREAD
        assert sorted(seq for seqs in acked for seq in seqs) == list(
            range(1, total + 1))
        for flush in flushes:
            assert set(flush) == {"dataset", "version", "seq", "durable"}
            assert flush["durable"] is True
        # The final barrier observes everything.
        assert live.flush("live")["seq"] == total
        live.close()

        restarted = _open(tmp_path, base_table, group_commit=True)
        assert restarted.state("live") == (1, total)
        restarted.close()

    CHILD = """
import json, os, sys, threading
sys.path.insert(0, sys.argv[2])
from repro.data.datasets import make_mixed_table
from repro.ingest import IngestConfig
from repro.service import Workspace

base = make_mixed_table(n_rows={base_rows}, n_numeric=3, n_categorical=2,
                        seed={base_seed})
stream = make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                          seed={stream_seed}).to_records()
workspace = Workspace(
    data_dir=sys.argv[1],
    ingest=IngestConfig(rebuild_fraction=float("inf"), group_commit=True))
workspace.register("live", lambda: base)
N, PER = 4, 6
rows = (stream * 2)[: N * PER]
acked = [[] for _ in range(N)]
barrier = threading.Barrier(N)
def appender(index):
    mine = rows[index * PER:(index + 1) * PER]
    barrier.wait()
    for row in mine:
        acked[index].append(workspace.append("live", [row]).seq)
workers = [threading.Thread(target=appender, args=(i,)) for i in range(N)]
for worker in workers:
    worker.start()
for worker in workers:
    worker.join()
print(json.dumps({{"state": list(workspace.state("live")), "acked": acked}}))
sys.stdout.flush()
os._exit(17)  # die without any cleanup: no close(), no atexit
"""

    def test_acknowledged_group_commits_survive_a_kill(self, tmp_path,
                                                       base_table):
        """SIGKILL-equivalent death right after concurrent group-committed
        appends: every append that returned must be found by replay."""
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = self.CHILD.format(base_rows=BASE_ROWS, base_seed=BASE_SEED,
                                  stream_seed=STREAM_SEED)
        result = subprocess.run(
            [sys.executable, "-c", child, str(tmp_path), src],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONHASHSEED": "0"},
        )
        assert result.returncode == 17, result.stderr
        reported = json.loads(result.stdout.strip().splitlines()[-1])
        total = sum(len(seqs) for seqs in reported["acked"])
        assert sorted(
            seq for seqs in reported["acked"] for seq in seqs
        ) == list(range(1, total + 1))
        assert reported["state"] == [1, total]

        restarted = _open(tmp_path, base_table, group_commit=True)
        assert restarted.state("live") == (1, total)
        assert restarted.table("live").n_rows == BASE_ROWS + total
        restarted.close()


class TestBinarySnapshotTruncation:
    """A truncated binary snapshot must fail closed at *every* offset.

    The codec's framing (magic, section lengths, CRCs) has to catch any
    prefix of a valid snapshot — returning None from ``_read_snapshot``
    so recovery routes into the corrupt-snapshot rotation — never an
    unhandled exception, never a partially-decoded table.
    """

    def test_every_truncation_offset_reads_as_missing(self, tmp_path,
                                                      base_table, stream):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:10])
        assert live.rebuild("live")["seq"] == 2  # writes the snapshot
        live.close()
        snapshot = Path(tmp_path, "live") / "snapshot-00000001.bin"
        data = snapshot.read_bytes()
        assert len(data) > 16

        journal = DatasetJournal(str(tmp_path))
        for cut in range(len(data)):
            snapshot.write_bytes(data[:cut])
            assert journal._read_snapshot("live", 1) is None, (
                f"truncation at byte {cut} decoded"
            )
        # The intact bytes still decode — the sweep tested the codec,
        # not a broken fixture.
        snapshot.write_bytes(data)
        payload = journal._read_snapshot("live", 1)
        journal.close()
        assert payload is not None and payload["version"] == 1

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.95])
    def test_sampled_truncations_recover_via_rotation(self, tmp_path,
                                                      base_table, stream,
                                                      fraction):
        """Full-workspace restarts over sampled cuts: recovery rotates
        to a fresh generation (identities never reused) and the dataset
        keeps serving and appending."""
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:10])
        assert live.rebuild("live")["seq"] == 2  # writes the snapshot
        live.close()
        snapshot = Path(tmp_path, "live") / "snapshot-00000001.bin"
        data = snapshot.read_bytes()
        snapshot.write_bytes(data[: int(len(data) * fraction)])

        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)
        appended = restarted.append("live", stream[:3])
        assert (appended.version, appended.seq) == (2, 1)
        assert restarted.handle(_request()).dataset == "live"
        restarted.close()
