"""Crash-recovery and fault-injection suite for the durable journal.

The contract under test (ISSUE 5): with a ``data_dir``, a restarted
workspace replays the on-disk write-ahead journal to the **exact**
``(version, seq)`` identity and query payloads an uninterrupted process
would serve — and a torn or corrupted journal tail, at *any* byte
offset of the final record, recovers to the last complete record:
never an exception, never invented data.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.data.datasets import make_mixed_table
from repro.ingest import IngestConfig
from repro.ingest.durable import scan_records
from repro.service import InsightRequest, Workspace

#: Shared, deterministic base table + append stream for every scenario.
BASE_SEED, STREAM_SEED = 11, 12
BASE_ROWS = 80


def _base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=3, n_categorical=2,
                            seed=BASE_SEED)


@pytest.fixture(scope="module")
def base_table():
    return _base_table()


@pytest.fixture(scope="module")
def stream(base_table):
    return make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                            seed=STREAM_SEED).to_records()


def _request():
    return InsightRequest(dataset="live", insight_classes=("skew", "outliers"),
                          top_k=3)


def _payload(response) -> str:
    """Canonical response bytes minus wall-clock timing."""
    body = response.to_dict()
    body.pop("timing")
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _open(data_dir, base, **ingest_overrides) -> Workspace:
    defaults = {"rebuild_fraction": float("inf")}
    defaults.update(ingest_overrides)
    workspace = Workspace(data_dir=str(data_dir) if data_dir else None,
                          ingest=IngestConfig(**defaults))
    # Registering over journal-restored state adopts it (the loader only
    # serves future reloads), so restart code is identical to cold-start
    # code — exactly how a production process would boot.
    workspace.register("live", lambda: base)
    return workspace


def _segment_paths(data_dir) -> list[Path]:
    return sorted(Path(data_dir, "live").glob("journal-*.seg"))


class TestRestartReplay:
    def test_restart_after_delta_merges_is_byte_identical(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:12])
        live.append("live", stream[12:20])
        live_response = live.handle(_request())
        # An uninterrupted (never-persisted) twin is the ground truth.
        twin = _open(None, base_table)
        twin.engine("live")
        twin.append("live", stream[:12])
        twin.append("live", stream[12:20])
        assert _payload(live_response) == _payload(twin.handle(_request()))

        # "Crash": the workspace is abandoned mid-flight, never closed.
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == live.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == _payload(live_response)

    def test_restart_with_deferred_appends_only(self, tmp_path, base_table,
                                                stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:10])   # no engine yet: deferred
        assert live.state("live") == (1, 1)
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 1)
        assert restarted.table("live").n_rows == BASE_ROWS + 10
        assert _payload(restarted.handle(_request())) == _payload(
            live.handle(_request())
        )

    def test_cold_build_marker_freezes_the_deferred_rows(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:10])   # deferred
        live.engine("live")                # cold build over base + 10
        live.append("live", stream[10:18])  # delta merge on top
        reference = _payload(live.handle(_request()))
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == reference

    def test_sync_rebuild_compacts_to_a_snapshot(self, tmp_path, base_table,
                                                 stream):
        live = _open(tmp_path, base_table, rebuild_fraction=0.05,
                     background_rebuild=False)
        live.engine("live")
        result = live.append("live", stream[:12])  # 12 > 0.05 * 80
        assert result.applied == "rebuild"
        assert (tmp_path / "live" / "snapshot-00000001.json").exists()
        reference = _payload(live.handle(_request()))

        loads = []

        def counting_loader():
            loads.append(1)
            return _base_table()

        restarted = Workspace(data_dir=str(tmp_path),
                              ingest=IngestConfig(rebuild_fraction=0.05,
                                                  background_rebuild=False))
        restarted.register("live", counting_loader)
        # The snapshot supplies the rows: the loader never runs.
        assert loads == []
        assert restarted.state("live") == (1, 1)
        assert _payload(restarted.handle(_request())) == reference

    def test_background_swap_record_replays(self, tmp_path, base_table,
                                            stream):
        live = _open(tmp_path, base_table, rebuild_fraction=0.1)
        live.engine("live")
        result = live.append("live", stream[:12])  # beyond budget -> bg
        assert result.applied == "delta_merge"
        assert live.wait_for_rebuilds(timeout=30)
        assert live.state("live") == (1, 2)  # the swap minted seq 2
        reference = _payload(live.handle(_request()))
        live.close()

        restarted = _open(tmp_path, base_table, rebuild_fraction=0.1)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == reference

    def test_restart_continues_seq_and_version_counters(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        restarted = _open(tmp_path, base_table)
        appended = restarted.append("live", stream[5:10])
        assert (appended.version, appended.seq) == (1, 2)
        assert restarted.reload("live") == 2  # versions never repeat
        assert restarted.state("live") == (2, 0)

    def test_inline_table_registration_survives_restart(self, tmp_path,
                                                        base_table, stream):
        live = Workspace(data_dir=str(tmp_path))
        live.register("inline", base_table)
        live.append("inline", stream[:6])
        identity = live.state("inline")
        request = InsightRequest(dataset="inline", insight_classes=("skew",),
                                 top_k=3)
        reference = _payload(live.handle(request))

        # No register call at all: the snapshot is self-contained.
        restarted = Workspace(data_dir=str(tmp_path))
        assert "inline" in restarted
        assert restarted.state("inline") == identity
        assert _payload(restarted.handle(request)) == reference

    def test_concrete_table_cannot_silently_discard_journalled_state(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        restarted = Workspace(data_dir=str(tmp_path))
        with pytest.raises(Exception, match="replace=True"):
            restarted.register("live", base_table)
        # The state survives the refusal and replays once a loader (or an
        # explicit replace) arrives.
        restarted.register("live", lambda: base_table)
        assert restarted.state("live") == (1, 1)

    def test_flush_reports_durability(self, tmp_path, base_table, stream):
        durable = _open(tmp_path, base_table, fsync=False)
        durable.append("live", stream[:3])
        flushed = durable.flush("live")
        assert flushed == {"dataset": "live", "version": 1, "seq": 1,
                           "durable": True}
        transient = _open(None, base_table)
        assert transient.flush("live")["durable"] is False


class TestFaultInjection:
    """Damage the journal tail at every byte offset; recovery must hold."""

    N_APPENDS = 3

    @pytest.fixture()
    def journal(self, tmp_path, base_table, stream):
        """A journal of three 2-row deferred appends, plus its tail span."""
        live = _open(tmp_path, base_table)
        for i in range(self.N_APPENDS):
            live.append("live", stream[2 * i: 2 * i + 2])
        live.close()
        (segment,) = _segment_paths(tmp_path)
        data = segment.read_bytes()
        spans = [(start, end) for _p, start, end in scan_records(data)]
        # generation header + one record per append
        assert len(spans) == 1 + self.N_APPENDS
        return tmp_path, segment, data, spans

    def _recovered(self, tmp_path, base_table):
        restarted = _open(tmp_path, base_table)
        return restarted.state("live"), restarted.table("live").n_rows

    def test_truncation_at_every_byte_offset_of_final_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for cut in range(final_start, final_end):
            segment.write_bytes(data[:cut])
            state, n_rows = self._recovered(tmp_path, base_table)
            assert state == (1, self.N_APPENDS - 1), f"cut at byte {cut}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_corruption_at_every_byte_offset_of_final_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for position in range(final_start, final_end):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x5A
            segment.write_bytes(bytes(corrupted))
            state, n_rows = self._recovered(tmp_path, base_table)
            assert state == (1, self.N_APPENDS - 1), f"flip at byte {position}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_mid_journal_corruption_recovers_to_last_complete_record(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        second_start, second_end = spans[2]  # header, append#1, append#2, ...
        corrupted = bytearray(data)
        corrupted[(second_start + second_end) // 2] ^= 0xFF
        segment.write_bytes(bytes(corrupted))
        # Everything after the damage is unusable — recovery stops at the
        # last complete record before it, inventing nothing.
        state, n_rows = self._recovered(tmp_path, base_table)
        assert state == (1, 1)
        assert n_rows == BASE_ROWS + 2

    def test_unreadable_generation_header_starts_fresh(self, journal,
                                                       base_table):
        tmp_path, segment, data, spans = journal
        corrupted = bytearray(data)
        corrupted[spans[0][0]] ^= 0xFF  # destroy the header record
        segment.write_bytes(bytes(corrupted))
        state, n_rows = self._recovered(tmp_path, base_table)
        # Nothing of the generation is trustworthy: recover to the base.
        assert state == (1, 0)
        assert n_rows == BASE_ROWS

    def test_tail_recovery_preserves_query_payload_bytes(
        self, tmp_path, base_table, stream
    ):
        live = _open(tmp_path, base_table)
        live.engine("live")
        live.append("live", stream[:8])
        reference = _payload(live.handle(_request()))  # state at seq 1
        live.append("live", stream[8:16])
        live.close()
        (segment,) = _segment_paths(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the final record
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 1)
        assert _payload(restarted.handle(_request())) == reference

    def test_repair_makes_the_journal_appendable_again(self, journal,
                                                       base_table, stream):
        tmp_path, segment, data, spans = journal
        segment.write_bytes(data[:-5])
        restarted = _open(tmp_path, base_table)
        appended = restarted.append("live", stream[20:24])
        assert (appended.version, appended.seq) == (1, self.N_APPENDS)
        # And the repaired + extended journal replays cleanly once more.
        again = _open(tmp_path, base_table)
        assert again.state("live") == (1, self.N_APPENDS)

    def test_failed_append_rolls_its_torn_bytes_back(self, tmp_path,
                                                     base_table, stream,
                                                     monkeypatch):
        """A failed commit must not leave garbage mid-segment.

        If it did, the *next* successful (acknowledged, fsynced) append
        would land after the garbage — and replay, which stops at the
        first damaged record, would silently drop it.
        """
        import repro.ingest.durable as durable

        live = _open(tmp_path, base_table)
        live.append("live", stream[:3])
        real_fsync = os.fsync
        blown = []

        def failing_fsync(fd):
            if not blown:
                blown.append(True)
                raise OSError(28, "No space left on device")
            return real_fsync(fd)

        monkeypatch.setattr(durable.os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            live.append("live", stream[3:6])
        assert live.state("live") == (1, 1)  # the failed append never landed
        appended = live.append("live", stream[6:9])
        assert (appended.version, appended.seq) == (1, 2)
        monkeypatch.undo()
        live.close()
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert restarted.table("live").n_rows == BASE_ROWS + 6

    def test_orphaned_snapshot_stays_appendable(self, tmp_path, base_table,
                                                stream):
        """Crash between snapshot rename and segment creation: repairable.

        Recovery must recreate the generation segment so the restored
        dataset accepts appends — not serve reads while rejecting every
        write forever.
        """
        live = _open(tmp_path, base_table, rebuild_fraction=0.05,
                     background_rebuild=False)
        live.engine("live")
        live.append("live", stream[:12])  # sync rebuild -> snapshot
        live.close()
        for segment in _segment_paths(tmp_path):
            segment.unlink()  # the crash ate the compaction segment
        restarted = _open(tmp_path, base_table, rebuild_fraction=0.05,
                          background_rebuild=False)
        assert restarted.state("live") == (1, 1)
        appended = restarted.append("live", stream[12:15])
        assert (appended.version, appended.seq) == (1, 2)
        again = _open(tmp_path, base_table, rebuild_fraction=0.05,
                      background_rebuild=False)
        assert again.state("live") == (1, 2)


class TestGenerationRotation:
    """Reload / re-registration must rotate the journal before swapping."""

    def test_reload_rotates_segments_on_disk(self, tmp_path, base_table,
                                             stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        assert len(_segment_paths(tmp_path)) == 1
        live.reload("live")
        (segment,) = _segment_paths(tmp_path)
        assert segment.name.startswith("journal-00000002-")
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)

    def test_stale_generation_deltas_never_replay_onto_the_new_version(
        self, tmp_path, base_table, stream
    ):
        """Regression: crash between generation swap and old-segment cleanup.

        Recovery must pick the newest generation and ignore the stale
        one's deltas entirely — replaying them onto the new version was
        the failure mode the rotate-before-swap ordering exists to
        prevent.
        """
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        (old_segment,) = _segment_paths(tmp_path)
        stale = old_segment.read_bytes()
        live.reload("live")
        # Simulate the crash window: the old generation's segment (with
        # its journalled deltas) is still on disk next to the new one.
        old_segment.write_bytes(stale)
        assert len(_segment_paths(tmp_path)) == 2
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (2, 0)
        assert restarted.table("live").n_rows == BASE_ROWS  # no stale rows

    def test_crashed_inline_reload_never_loses_the_only_copy(
        self, tmp_path, base_table, stream
    ):
        """Regression: rotating an inline-table generation must not destroy
        the old generation's snapshot before the new one is durable.

        Snapshots are per-generation files; a crash after the new
        version's snapshot is written but before its segment exists must
        recover the OLD generation intact (the reload was never
        acknowledged) — not delete both copies.
        """
        import shutil

        live = Workspace(data_dir=str(tmp_path))
        live.register("inline", base_table)
        live.append("inline", stream[:5])
        live.close()
        before = {p.name: p.read_bytes()
                  for p in (tmp_path / "inline").iterdir()}

        other = Workspace(data_dir=str(tmp_path))
        assert other.reload("inline") == 2
        new_snapshot = (tmp_path / "inline" / "snapshot-00000002.json"
                        ).read_bytes()
        other.close()

        # Reconstruct the crash window: v1 fully intact, the v2 snapshot
        # landed, the v2 segment never did.
        shutil.rmtree(tmp_path / "inline")
        (tmp_path / "inline").mkdir()
        for name, data in before.items():
            (tmp_path / "inline" / name).write_bytes(data)
        (tmp_path / "inline" / "snapshot-00000002.json").write_bytes(
            new_snapshot)

        restarted = Workspace(data_dir=str(tmp_path))
        assert restarted.state("inline") == (1, 1)  # old generation intact
        assert restarted.table("inline").n_rows == BASE_ROWS + 5
        # And the dataset still accepts appends after the repair.
        appended = restarted.append("inline", stream[5:8])
        assert (appended.version, appended.seq) == (1, 2)

    def test_replace_registration_rotates_too(self, tmp_path, base_table,
                                              stream):
        live = _open(tmp_path, base_table)
        live.append("live", stream[:5])
        live.register("live", base_table, replace=True)
        assert live.state("live") == (2, 0)
        restarted = Workspace(data_dir=str(tmp_path))
        assert restarted.state("live") == (2, 0)
        assert restarted.table("live").n_rows == BASE_ROWS


class TestKillAndRestart:
    """The acceptance e2e: a SIGKILL-equivalent death, then recovery."""

    CHILD = """
import json, os, sys
sys.path.insert(0, sys.argv[2])
from repro.data.datasets import make_mixed_table
from repro.ingest import IngestConfig
from repro.service import InsightRequest, Workspace

base = make_mixed_table(n_rows={base_rows}, n_numeric=3, n_categorical=2,
                        seed={base_seed})
stream = make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                          seed={stream_seed}).to_records()
workspace = Workspace(data_dir=sys.argv[1],
                      ingest=IngestConfig(rebuild_fraction=float("inf")))
workspace.register("live", lambda: base)
workspace.engine("live")
workspace.append("live", stream[:9])
workspace.append("live", stream[9:17])
response = workspace.handle(InsightRequest(
    dataset="live", insight_classes=("skew", "outliers"), top_k=3))
body = response.to_dict()
body.pop("timing")
print(json.dumps({{
    "state": list(workspace.state("live")),
    "payload": json.dumps(body, sort_keys=True, separators=(",", ":")),
}}))
sys.stdout.flush()
os._exit(17)  # die without any cleanup: no close(), no atexit
"""

    def test_kill_and_restart_is_byte_identical(self, tmp_path, base_table,
                                                stream):
        src = str(Path(__file__).resolve().parents[2] / "src")
        child = self.CHILD.format(base_rows=BASE_ROWS, base_seed=BASE_SEED,
                                  stream_seed=STREAM_SEED)
        result = subprocess.run(
            [sys.executable, "-c", child, str(tmp_path), src],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONHASHSEED": "0"},
        )
        assert result.returncode == 17, result.stderr
        reported = json.loads(result.stdout.strip().splitlines()[-1])

        # The uninterrupted twin, run entirely in this process.
        twin = _open(None, base_table)
        twin.engine("live")
        twin.append("live", stream[:9])
        twin.append("live", stream[9:17])
        twin_payload = _payload(twin.handle(_request()))
        assert reported["state"] == [1, 2]
        assert reported["payload"] == twin_payload

        # Restart over the dead process's data_dir.
        restarted = _open(tmp_path, base_table)
        assert restarted.state("live") == (1, 2)
        assert _payload(restarted.handle(_request())) == twin_payload
