"""Workspace.append: (version, seq) identity, atomic swaps, cache hygiene."""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import EngineConfig
from repro.data.datasets import make_mixed_table
from repro.errors import DeltaValidationError, UnknownDatasetError
from repro.ingest import IngestConfig
from repro.service import InsightRequest, Workspace


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n_rows=300, n_numeric=4, n_categorical=2, seed=21)


@pytest.fixture(scope="module")
def delta_rows(table):
    return make_mixed_table(n_rows=40, n_numeric=4, n_categorical=2,
                            seed=22).to_records()


@pytest.fixture()
def workspace(table):
    workspace = Workspace()
    workspace.register("live", lambda: table)
    return workspace


def _request():
    return InsightRequest(dataset="live", insight_classes=("skew",), top_k=3)


class TestAppendSemantics:
    def test_append_bumps_seq_not_version(self, workspace, delta_rows):
        workspace.engine("live")
        result = workspace.append("live", delta_rows)
        assert (result.version, result.seq) == (1, 1)
        assert result.applied == "delta_merge"
        assert result.rows_appended == len(delta_rows)
        assert workspace.state("live") == (1, 1)
        assert workspace.engine("live").table.n_rows == 300 + len(delta_rows)

    def test_no_engine_rebuild_on_delta_path(self, workspace, delta_rows):
        workspace.engine("live")
        assert workspace.engine_builds("live") == 1
        workspace.append("live", delta_rows)
        assert workspace.engine_builds("live") == 1  # merged, not rebuilt
        stats = workspace.ingest_stats()
        assert stats["totals"]["delta_merges"] == 1
        assert stats["totals"]["rebuilds"] == 0

    def test_budget_exhaustion_triggers_sync_rebuild_when_opted_in(
        self, table, delta_rows
    ):
        workspace = Workspace(ingest=IngestConfig(
            rebuild_fraction=0.05, background_rebuild=False))
        workspace.register("live", lambda: table)
        workspace.engine("live")
        result = workspace.append("live", delta_rows)  # 40 > 0.05 * 300
        assert result.applied == "rebuild"
        assert workspace.engine_builds("live") == 2
        assert workspace.ingest_stats()["totals"]["rebuilds"] == 1
        # The rebuilt store has no stale delta rows.
        assert workspace.engine("live").store.stats.delta_rows == 0

    def test_budget_exhaustion_schedules_background_rebuild(
        self, table, delta_rows
    ):
        """The default: the triggering append never pays for the rebuild.

        It still delta-merges (applied="delta_merge"), and the worker's
        atomic swap mints a sequence number of its own so the rebuilt
        engine never shares a (version, seq) identity with the merged
        one it replaces.
        """
        workspace = Workspace(ingest=IngestConfig(rebuild_fraction=0.05))
        workspace.register("live", lambda: table)
        workspace.engine("live")
        result = workspace.append("live", delta_rows)  # 40 > 0.05 * 300
        assert result.applied == "delta_merge"
        assert (result.version, result.seq) == (1, 1)
        assert workspace.wait_for_rebuilds(timeout=30)
        assert workspace.state("live") == (1, 2)  # the swap minted seq 2
        assert workspace.engine_builds("live") == 2
        stats = workspace.ingest_stats()
        assert stats["totals"]["rebuilds"] == 1
        assert stats["totals"]["bg_rebuilds"] == 1
        assert stats["datasets"]["live"]["rebuild_running"] is False
        # The rebuilt store has no stale delta rows.
        assert workspace.engine("live").store.stats.delta_rows == 0
        workspace.close()

    def test_append_before_engine_build_is_deferred(self, workspace,
                                                    delta_rows):
        result = workspace.append("live", delta_rows)
        assert result.applied == "deferred"
        assert workspace.engine_builds("live") == 0
        # The first (lazy) build sketches base + deferred rows at once.
        engine = workspace.engine("live")
        assert engine.table.n_rows == 300 + len(delta_rows)
        assert engine.store.stats.delta_rows == 0

    def test_append_to_exact_mode_engine(self, table, delta_rows):
        workspace = Workspace()
        workspace.register("live", lambda: table,
                           engine_config=EngineConfig(mode="exact"))
        workspace.engine("live")
        result = workspace.append("live", delta_rows)
        assert result.applied == "deferred"
        engine = workspace.engine("live")
        assert engine.store is None
        assert engine.table.n_rows == 300 + len(delta_rows)

    def test_rejected_batch_changes_nothing(self, workspace, delta_rows):
        workspace.engine("live")
        before = workspace.state("live")
        with pytest.raises(DeltaValidationError):
            workspace.append("live", [{"no_such_column": 1}])
        assert workspace.state("live") == before
        assert workspace.engine("live").table.n_rows == 300
        assert workspace.ingest_stats()["totals"]["appends"] == 0

    def test_unknown_dataset(self, workspace, delta_rows):
        with pytest.raises(UnknownDatasetError):
            workspace.append("nope", delta_rows)

    def test_reload_resets_journal_and_keeps_lifetime_totals(
        self, workspace, delta_rows
    ):
        workspace.engine("live")
        workspace.append("live", delta_rows)
        assert workspace.state("live") == (1, 1)
        version = workspace.reload("live")
        assert workspace.state("live") == (version, 0)
        assert workspace.engine("live").table.n_rows == 300  # loader re-ran
        totals = workspace.ingest_stats()["totals"]
        assert totals["rows_appended"] == len(delta_rows)  # monotone


class TestServingIntegration:
    def test_responses_carry_the_snapshot_identity(self, workspace,
                                                   delta_rows):
        response = workspace.handle(_request())
        assert (response.dataset_version, response.dataset_seq) == (1, 0)
        workspace.append("live", delta_rows)
        response = workspace.handle(_request())
        assert (response.dataset_version, response.dataset_seq) == (1, 1)

    def test_append_invalidates_only_that_dataset(self, workspace, table,
                                                  delta_rows):
        workspace.register("other", lambda: table)
        workspace.handle(_request())
        other_request = InsightRequest(dataset="other",
                                       insight_classes=("skew",), top_k=3)
        workspace.handle(other_request)
        workspace.append("live", delta_rows)
        # "other" still served from cache; "live" recomputes.
        assert workspace.handle(other_request).provenance["cache"] == "hit"
        fresh = workspace.handle(_request())
        assert fresh.provenance["cache"] == "miss"
        assert fresh.dataset_seq == 1
        # And the new snapshot caches normally.
        assert workspace.handle(_request()).provenance["cache"] == "hit"

    def test_append_deterministic_across_workspaces(self, table, delta_rows):
        def serve_after_append():
            workspace = Workspace()
            workspace.register("live", lambda: table)
            workspace.engine("live")
            workspace.append("live", delta_rows)
            return workspace.handle(_request())

        a, b = serve_after_append(), serve_after_append()
        assert a.to_dict()["carousels"] == b.to_dict()["carousels"]

    def test_concurrent_queries_see_consistent_snapshots(self, table,
                                                         delta_rows):
        """No torn reads: every racing response equals the reference
        response for the (version, seq) it claims."""
        reference = Workspace()
        reference.register("live", lambda: table)
        reference.engine("live")
        expected = {0: reference.handle(_request())}
        reference.append("live", delta_rows)
        expected[1] = reference.handle(_request())

        workspace = Workspace()
        workspace.register("live", lambda: table)
        workspace.engine("live")
        responses, errors = [], []
        stop = threading.Event()

        def query_loop():
            try:
                while not stop.is_set():
                    responses.append(workspace.handle(_request()))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        workspace.append("live", delta_rows)
        responses.append(workspace.handle(_request()))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        seqs = {response.dataset_seq for response in responses}
        assert seqs <= {0, 1}
        assert 1 in seqs  # the post-append query saw the new snapshot
        for response in responses:
            want = expected[response.dataset_seq]
            assert response.to_dict()["carousels"] == (
                want.to_dict()["carousels"]
            )
            assert response.dataset_version == want.dataset_version
