"""Incremental SketchStore maintenance: partials, merge, accuracy budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import ExecutorConfig, create_executor
from repro.data.datasets import make_mixed_table
from repro.ingest import (
    DeltaBatch,
    IngestConfig,
    IngestLog,
    build_delta_partials,
    merge_delta,
    should_rebuild,
)
from repro.sketch.store import SketchStore


@pytest.fixture(scope="module")
def base_table():
    return make_mixed_table(n_rows=500, n_numeric=5, n_categorical=2, seed=9)


@pytest.fixture(scope="module")
def delta_table(base_table):
    rows = make_mixed_table(n_rows=120, n_numeric=5, n_categorical=2,
                            seed=10).to_records()
    return DeltaBatch.from_records("d", rows, base_table.schema).table


@pytest.fixture()
def store(base_table):
    return SketchStore(base_table)


def _merged(store, base_table, delta_table):
    partials = build_delta_partials(delta_table, store, store.executor)
    new_table = base_table.concat(delta_table)
    return merge_delta(store, new_table, delta_table.n_rows, partials)


class TestDeltaPartials:
    def test_partials_mirror_base_bundle_shape(self, store, delta_table):
        partials = build_delta_partials(delta_table, store, store.executor)
        for name, partial in partials.items():
            base = store.column_sketches(name)
            for attribute in ("moments", "quantiles", "frequent",
                              "entropy", "countmin"):
                base_has = getattr(base, attribute) is not None
                partial_has = getattr(partial, attribute) is not None
                assert partial_has == base_has, (name, attribute)
            assert partial.hyperplane is None

    def test_parallel_partials_match_serial(self, store, delta_table):
        serial = build_delta_partials(delta_table, store, store.executor)
        executor = create_executor(ExecutorConfig(max_workers=4))
        try:
            parallel = build_delta_partials(delta_table, store, executor)
        finally:
            executor.close()
        for name in serial:
            s, p = serial[name], parallel[name]
            if s.moments is not None:
                assert s.moments.mean() == p.moments.mean()
                assert s.moments.count == p.moments.count
            if s.frequent is not None:
                assert s.frequent.top_k(5) == p.frequent.top_k(5)


class TestMergeDelta:
    def test_moments_exact_after_merge(self, store, base_table, delta_table):
        merged = _merged(store, base_table, delta_table)
        for name in base_table.numeric_names():
            combined = np.concatenate([
                base_table.numeric_column(name).valid_values(),
                delta_table.numeric_column(name).valid_values(),
            ])
            assert merged.approx_mean(name) == pytest.approx(combined.mean())
            assert merged.approx_variance(name) == pytest.approx(
                combined.var(), rel=1e-9
            )

    def test_quantiles_within_bound_after_merge(self, store, base_table,
                                                delta_table):
        merged = _merged(store, base_table, delta_table)
        epsilon = store.config.quantile_epsilon
        name = base_table.numeric_names()[0]
        combined = np.sort(np.concatenate([
            base_table.numeric_column(name).valid_values(),
            delta_table.numeric_column(name).valid_values(),
        ]))
        n = combined.size
        for q in (0.25, 0.5, 0.75):
            estimate = merged.approx_quantile(name, q)
            rank = np.searchsorted(combined, estimate)
            assert abs(rank - q * n) <= 2 * epsilon * n + 2

    def test_frequent_and_countmin_absorb_delta(self, store, base_table,
                                                delta_table):
        merged = _merged(store, base_table, delta_table)
        name = base_table.categorical_names()[0]
        label, _ = merged.approx_top_values(name, 1)[0]
        truth = (base_table.categorical_column(name).valid_labels()
                 + delta_table.categorical_column(name).valid_labels())
        true_count = truth.count(label)
        # Misra-Gries never overcounts; Count-Min never undercounts.
        assert merged.approx_top_values(name, 1)[0][1] <= true_count
        assert merged.approx_count(name, label) >= true_count

    def test_copy_on_merge_isolates_the_old_store(self, store, base_table,
                                                  delta_table):
        name = base_table.numeric_names()[0]
        before_mean = store.approx_mean(name)
        before_count = store.column_sketches(name).moments.count
        merged = _merged(store, base_table, delta_table)
        # The old store is byte-for-byte what it was: in-flight queries
        # holding it keep a consistent view.
        assert store.approx_mean(name) == before_mean
        assert store.column_sketches(name).moments.count == before_count
        assert store.table.n_rows == base_table.n_rows
        assert merged.table.n_rows == base_table.n_rows + delta_table.n_rows

    def test_hyperplane_signatures_shared_not_rebuilt(self, store, base_table,
                                                      delta_table):
        merged = _merged(store, base_table, delta_table)
        name = base_table.numeric_names()[0]
        assert merged.column_sketches(name).hyperplane is (
            store.column_sketches(name).hyperplane
        )
        assert merged.sketcher is store.sketcher

    def test_sample_indices_cover_delta_rows(self, store, base_table,
                                             delta_table):
        merged = _merged(store, base_table, delta_table)
        indices = merged.sample_indices
        assert indices.max() >= base_table.n_rows  # some appended row sampled
        assert indices.max() < merged.table.n_rows
        assert len(np.unique(indices)) == len(indices)
        # Sample table materialises over the grown table without error.
        assert merged.sample_table().n_rows == len(indices)

    def test_delta_accounting(self, store, base_table, delta_table):
        merged = _merged(store, base_table, delta_table)
        assert merged.stats.delta_rows == delta_table.n_rows
        assert merged.stats.delta_batches == 1
        assert merged.stats.n_rows == base_table.n_rows + delta_table.n_rows
        twice = merge_delta(
            merged,
            merged.table.concat(delta_table),
            delta_table.n_rows,
            build_delta_partials(delta_table, merged, merged.executor),
        )
        assert twice.stats.delta_rows == 2 * delta_table.n_rows
        assert twice.stats.delta_batches == 2

    def test_merge_is_deterministic(self, store, base_table, delta_table):
        a = _merged(store, base_table, delta_table)
        b = _merged(SketchStore(base_table), base_table, delta_table)
        name = base_table.numeric_names()[0]
        assert a.approx_quantile(name, 0.5) == b.approx_quantile(name, 0.5)
        assert np.array_equal(a.sample_indices, b.sample_indices)


class TestAccuracyBudget:
    def test_budget_counts_from_base_rows(self):
        log = IngestLog()
        log.mark_rebuilt(1000)
        config = IngestConfig(rebuild_fraction=0.5)
        assert not should_rebuild(log, 500, config)
        assert should_rebuild(log, 501, config)
        log.append(400, "delta_merge", 1400)
        assert should_rebuild(log, 101, config)
        assert not should_rebuild(log, 100, config)

    def test_rebuild_resets_the_budget(self):
        log = IngestLog()
        log.mark_rebuilt(1000)
        log.append(600, "rebuild", 1600)
        assert log.rows_since_rebuild == 0
        assert log.base_rows == 1600
        assert log.rebuilds == 1

    def test_no_budget_before_first_build(self):
        log = IngestLog()
        assert not should_rebuild(log, 10**9, IngestConfig())

    def test_zero_fraction_always_rebuilds(self):
        log = IngestLog()
        log.mark_rebuilt(100)
        assert should_rebuild(log, 1, IngestConfig(rebuild_fraction=0.0))

    def test_seq_is_monotone_and_gap_free(self):
        log = IngestLog()
        log.mark_rebuilt(100)
        seqs = [log.append(1, "delta_merge", 100 + i + 1).seq
                for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert log.seq == 5
        assert log.counters()["rows_appended"] == 5
