"""DeltaBatch validation: the type / arity / missing-value gate."""

from __future__ import annotations

import pytest

from repro.errors import DeltaValidationError
from repro.data import DataTable
from repro.ingest import DeltaBatch, MAX_BATCH_ROWS


@pytest.fixture(scope="module")
def base_table() -> DataTable:
    return DataTable.from_columns(
        {
            "height": [1.62, 1.75, 1.80, 1.68],
            "city": ["Oslo", "Paris", "Paris", "Lima"],
            "smoker": [True, False, False, True],
        },
        name="people",
    )


class TestValidBatches:
    def test_materialises_with_base_schema(self, base_table):
        batch = DeltaBatch.from_records(
            "people",
            [{"height": 1.9, "city": "Rome", "smoker": False},
             {"height": "1.55", "city": "Oslo", "smoker": "yes"}],
            base_table.schema,
        )
        assert batch.n_rows == 2
        assert batch.table.schema == base_table.schema
        # Strings parsed under the column's kind, not re-inferred.
        assert batch.table.numeric_column("height").valid_values().tolist() == [
            1.9, 1.55
        ]
        assert batch.table.categorical_column("city").labels() == ["Rome", "Oslo"]

    def test_missing_values_allowed(self, base_table):
        batch = DeltaBatch.from_records(
            "people",
            [{"height": None, "city": "Rome"},            # smoker absent
             {"height": 2.0, "city": "", "smoker": None}],  # "" is missing
            base_table.schema,
        )
        assert batch.n_rows == 2
        assert batch.table.column("smoker").missing_count() == 2
        assert batch.table.column("height").missing_count() == 1
        assert batch.table.column("city").missing_count() == 1

    def test_concat_extends_base(self, base_table):
        batch = DeltaBatch.from_records(
            "people",
            [{"height": 1.7, "city": "Tokyo", "smoker": False}],
            base_table.schema,
        )
        combined = base_table.concat(batch.table)
        assert combined.n_rows == 5
        # New categorical level extends the category list.
        assert "Tokyo" in combined.categorical_column("city").categories


class TestRejectedBatches:
    def test_empty_batch(self, base_table):
        with pytest.raises(DeltaValidationError):
            DeltaBatch.from_records("people", [], base_table.schema)

    def test_unknown_column(self, base_table):
        with pytest.raises(DeltaValidationError, match="unknown column"):
            DeltaBatch.from_records(
                "people", [{"heigth": 1.7}], base_table.schema
            )

    def test_type_violation_numeric(self, base_table):
        with pytest.raises(DeltaValidationError, match="not numeric"):
            DeltaBatch.from_records(
                "people", [{"height": "tall"}], base_table.schema
            )

    def test_type_violation_boolean(self, base_table):
        with pytest.raises(DeltaValidationError, match="not boolean"):
            DeltaBatch.from_records(
                "people", [{"smoker": "maybe"}], base_table.schema
            )

    def test_container_is_not_a_label(self, base_table):
        with pytest.raises(DeltaValidationError, match="categorical"):
            DeltaBatch.from_records(
                "people", [{"city": ["Oslo"]}], base_table.schema
            )

    def test_all_problems_reported(self, base_table):
        with pytest.raises(DeltaValidationError) as info:
            DeltaBatch.from_records(
                "people",
                [{"height": "x"}, {"smoker": "nah"}, {"bogus": 1}],
                base_table.schema,
            )
        assert len(info.value.problems) == 3

    def test_non_record_row(self, base_table):
        with pytest.raises(DeltaValidationError, match="not a record"):
            DeltaBatch.from_records("people", [[1, 2, 3]], base_table.schema)

    def test_oversized_batch(self, base_table):
        rows = [{"height": 1.0}] * (MAX_BATCH_ROWS + 1)
        with pytest.raises(DeltaValidationError, match="per-batch limit"):
            DeltaBatch.from_records("people", rows, base_table.schema)

    def test_rejection_is_all_or_nothing(self, base_table):
        # One bad row in a batch of two: nothing materialises.
        with pytest.raises(DeltaValidationError):
            DeltaBatch.from_records(
                "people",
                [{"height": 1.7}, {"height": "bad"}],
                base_table.schema,
            )
