"""Replication suite: the journal feed and in-process read replicas.

The contract under test (ISSUE 10): a replica tailing a primary's
journal through :class:`JournalFeed` and applying records through the
restart-replay code path is **byte-identical** to a primary restarted
at the same ``(version, seq)`` — and a damaged feed tail, at *any*
byte offset of the final record, leaves the replica at the last
complete record: never an exception, never invented data.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.data.datasets import make_mixed_table
from repro.errors import IngestError, ReplicaReadOnlyError, ServiceError
from repro.ingest import IngestConfig
from repro.ingest.durable import FeedPosition, JournalFeed, scan_records
from repro.service import (
    InsightRequest,
    LocalFeedSource,
    ReplicaWorkspace,
    Workspace,
)

#: Shared, deterministic base table + append stream for every scenario.
BASE_SEED, STREAM_SEED = 11, 12
BASE_ROWS = 80


@pytest.fixture(scope="module")
def base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=3, n_categorical=2,
                            seed=BASE_SEED)


@pytest.fixture(scope="module")
def stream(base_table):
    return make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                            seed=STREAM_SEED).to_records()


def _request():
    return InsightRequest(dataset="live", insight_classes=("skew", "outliers"),
                          top_k=3)


def _payload(response) -> str:
    """Canonical response bytes minus wall-clock timing."""
    body = response.to_dict()
    body.pop("timing")
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _open(data_dir, base, **ingest_overrides) -> Workspace:
    defaults = {"rebuild_fraction": float("inf")}
    defaults.update(ingest_overrides)
    workspace = Workspace(data_dir=str(data_dir) if data_dir else None,
                          ingest=IngestConfig(**defaults))
    # Concrete-table registration journals the base rows themselves, so
    # the durable state is self-contained — the precondition for
    # replication (a replica has no loader to supply base rows).
    workspace.register("live", base)
    return workspace


def _reopen(data_dir, **ingest_overrides) -> Workspace:
    """A restarted primary: the self-contained snapshot needs no register."""
    defaults = {"rebuild_fraction": float("inf")}
    defaults.update(ingest_overrides)
    return Workspace(data_dir=str(data_dir),
                     ingest=IngestConfig(**defaults))


def _replica(data_dir) -> ReplicaWorkspace:
    return ReplicaWorkspace(LocalFeedSource(str(data_dir)))


class TestJournalFeed:
    """The tailable cursor-positioned view over a data directory."""

    def test_no_position_always_bootstraps(self, tmp_path, base_table,
                                           stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        batch = feed.poll("live")
        assert batch is not None
        assert batch.reset is not None
        assert batch.records == []
        assert batch.position == FeedPosition(1, 1)
        assert batch.primary_seq == 1
        assert batch.more is False

    def test_unknown_dataset_is_none(self, tmp_path):
        assert JournalFeed(str(tmp_path)).poll("ghost") is None

    def test_caught_up_cursor_gets_an_empty_batch(self, tmp_path, base_table,
                                                  stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        batch = feed.poll("live", FeedPosition(1, 1))
        assert batch.reset is None
        assert batch.records == []
        assert batch.position == FeedPosition(1, 1)
        assert batch.more is False

    def test_incremental_records_after_the_cursor(self, tmp_path, base_table,
                                                  stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        position = feed.poll("live").position
        primary.append("live", stream[4:8])
        primary.append("live", stream[8:12])
        batch = feed.poll("live", position)
        assert batch.reset is None
        assert [r["seq"] for r in batch.records] == [2, 3]
        assert batch.position == FeedPosition(1, 3)
        assert batch.primary_seq == 3

    def test_max_records_cuts_and_resumes(self, tmp_path, base_table, stream):
        primary = _open(tmp_path, base_table)
        for i in range(4):
            primary.append("live", stream[2 * i: 2 * i + 2])
        feed = JournalFeed(str(tmp_path))
        position = FeedPosition(1, 0)
        seqs = []
        for _ in range(10):
            batch = feed.poll("live", position, max_records=1)
            assert batch.reset is None
            seqs.extend(r["seq"] for r in batch.records)
            position = batch.position
            if not batch.more:
                break
        assert seqs == [1, 2, 3, 4]
        assert position == FeedPosition(1, 4)

    def test_max_records_below_one_is_refused(self, tmp_path):
        with pytest.raises(IngestError, match="max_records"):
            JournalFeed(str(tmp_path)).poll("live", max_records=0)

    def test_version_change_forces_a_reset(self, tmp_path, base_table,
                                           stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        position = feed.poll("live").position
        primary.reload("live")  # bumps the generation: version 2
        batch = feed.poll("live", position)
        assert batch.reset is not None
        assert batch.position.version == 2

    def test_compaction_past_the_cursor_forces_a_reset(self, tmp_path,
                                                       base_table, stream):
        primary = _open(tmp_path, base_table, background_rebuild=False)
        primary.engine("live")
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        stale = FeedPosition(1, 0)  # needs records the snapshot will eat
        primary.rebuild("live")  # compacts: new segment based at the tip
        batch = feed.poll("live", stale)
        assert batch.reset is not None
        assert batch.reset.snapshot is not None

    def test_cursor_ahead_of_the_tip_forces_a_reset(self, tmp_path,
                                                    base_table, stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        feed = JournalFeed(str(tmp_path))
        batch = feed.poll("live", FeedPosition(1, 99))
        assert batch.reset is not None
        assert batch.position == FeedPosition(1, 1)

    def test_position_token_round_trip(self):
        assert FeedPosition.parse("3:17") == FeedPosition(3, 17)
        assert FeedPosition.parse(FeedPosition(3, 17).token()) == \
            FeedPosition(3, 17)
        with pytest.raises(ValueError):
            FeedPosition.parse("17")
        with pytest.raises(ValueError):
            FeedPosition.parse("a:b")


class TestReplicaByteIdentity:
    """A replica equals a restarted primary at the same position."""

    def test_deferred_appends_replicate_byte_identically(
        self, tmp_path, base_table, stream
    ):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:6])
        primary.append("live", stream[6:12])
        replica = _replica(tmp_path)
        applied = replica.sync()
        assert applied == {"live": 1}  # one bootstrap reset
        assert replica.state("live") == (1, 2)
        restarted = _reopen(tmp_path)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))

    def test_delta_merge_appends_replicate_byte_identically(
        self, tmp_path, base_table, stream
    ):
        primary = _open(tmp_path, base_table)
        primary.engine("live")
        primary.append("live", stream[:6])
        replica = _replica(tmp_path)
        replica.sync()
        # Incremental catch-up: new records flow through ReplayMachine.
        primary.append("live", stream[6:14])
        assert replica.sync() == {"live": 1}
        assert replica.state("live") == (1, 2)
        restarted = _reopen(tmp_path)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))

    def test_appends_after_a_local_query_drop_the_ephemeral_engine(
        self, tmp_path, base_table, stream
    ):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.sync()
        replica.handle(_request())  # builds a local (ephemeral) engine
        primary.append("live", stream[4:8])  # deferred on the primary
        replica.sync()
        # A primary restarted here lazily rebuilds over the full table;
        # the replica must answer with those exact bytes, not with the
        # pre-append engine plus a delta.
        restarted = _reopen(tmp_path)
        assert replica.state("live") == restarted.state("live") == (1, 2)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))

    def test_reset_after_reload_converges(self, tmp_path, base_table,
                                          stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.sync()
        primary.reload("live")
        primary.append("live", stream[4:8])
        replica.sync()
        assert replica.state("live") == (2, 1)
        stats = replica.ingest_stats()["replica"]["datasets"]["live"]
        assert stats["resets"] == 2  # bootstrap + generation change
        restarted = _reopen(tmp_path)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))


class TestReplicaReadOnly:
    def test_writes_are_refused_until_promote(self, tmp_path, base_table,
                                              stream):
        _open(tmp_path, base_table).append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.sync()
        for operation in (
            lambda: replica.append("live", stream[4:6]),
            lambda: replica.register("other", lambda: base_table),
            lambda: replica.reload("live"),
            lambda: replica.rebuild("live"),
        ):
            with pytest.raises(ReplicaReadOnlyError):
                operation()
        # Reads always work.
        assert replica.handle(_request()).dataset == "live"

    def test_promote_makes_the_replica_writable(self, tmp_path, base_table,
                                                stream):
        _open(tmp_path, base_table).append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.sync()
        assert replica.promoted is False
        replica.promote()
        replica.promote()  # idempotent
        assert replica.promoted is True
        result = replica.append("live", stream[4:8])
        assert (result.version, result.seq) == (1, 2)

    def test_auto_promote_when_the_primary_is_unreachable(self):
        class DeadSource:
            def dataset_names(self):
                raise ServiceError("primary unreachable")

            def poll(self, name, position, max_records):  # pragma: no cover
                raise ServiceError("primary unreachable")

            def close(self):
                pass

        replica = ReplicaWorkspace(DeadSource())
        replica.start_tailing(interval=0.01, promote_after=0.05)
        deadline = time.monotonic() + 10.0
        while not replica.promoted and time.monotonic() < deadline:
            time.sleep(0.01)
        assert replica.promoted is True
        replica.close()


class TestReplicaLagAndStats:
    def test_lag_counts_unapplied_records(self, tmp_path, base_table,
                                          stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.sync()
        assert replica.replica_lag() == {"live": 0}
        primary.append("live", stream[4:8])
        primary.append("live", stream[8:12])
        # The lag becomes visible on the next poll even when capped.
        replica._max_batch_records = 1
        replica.sync()
        assert replica.replica_lag() == {"live": 0}  # loop drains `more`
        stats = replica.ingest_stats()["replica"]
        assert stats["promoted"] is False
        assert stats["tailing"] is False
        live = stats["datasets"]["live"]
        assert (live["version"], live["seq"]) == (1, 3)
        assert live["primary_seq"] == 3
        assert live["lag_seq"] == 0
        assert live["applied_records"] == 2
        assert live["resets"] == 1
        assert live["last_error"] is None

    def test_background_tailer_catches_up(self, tmp_path, base_table,
                                          stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        replica = _replica(tmp_path)
        replica.start_tailing(interval=0.02)
        try:
            primary.append("live", stream[4:8])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if replica.replica_lag().get("live") == 0 and \
                        replica.ingest_stats()["replica"]["datasets"].get(
                            "live", {}).get("seq") == 2:
                    break
                time.sleep(0.02)
            assert replica.state("live") == (1, 2)
        finally:
            replica.close()


class FlakySource(LocalFeedSource):
    """A feed source whose transport dies after ``fail_after`` polls."""

    def __init__(self, data_dir: str, fail_after: int):
        super().__init__(data_dir)
        self.polls = 0
        self.fail_after = fail_after
        self.healed = False

    def poll(self, name, position, max_records):
        self.polls += 1
        if not self.healed and self.polls > self.fail_after:
            raise ServiceError("primary 127.0.0.1:0 is unreachable")
        return super().poll(name, position, max_records)


class TestReplicaFaultTolerance:
    def test_killed_stream_rejoins_from_its_cursor(self, tmp_path,
                                                   base_table, stream):
        primary = _open(tmp_path, base_table)
        primary.append("live", stream[:4])
        source = FlakySource(str(tmp_path), fail_after=1)
        replica = ReplicaWorkspace(source)
        replica.sync()  # poll 1: bootstrap reset lands
        assert replica.state("live") == (1, 1)
        primary.append("live", stream[4:8])
        replica.sync()  # transport down: the pass survives
        stats = replica.ingest_stats()["replica"]["datasets"]["live"]
        assert "unreachable" in stats["last_error"]
        assert replica.state("live") == (1, 1)  # nothing invented
        source.healed = True
        assert replica.sync() == {"live": 1}  # resumes incrementally
        stats = replica.ingest_stats()["replica"]["datasets"]["live"]
        assert stats["last_error"] is None
        assert stats["resets"] == 1  # the rejoin reused the cursor
        assert replica.state("live") == (1, 2)
        restarted = _reopen(tmp_path)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))


class TestFeedFaultInjection:
    """Damage the primary's journal tail at every byte offset.

    The feed reads with ``repair=False`` — it never mutates the
    primary's files — so a replica bootstrapped from a damaged journal
    must land on the last complete record, like restart recovery.
    """

    N_APPENDS = 3

    @pytest.fixture()
    def journal(self, tmp_path, base_table, stream):
        """A journal of three 2-row deferred appends, plus its tail span."""
        live = _open(tmp_path, base_table)
        for i in range(self.N_APPENDS):
            live.append("live", stream[2 * i: 2 * i + 2])
        live.close()
        (segment,) = sorted((tmp_path / "live").glob("journal-*.seg"))
        data = segment.read_bytes()
        spans = [(start, end) for _p, start, end in scan_records(data)]
        assert len(spans) == 1 + self.N_APPENDS
        return tmp_path, segment, data, spans

    def _replicated(self, tmp_path):
        replica = _replica(tmp_path)
        replica.sync()
        state = replica.state("live")
        n_rows = replica.table("live").n_rows
        replica.close()
        return state, n_rows

    def test_truncation_at_every_byte_offset_of_final_record(
        self, journal
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for cut in range(final_start, final_end):
            segment.write_bytes(data[:cut])
            state, n_rows = self._replicated(tmp_path)
            assert state == (1, self.N_APPENDS - 1), f"cut at byte {cut}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_corruption_at_every_byte_offset_of_final_record(
        self, journal
    ):
        tmp_path, segment, data, spans = journal
        final_start, final_end = spans[-1]
        for position in range(final_start, final_end):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x5A
            segment.write_bytes(bytes(corrupted))
            state, n_rows = self._replicated(tmp_path)
            assert state == (1, self.N_APPENDS - 1), f"flip at byte {position}"
            assert n_rows == BASE_ROWS + 2 * (self.N_APPENDS - 1)

    def test_damaged_tail_replica_matches_the_repaired_primary(
        self, journal, base_table
    ):
        tmp_path, segment, data, spans = journal
        segment.write_bytes(data[:-7])  # tear the final record
        replica = _replica(tmp_path)
        replica.sync()
        # The restarted primary (which repairs) and the replica (which
        # never writes) agree on state AND payload bytes.
        restarted = _reopen(tmp_path)
        assert replica.state("live") == restarted.state("live") == \
            (1, self.N_APPENDS - 1)
        assert _payload(replica.handle(_request())) == \
            _payload(restarted.handle(_request()))
