"""Replication over real sockets: the journal endpoint, HTTP-fed
replicas, replica serving (read-only + promote) and ``max_lag_seq``
read routing on the primary."""

from __future__ import annotations

import json

import pytest

from repro.data.datasets import make_mixed_table
from repro.errors import ProtocolError
from repro.ingest import IngestConfig
from repro.replication import HttpFeedSource
from repro.server import ReproClient, ReproServer, ServerConfig
from repro.service import InsightRequest, ReplicaWorkspace, Workspace

BASE_ROWS = 80


@pytest.fixture(scope="module")
def base_table():
    return make_mixed_table(n_rows=BASE_ROWS, n_numeric=3, n_categorical=2,
                            seed=11)


@pytest.fixture(scope="module")
def stream(base_table):
    return make_mixed_table(n_rows=30, n_numeric=3, n_categorical=2,
                            seed=12).to_records()


def _request(**overrides):
    fields = {"dataset": "live", "insight_classes": ("skew", "outliers"),
              "top_k": 3}
    fields.update(overrides)
    return InsightRequest(**fields)


def _payload(response) -> str:
    body = response.to_dict()
    body.pop("timing")
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _primary(data_dir, base_table) -> Workspace:
    workspace = Workspace(data_dir=str(data_dir),
                          ingest=IngestConfig(rebuild_fraction=float("inf")))
    workspace.register("live", base_table)  # self-contained durable state
    return workspace


class TestJournalEndpoint:
    def test_bootstrap_and_incremental_batches(self, tmp_path, base_table,
                                               stream):
        workspace = _primary(tmp_path, base_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("live", stream[:4])
                answer = client.journal("live")
                assert answer["protocol"] == 1
                assert answer["dataset"] == "live"
                batch = answer["batch"]
                assert batch["reset"] is not None
                assert batch["position"] == "1:1"
                assert batch["records"] == []
                assert batch["primary_seq"] == 1

                client.append_rows("live", stream[4:8])
                follow = client.journal("live", position="1:1")["batch"]
                assert follow["reset"] is None
                assert [r["seq"] for r in follow["records"]] == [2]
                assert follow["position"] == "1:2"

    def test_endpoint_error_envelopes(self, tmp_path, base_table):
        workspace = _primary(tmp_path, base_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("GET", "/v1/datasets/nope/journal")
                assert raw.status == 404
                raw = client.request_raw(
                    "GET", "/v1/datasets/live/journal?from=bogus")
                assert raw.status == 400
                assert raw.payload["code"] == "protocol_error"
                raw = client.request_raw(
                    "GET", "/v1/datasets/live/journal?max_records=0")
                assert raw.status == 400
                raw = client.request_raw(
                    "GET", "/v1/datasets/live/journal?max_records=nope")
                assert raw.status == 400

    def test_non_durable_server_answers_409(self, base_table):
        workspace = Workspace()  # no data_dir: nothing to tail
        workspace.register("live", lambda: base_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("GET", "/v1/datasets/live/journal")
                assert raw.status == 409
                assert raw.payload["code"] == "not_durable"

    def test_promote_on_a_primary_is_409(self, tmp_path, base_table):
        workspace = _primary(tmp_path, base_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                raw = client.request_raw("POST", "/v1/replica:promote", {})
                assert raw.status == 409
                assert raw.payload["code"] == "not_a_replica"


class TestHttpFedReplica:
    def test_http_replica_is_byte_identical_to_a_restarted_primary(
        self, tmp_path, base_table, stream
    ):
        workspace = _primary(tmp_path, base_table)
        server = ReproServer(workspace, ServerConfig(port=0))
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                client.append_rows("live", stream[:6])
            replica = ReplicaWorkspace(
                HttpFeedSource(*handle.address))
            assert replica.sync() == {"live": 1}
            assert replica.state("live") == (1, 1)
            assert replica.replica_lag() == {"live": 0}
            # Incremental catch-up over the wire.
            with ReproClient(*handle.address) as client:
                client.append_rows("live", stream[6:12])
            assert replica.sync() == {"live": 1}
            assert replica.state("live") == (1, 2)
            replica_bytes = _payload(replica.handle(_request()))
            replica.close()
        restarted = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        assert restarted.state("live") == (1, 2)
        assert replica_bytes == _payload(restarted.handle(_request()))

    def test_from_url_accepts_the_replica_of_forms(self):
        source = HttpFeedSource.from_url("http://example.test:7000")
        assert (source.host, source.port) == ("example.test", 7000)
        source = HttpFeedSource.from_url("example.test:7000")
        assert (source.host, source.port) == ("example.test", 7000)
        from repro.errors import ServiceError
        with pytest.raises(ServiceError, match="replica-of"):
            HttpFeedSource.from_url("ftp://example.test")


class TestServedReplica:
    def test_replica_server_refuses_writes_until_promoted(
        self, tmp_path, base_table, stream
    ):
        workspace = _primary(tmp_path, base_table)
        primary_server = ReproServer(workspace, ServerConfig(port=0))
        with primary_server.start_in_thread() as primary_handle:
            with ReproClient(*primary_handle.address) as client:
                client.append_rows("live", stream[:4])
            replica = ReplicaWorkspace(
                HttpFeedSource(*primary_handle.address))
            replica.sync()
            replica_server = ReproServer(replica, ServerConfig(port=0))
            with replica_server.start_in_thread() as replica_handle:
                with ReproClient(*replica_handle.address) as client:
                    # Reads work; the replica section is in the metrics.
                    response = client.insights(_request())
                    assert (response.dataset_version,
                            response.dataset_seq) == (1, 1)
                    metrics = client.metrics()
                    ingest = metrics["workspace"]["ingest"]
                    assert ingest["replica"]["promoted"] is False
                    assert ingest["replica"]["datasets"]["live"][
                        "lag_seq"] == 0
                    text = client.metrics_text()
                    assert "repro_replica_promoted 0" in text
                    assert 'repro_replica_lag_seq{dataset="live"} 0' in text

                    raw = client.request_raw(
                        "POST", "/v1/datasets/live/rows",
                        {"rows": stream[4:6]})
                    assert raw.status == 403
                    assert raw.payload["code"] == "replica_read_only"

                    assert client.promote() == {"protocol": 1,
                                                "promoted": True}
                    appended = client.append_rows("live", stream[4:6])
                    assert (appended["version"], appended["seq"]) == (1, 2)
            replica.close()


class TestStalenessRouting:
    """``max_lag_seq`` routes bounded reads to caught-up replicas."""

    def _count_handles(self, workspace):
        calls = []
        original = workspace.handle

        def counting(request):
            calls.append(request.dataset)
            return original(request)

        workspace.handle = counting
        return calls

    def test_bounded_reads_hit_a_caught_up_replica(self, tmp_path,
                                                   base_table, stream):
        from repro.service import LocalFeedSource

        workspace = _primary(tmp_path, base_table)
        workspace.append("live", stream[:4])
        replica = ReplicaWorkspace(LocalFeedSource(str(tmp_path)))
        replica.sync()
        server = ReproServer(workspace,
                             ServerConfig(port=0, coalesce_window=0.0),
                             replicas=[replica])
        primary_calls = self._count_handles(workspace)
        replica_calls = self._count_handles(replica)
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                # No bound: read-your-writes, the primary answers.
                client.insights(_request())
                assert (len(primary_calls), len(replica_calls)) == (1, 0)
                # Bounded and caught up: the replica answers, and the
                # payload names the same snapshot the primary would.
                bounded = client.insights(_request(), max_lag_seq=0)
                assert (len(primary_calls), len(replica_calls)) == (1, 1)
                assert (bounded.dataset_version, bounded.dataset_seq) == (1, 1)
        replica.close()

    def test_stale_replica_falls_back_to_the_primary(self, tmp_path,
                                                     base_table, stream):
        from repro.service import LocalFeedSource

        workspace = _primary(tmp_path, base_table)
        workspace.append("live", stream[:4])
        replica = ReplicaWorkspace(LocalFeedSource(str(tmp_path)))
        replica.sync()
        # The primary moves on; the replica's tailer has *observed* the
        # new tip but not yet applied it (the state a routing read sees
        # between capped sync batches).
        workspace.append("live", stream[4:8])
        replica._rstate["live"].primary_seq = 2
        assert replica.replica_lag() == {"live": 1}
        server = ReproServer(workspace,
                             ServerConfig(port=0, coalesce_window=0.0),
                             replicas=[replica])
        replica_calls = self._count_handles(replica)
        with server.start_in_thread() as handle:
            with ReproClient(*handle.address) as client:
                # Too stale for a zero bound: the primary answers.
                response = client.insights(_request(), max_lag_seq=0)
                assert (response.dataset_version, response.dataset_seq) == \
                    (1, 2)
                assert replica_calls == []
                # A bound of 1 tolerates the lag: the replica answers
                # with the snapshot it actually holds.
                relaxed = client.insights(_request(), max_lag_seq=1)
                assert (relaxed.dataset_version, relaxed.dataset_seq) == (1, 1)
                assert replica_calls == ["live"]
        replica.close()


class TestMaxLagSeqDto:
    def test_negative_bound_is_rejected(self):
        with pytest.raises(ProtocolError, match="max_lag_seq"):
            _request(max_lag_seq=-1)

    def test_bound_stays_out_of_the_canonical_key(self):
        bounded = _request(max_lag_seq=3)
        unbounded = _request()
        assert bounded.canonical_key() == unbounded.canonical_key()
        assert "max_lag_seq" not in bounded.to_dict()
        # ...but the wire reader honours an explicitly shipped bound.
        payload = bounded.to_dict()
        payload["max_lag_seq"] = 3
        assert InsightRequest.from_dict(payload).max_lag_seq == 3
