"""Tests for the staged query pipeline (plan → enumerate → score → rank)."""

from typing import Iterator

import pytest

from repro.core.executor import ExecutorConfig, ParallelExecutor
from repro.core.insight import EvaluationContext, InsightClass, ScoredCandidate, singletons
from repro.core.query import InsightQuery, MetricRange
from repro.core.ranking import RankingEngine
from repro.core.registry import InsightRegistry, default_registry
from repro.service.pipeline import PipelineStats, QueryPipeline


class _CountingInsight(InsightClass):
    """Scores columns by name length and counts enumeration/score passes."""

    arity = 1
    visualization = "histogram"
    #: Class-level counters shared by all three registered variants.
    enumeration_calls = 0
    score_calls = 0

    def candidates(self, table) -> Iterator[tuple[str, ...]]:
        _CountingInsight.enumeration_calls += 1
        yield from singletons(table.numeric_names())

    def candidate_domain(self) -> str | None:
        return "counting-singletons"

    def score(self, attributes, context):
        _CountingInsight.score_calls += 1
        return ScoredCandidate(attributes=attributes, score=float(len(attributes[0])))

    def visualize(self, insight, context):  # pragma: no cover - not exercised
        raise NotImplementedError


def _counting_registry() -> InsightRegistry:
    registry = InsightRegistry()
    for name in ("count_a", "count_b", "count_c"):
        insight_class = _CountingInsight()
        insight_class.name = name
        insight_class.metric_name = "name_length"
        registry.register(insight_class)
    return registry


@pytest.fixture()
def exact_context(oecd_table) -> EvaluationContext:
    return EvaluationContext(table=oecd_table, store=None, mode="exact")


class TestSharedEnumeration:
    def test_three_same_arity_classes_enumerate_once(self, oecd_table, exact_context):
        registry = _counting_registry()
        pipeline = QueryPipeline(registry)
        queries = [InsightQuery(name, top_k=3, mode="exact")
                   for name in ("count_a", "count_b", "count_c")]
        _CountingInsight.enumeration_calls = 0
        stats = PipelineStats()
        results = pipeline.execute(queries, exact_context, stats=stats)
        assert _CountingInsight.enumeration_calls == 1
        assert stats.enumerations == 1
        assert stats.shared_queries == 2
        assert stats.n_queries == 3
        assert all(len(r) == 3 for r in results)

    def test_single_queries_enumerate_per_class(self, oecd_table, exact_context):
        registry = _counting_registry()
        pipeline = QueryPipeline(registry)
        _CountingInsight.enumeration_calls = 0
        for name in ("count_a", "count_b", "count_c"):
            pipeline.execute([InsightQuery(name, mode="exact")], exact_context)
        assert _CountingInsight.enumeration_calls == 3

    def test_builtin_univariate_classes_share_a_domain(self, oecd_engine):
        stats = PipelineStats()
        queries = [InsightQuery(name, top_k=2)
                   for name in ("dispersion", "skew", "outliers", "heavy_tails")]
        results = oecd_engine.rank_many(queries, stats=stats)
        assert stats.enumerations == 1
        assert stats.shared_queries == 3
        assert [r.query.insight_class for r in results] == [
            "dispersion", "skew", "outliers", "heavy_tails",
        ]

    def test_capped_queries_do_not_share(self, oecd_engine):
        """max_candidates keeps the lazy early-stop instead of materialising."""
        stats = PipelineStats()
        queries = [InsightQuery(name, top_k=2, max_candidates=3)
                   for name in ("linear_relationship", "monotonic_relationship")]
        results = oecd_engine.rank_many(queries, stats=stats)
        assert stats.enumerations == 2
        assert stats.shared_queries == 0
        assert all(r.truncated for r in results)

    def test_distinct_domains_do_not_share(self, oecd_engine):
        stats = PipelineStats()
        # numeric-pairs, numeric-singletons, custom dependence enumeration.
        queries = [InsightQuery(name, top_k=2)
                   for name in ("linear_relationship", "skew", "dependence")]
        oecd_engine.rank_many(queries, stats=stats)
        assert stats.enumerations == 3
        assert stats.shared_queries == 0

    def test_shared_results_match_individual_ranking(self, oecd_engine):
        """Sharing the enumeration must not change any ranking output."""
        names = ["dispersion", "skew", "outliers"]
        queries = [InsightQuery(name, top_k=4, mode="exact") for name in names]
        shared = oecd_engine.rank_many(queries)
        for query, shared_result in zip(queries, shared):
            solo = oecd_engine.query(query)
            assert shared_result.attribute_sets() == solo.attribute_sets()
            assert [i.score for i in shared_result] == [i.score for i in solo]
            assert shared_result.n_candidates == solo.n_candidates
            assert shared_result.n_admitted == solo.n_admitted


class TestSharedScoring:
    """Batched cross-query scoring: unpruned same-domain queries share scores."""

    def test_unpruned_same_class_queries_score_each_candidate_once(self, oecd_engine):
        n_columns = oecd_engine.registry.get("skew").candidate_count(oecd_engine.table)
        stats = PipelineStats()
        queries = [
            InsightQuery("skew", top_k=2, mode="exact"),
            InsightQuery("skew", top_k=5, mode="exact",
                         metric_range=MetricRange(minimum=0.1)),
        ]
        first, second = oecd_engine.rank_many(queries, stats=stats)
        assert stats.enumerations == 1
        assert stats.shared_queries == 1
        assert stats.shared_score_queries == 1
        # The proof: each of the shared domain's candidates was submitted
        # to a metric evaluation once, not once per query.
        assert stats.score_evaluations == n_columns
        assert stats.n_scored == 2 * n_columns
        # Sharing must not change outputs: each query still ranks as solo.
        for query, shared_result in zip(queries, (first, second)):
            solo = oecd_engine.query(query)
            assert shared_result.attribute_sets() == solo.attribute_sets()
            assert [i.score for i in shared_result] == [i.score for i in solo]

    def test_score_calls_counted_at_metric_level(self, oecd_table, exact_context):
        registry = _counting_registry()
        pipeline = QueryPipeline(registry)
        _CountingInsight.score_calls = 0
        stats = PipelineStats()
        pipeline.execute(
            [InsightQuery("count_a", top_k=3, mode="exact"),
             InsightQuery("count_a", top_k=1, mode="exact")],
            exact_context,
            stats=stats,
        )
        assert _CountingInsight.score_calls == len(oecd_table.numeric_names())
        assert stats.shared_score_queries == 1

    def test_different_classes_do_not_share_scores(self, oecd_engine):
        stats = PipelineStats()
        oecd_engine.rank_many(
            [InsightQuery("skew", top_k=2), InsightQuery("dispersion", top_k=2)],
            stats=stats,
        )
        assert stats.shared_queries == 1       # enumeration is shared...
        assert stats.shared_score_queries == 0  # ...their metrics are not

    def test_pruned_queries_do_not_share_scores(self, oecd_engine):
        stats = PipelineStats()
        oecd_engine.rank_many(
            [InsightQuery("skew", top_k=2, mode="exact"),
             InsightQuery("skew", top_k=2, mode="exact",
                          fixed_attributes=("LifeSatisfaction",))],
            stats=stats,
        )
        assert stats.shared_score_queries == 0

    def test_mode_mismatch_does_not_share_scores(self, oecd_engine):
        stats = PipelineStats()
        oecd_engine.rank_many(
            [InsightQuery("skew", top_k=2, mode="approximate"),
             InsightQuery("skew", top_k=2, mode="exact")],
            stats=stats,
        )
        assert stats.shared_score_queries == 0


class TestShardedScoring:
    def test_parallel_pipeline_shards_elementwise_classes(self, oecd_table, exact_context):
        registry = _counting_registry()
        executor = ParallelExecutor(ExecutorConfig(max_workers=4, min_chunk_size=1))
        try:
            pipeline = QueryPipeline(registry, executor=executor)
            stats = PipelineStats()
            sharded = pipeline.execute(
                [InsightQuery("count_a", top_k=3, mode="exact")],
                exact_context,
                stats=stats,
            )
            assert stats.score_shards > 1
            serial = QueryPipeline(registry).execute(
                [InsightQuery("count_a", top_k=3, mode="exact")], exact_context
            )
            assert sharded[0].attribute_sets() == serial[0].attribute_sets()
            assert [i.score for i in sharded[0]] == [i.score for i in serial[0]]
        finally:
            executor.close()

    def test_batched_score_all_classes_are_not_sharded(self, oecd_table):
        executor = ParallelExecutor(ExecutorConfig(max_workers=4, min_chunk_size=1))
        try:
            pipeline = QueryPipeline(default_registry(), executor=executor)
            stats = PipelineStats()
            context = EvaluationContext(table=oecd_table, store=None, mode="exact")
            # linear_relationship overrides score_all with one matrix
            # computation; chunking it would forfeit the batching.
            pipeline.execute(
                [InsightQuery("linear_relationship", top_k=3, mode="exact")],
                context,
                stats=stats,
            )
            assert stats.score_shards == 0
        finally:
            executor.close()


class TestStagedExecution:
    def test_stages_compose_to_execute(self, oecd_table, exact_context):
        pipeline = QueryPipeline(default_registry())
        queries = [InsightQuery("skew", top_k=3, mode="exact")]
        plan = pipeline.plan(queries)
        enumerations = pipeline.enumerate(plan, exact_context)
        scored = pipeline.score(plan, enumerations, exact_context)
        results = pipeline.rank(plan, enumerations, scored, exact_context)
        assert results[0].attribute_sets() == pipeline.execute(
            queries, exact_context
        )[0].attribute_sets()

    def test_plan_applies_default_caps(self, oecd_engine):
        pipeline = oecd_engine._ranking.pipeline
        plan = pipeline.plan(
            [InsightQuery("segmentation")],
            default_caps=oecd_engine._apply_default_caps,
        )
        assert plan.queries[0].query.max_candidates == (
            oecd_engine.config.max_candidates_triples
        )

    def test_max_candidates_truncation_preserved(self, oecd_engine):
        result = oecd_engine.query("linear_relationship", max_candidates=3, mode="exact")
        assert result.truncated
        assert result.n_scored <= 3

    def test_constraints_filtered_per_query_on_shared_enumeration(self, oecd_engine):
        stats = PipelineStats()
        queries = [
            InsightQuery("dispersion", top_k=5, mode="exact",
                         fixed_attributes=("LifeSatisfaction",)),
            InsightQuery("skew", top_k=5, mode="exact",
                         excluded_attributes=("LifeSatisfaction",)),
        ]
        fixed_result, excluded_result = oecd_engine.rank_many(queries, stats=stats)
        assert stats.enumerations == 1
        assert all(i.involves("LifeSatisfaction") for i in fixed_result)
        assert not any(i.involves("LifeSatisfaction") for i in excluded_result)

    def test_mode_applied_per_query(self, oecd_engine):
        approx, exact = oecd_engine.rank_many([
            InsightQuery("linear_relationship", top_k=1, mode="approximate"),
            InsightQuery("linear_relationship", top_k=1, mode="exact"),
        ])
        assert approx.details["mode"] == "approximate"
        assert exact.details["mode"] == "exact"
        assert exact.top().details["source"] == "exact"


class TestRankingEngineFacade:
    def test_rank_delegates_to_pipeline(self, oecd_table, exact_context):
        engine = RankingEngine(default_registry())
        result = engine.rank(InsightQuery("skew", top_k=2, mode="exact"), exact_context)
        assert len(result) == 2
        assert engine.pipeline.registry is engine.registry

    def test_rank_all_returns_dict_keyed_by_class(self, oecd_table, exact_context):
        engine = RankingEngine(default_registry())
        stats = PipelineStats()
        results = engine.rank_all(
            [InsightQuery("skew", top_k=1, mode="exact"),
             InsightQuery("dispersion", top_k=1, mode="exact")],
            exact_context,
            stats=stats,
        )
        assert set(results) == {"skew", "dispersion"}
        assert stats.enumerations == 1
