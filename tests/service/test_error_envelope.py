"""Structured DTO error envelopes from ``Workspace.handle_json``."""

from __future__ import annotations

import json

import pytest

from repro.data.datasets import make_mixed_table
from repro.service import (
    PROTOCOL_VERSION,
    InsightRequest,
    Workspace,
    error_envelope,
    is_error_envelope,
)


@pytest.fixture()
def workspace() -> Workspace:
    table = make_mixed_table(n_rows=200, n_numeric=5, n_categorical=1, seed=3)
    workspace = Workspace()
    workspace.register("demo", lambda: table)
    return workspace


class TestEnvelopeHelpers:
    def test_envelope_shape(self):
        payload = error_envelope("some_code", "what happened", available=["a"])
        assert payload == {
            "protocol": PROTOCOL_VERSION,
            "status": "error",
            "code": "some_code",
            "message": "what happened",
            "available": ["a"],
        }

    def test_none_details_are_omitted(self):
        payload = error_envelope("c", "m", retry_after=None)
        assert "retry_after" not in payload

    def test_is_error_envelope(self):
        assert is_error_envelope(error_envelope("c", "m"))
        assert not is_error_envelope({"status": "ok"})
        assert not is_error_envelope({"dataset": "demo"})
        assert not is_error_envelope("nope")
        assert not is_error_envelope(None)


class TestHandleJsonErrors:
    def test_malformed_json_returns_envelope_not_raise(self, workspace):
        payload = json.loads(workspace.handle_json("{this is not json"))
        assert is_error_envelope(payload)
        assert payload["code"] == "protocol_error"
        assert payload["message"]

    def test_non_object_json_returns_envelope(self, workspace):
        payload = json.loads(workspace.handle_json("[1, 2, 3]"))
        assert is_error_envelope(payload)
        assert payload["code"] == "protocol_error"

    def test_missing_required_keys_returns_envelope(self, workspace):
        payload = json.loads(workspace.handle_json('{"top_k": 3}'))
        assert is_error_envelope(payload)
        assert payload["code"] == "protocol_error"

    def test_unknown_dataset_returns_envelope_with_alternatives(self, workspace):
        request = InsightRequest(dataset="nope", insight_classes=("skew",))
        payload = json.loads(workspace.handle_json(request.to_json()))
        assert is_error_envelope(payload)
        assert payload["code"] == "unknown_dataset"
        assert payload["available"] == ["demo"]

    def test_successful_request_is_not_an_envelope(self, workspace):
        request = InsightRequest(dataset="demo", insight_classes=("skew",),
                                 top_k=2)
        payload = json.loads(workspace.handle_json(request.to_json()))
        assert not is_error_envelope(payload)
        assert payload["dataset"] == "demo"
        assert len(payload["carousels"]) == 1

    def test_unknown_insight_class_returns_envelope(self, workspace):
        """A class-name typo is client input, same as an unknown dataset."""
        request = InsightRequest(dataset="demo",
                                 insight_classes=("not_a_class",))
        payload = json.loads(workspace.handle_json(request.to_json()))
        assert is_error_envelope(payload)
        assert payload["code"] == "unknown_insight_class"
        assert "skew" in payload["available"]

    def test_engine_faults_still_raise(self, workspace):
        """Server faults (not client input) must propagate, not envelope."""
        def broken_loader():
            raise RuntimeError("disk on fire")

        workspace.register("broken", broken_loader)
        request = InsightRequest(dataset="broken", insight_classes=("skew",))
        with pytest.raises(RuntimeError, match="disk on fire"):
            workspace.handle_json(request.to_json())


class TestPipelineStatsAccumulator:
    def test_stats_accumulate_across_requests(self, workspace):
        assert workspace.pipeline_stats()["n_queries"] == 0
        request = InsightRequest(dataset="demo",
                                 insight_classes=("skew", "outliers"), top_k=2)
        workspace.handle(request)
        first = workspace.pipeline_stats()
        assert first["n_queries"] == 2
        assert first["enumerations"] >= 1
        # A cache hit executes no pipeline stages: totals must not move.
        workspace.handle(request)
        assert workspace.pipeline_stats() == first
        # A distinct request adds to the totals.
        workspace.handle(
            InsightRequest(dataset="demo", insight_classes=("dispersion",))
        )
        second = workspace.pipeline_stats()
        assert second["n_queries"] == 3
        assert second["elapsed_seconds"] >= first["elapsed_seconds"]
