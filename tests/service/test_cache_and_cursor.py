"""Tests for the LRU result cache and the pagination cursor codec."""

import pytest

from repro.errors import ProtocolError
from repro.service import ResultCache, decode_cursor, encode_cursor


class TestResultCache:
    def test_get_put_and_stats(self):
        cache = ResultCache(capacity=4)
        key = ("oecd", 1, "{}")
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        info = cache.info()
        assert info["bytes"] > 0
        del info["bytes"]
        assert info == {"capacity": 4, "size": 1, "hits": 1,
                        "misses": 1, "evictions": 0,
                        "invalidations": 0}

    def test_byte_accounting_tracks_inserts_and_evictions(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", 1, "q1"), {"x": "payload-one"})
        one = cache.info()["bytes"]
        assert one > 0
        cache.put(("b", 1, "q2"), {"x": "payload-two"})
        two = cache.info()["bytes"]
        assert two > one
        cache.put(("c", 1, "q3"), {"x": "payload-three"})  # evicts q1
        assert cache.info()["size"] == 2
        cache.invalidate()
        assert cache.info()["bytes"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", 1, "q1"), 1)
        cache.put(("b", 1, "q2"), 2)
        cache.get(("a", 1, "q1"))  # refresh "a": "b" becomes LRU
        cache.put(("c", 1, "q3"), 3)
        assert ("a", 1, "q1") in cache
        assert ("b", 1, "q2") not in cache
        assert ("c", 1, "q3") in cache
        assert cache.info()["evictions"] == 1

    def test_put_existing_key_updates_value(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", 1, "q"), 1)
        cache.put(("a", 1, "q"), 2)
        assert len(cache) == 1
        assert cache.get(("a", 1, "q")) == 2

    def test_invalidate_by_dataset(self):
        cache = ResultCache(capacity=8)
        cache.put(("a", 1, "q1"), 1)
        cache.put(("a", 2, "q1"), 2)
        cache.put(("b", 1, "q1"), 3)
        assert cache.invalidate("a") == 2
        assert len(cache) == 1
        assert ("b", 1, "q1") in cache
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_invalidate_counts_as_evictions(self):
        # info()["evictions"] must account for every removal, whether it
        # came from LRU pressure or an explicit invalidate call.
        cache = ResultCache(capacity=2)
        cache.put(("a", 1, "q1"), 1)
        cache.put(("a", 1, "q2"), 2)
        cache.put(("a", 1, "q3"), 3)  # LRU-evicts q1
        assert cache.invalidate("a") == 2
        info = cache.info()
        assert info["evictions"] == 3
        assert info["invalidations"] == 2
        assert info["size"] == 0

    def test_version_in_key_separates_generations(self):
        cache = ResultCache(capacity=8)
        cache.put(("a", 1, "q"), "old")
        assert cache.get(("a", 2, "q")) is None  # new version: unreachable
        assert cache.get(("a", 1, "q")) == "old"

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestCursorCodec:
    def test_round_trip(self):
        for offset in (0, 1, 5, 10_000):
            assert decode_cursor(encode_cursor(offset)) == offset

    def test_none_means_first_page(self):
        assert decode_cursor(None) == 0

    def test_tokens_are_opaque_ascii(self):
        token = encode_cursor(7)
        assert isinstance(token, str)
        assert token.isascii()
        assert "7" not in token or token != "7"

    def test_negative_offset_rejected(self):
        with pytest.raises(ProtocolError):
            encode_cursor(-1)

    def test_malformed_tokens_rejected(self):
        for bad in ("garbage", "AAAA", encode_cursor(1)[:-4]):
            with pytest.raises(ProtocolError):
                decode_cursor(bad)
