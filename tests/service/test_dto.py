"""Tests for the request/response/session DTO protocol."""

import json

import pytest

from repro.core.insight import Insight
from repro.core.query import InsightQuery, MetricRange, query
from repro.errors import ProtocolError
from repro.service import (
    PROTOCOL_VERSION,
    InsightRequest,
    InsightResponse,
    SessionState,
)


class TestInsightRequest:
    def test_single_class_string_is_normalised(self):
        request = InsightRequest(dataset="oecd", insight_classes="skew")
        assert request.insight_classes == ("skew",)

    def test_constraint_strings_are_normalised(self):
        request = InsightRequest(
            dataset="oecd", insight_classes=["skew"],
            fixed="A", excluded="B", tags="currency",
        )
        assert request.fixed == ("A",)
        assert request.excluded == ("B",)
        assert request.tags == ("currency",)

    def test_json_round_trip_is_byte_identical(self):
        request = InsightRequest(
            dataset="oecd",
            insight_classes=("linear_relationship", "skew"),
            top_k=3,
            fixed=("LifeSatisfaction",),
            metric_min=0.2,
            mode="exact",
        )
        text = request.to_json()
        assert InsightRequest.from_json(text) == request
        assert InsightRequest.from_json(text).to_json() == text

    def test_dict_round_trip(self):
        request = InsightRequest(dataset="d", insight_classes=("a", "b"),
                                 tags=("currency",), max_candidates=10)
        assert InsightRequest.from_dict(request.to_dict()) == request

    def test_canonical_json_has_sorted_keys(self):
        text = InsightRequest(dataset="d", insight_classes="a").to_json()
        payload = json.loads(text)
        assert list(payload) == sorted(payload)
        assert payload["protocol"] == PROTOCOL_VERSION

    def test_to_queries_applies_shared_constraints(self):
        request = InsightRequest(
            dataset="d", insight_classes=("a", "b"), top_k=4,
            fixed=("X",), metric_min=0.1, metric_max=0.9, tags=("t",),
        )
        queries = request.to_queries(default_mode="exact")
        assert [q.insight_class for q in queries] == ["a", "b"]
        for q in queries:
            assert q.top_k == 4
            assert q.fixed_attributes == ("X",)
            assert q.metric_range == MetricRange(0.1, 0.9)
            assert q.required_tags == ("t",)
            assert q.mode == "exact"

    def test_to_queries_top_k_override_for_pagination(self):
        request = InsightRequest(dataset="d", insight_classes="a", top_k=2)
        (q,) = request.to_queries(top_k=6)
        assert q.top_k == 6

    def test_validation(self):
        with pytest.raises(ProtocolError):
            InsightRequest(dataset="", insight_classes="a")
        with pytest.raises(ProtocolError):
            InsightRequest(dataset="d", insight_classes=())
        with pytest.raises(ProtocolError):
            InsightRequest(dataset="d", insight_classes="a", top_k=0)
        with pytest.raises(ProtocolError):
            InsightRequest(dataset="d", insight_classes="a", mode="psychic")

    def test_unsupported_protocol_version_rejected(self):
        payload = InsightRequest(dataset="d", insight_classes="a").to_dict()
        payload["protocol"] = 99
        with pytest.raises(ProtocolError):
            InsightRequest.from_dict(payload)

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            InsightRequest.from_json("{not json")
        with pytest.raises(ProtocolError):
            InsightRequest.from_json("[1, 2]")


class TestInsightResponse:
    def _response(self) -> InsightResponse:
        insight = Insight("skew", ("A",), 1.5, "abs_skewness", summary="s")
        return InsightResponse(
            dataset="d",
            dataset_version=2,
            carousels=[{
                "insight_class": "skew", "label": "Skewed Marginals",
                "insights": [insight.as_dict()], "n_admitted": 7,
                "truncated": False,
            }],
            timing={"total_seconds": 0.01},
            provenance={"cache": "miss", "mode": "approximate",
                        "enumerations": 1, "shared_queries": 0},
            next_cursor=None,
        )

    def test_json_round_trip_is_byte_identical(self):
        response = self._response()
        text = response.to_json()
        assert InsightResponse.from_json(text) == response
        assert InsightResponse.from_json(text).to_json() == text

    def test_insight_accessors(self):
        response = self._response()
        assert response.classes() == ["skew"]
        assert len(response) == 1
        top = response.top()
        assert isinstance(top, Insight)
        assert top.attributes == ("A",)
        assert response.insights_for("skew")[0].score == 1.5
        with pytest.raises(ProtocolError):
            response.insights_for("outliers")


class TestSessionState:
    def test_round_trip_preserves_history_verbatim(self):
        state = SessionState(
            name="analyst-1", dataset="oecd",
            focused_insights=[Insight("skew", ("A",), 2.0, "abs_skewness").as_dict()],
            history=[{"action": "session_started", "timestamp": 123.5,
                      "payload": {"dataset": "oecd"}}],
        )
        text = state.to_json()
        assert SessionState.from_json(text) == state
        assert SessionState.from_json(text).to_json() == text

    def test_focused_builds_insight_objects(self):
        insight = Insight("skew", ("A",), 2.0, "abs_skewness",
                          details={"n": 3})
        state = SessionState(name="s", dataset="d",
                             focused_insights=[insight.as_dict()])
        assert state.focused() == [insight]
        assert state.focused()[0].details == {"n": 3}


class TestInsightQueryFromDict:
    """The satellite fix: as_dict finally has an exact inverse."""

    def test_round_trip_with_all_constraints(self):
        original = query(
            "linear_relationship", top_k=7, fixed=("A", "B"), excluded="C",
            metric_min=0.25, metric_max=0.75, mode="exact",
            max_candidates=100, tags=("currency", "date"),
        )
        assert InsightQuery.from_dict(original.as_dict()) == original

    def test_round_trip_with_defaults(self):
        original = InsightQuery(insight_class="skew")
        assert InsightQuery.from_dict(original.as_dict()) == original

    def test_metric_range_round_trip(self):
        assert MetricRange.from_dict(MetricRange(0.5, 0.8).as_dict()) == MetricRange(0.5, 0.8)
        # Unbounded ranges round-trip through infinities ...
        assert MetricRange.from_dict(MetricRange().as_dict()) == MetricRange()
        # ... and through JSON-friendly nulls / missing keys.
        assert MetricRange.from_dict({"min": None, "max": None}) == MetricRange()
        assert MetricRange.from_dict({}) == MetricRange()

    def test_missing_optional_keys_use_defaults(self):
        restored = InsightQuery.from_dict({"insight_class": "skew"})
        assert restored == InsightQuery(insight_class="skew")
