"""Tests for the Workspace serving façade."""

import json

import pytest

from repro import Foresight, Insight, Workspace
from repro.core.engine import EngineConfig
from repro.data.datasets import load_oecd, make_numeric_table
from repro.errors import ProtocolError, ServiceError, UnknownDatasetError
from repro.service import InsightRequest, InsightResponse


@pytest.fixture()
def workspace(oecd_table):
    workspace = Workspace(cache_size=8)
    workspace.register("oecd", oecd_table)
    return workspace


def _request(**overrides) -> InsightRequest:
    payload = dict(dataset="oecd", insight_classes=("dispersion", "skew", "outliers"),
                   top_k=3)
    payload.update(overrides)
    return InsightRequest(**payload)


class TestDatasetManagement:
    def test_loader_runs_lazily_and_once(self):
        calls = []

        def loader():
            calls.append(1)
            return make_numeric_table(n_rows=80, n_columns=5, seed=1)

        workspace = Workspace()
        workspace.register("synthetic", loader)
        assert calls == []  # nothing loaded at registration time
        engine = workspace.engine("synthetic")
        assert isinstance(engine, Foresight)
        assert workspace.engine("synthetic") is engine  # cached
        assert calls == [1]

    def test_unknown_dataset_raises(self, workspace):
        with pytest.raises(UnknownDatasetError):
            workspace.engine("nope")
        with pytest.raises(UnknownDatasetError):
            workspace.handle(_request(dataset="nope"))

    def test_duplicate_registration_needs_replace(self, workspace, oecd_table):
        with pytest.raises(ServiceError):
            workspace.register("oecd", oecd_table)
        workspace.register("oecd", oecd_table, replace=True)
        assert workspace.version("oecd") == 2

    def test_engine_config_respected(self, oecd_table):
        workspace = Workspace()
        workspace.register("oecd", oecd_table,
                           engine_config=EngineConfig(mode="exact"))
        assert workspace.engine("oecd").store is None

    def test_describe_reports_lifecycle(self, oecd_table):
        workspace = Workspace()
        workspace.register("oecd", load_oecd)
        (status,) = workspace.describe()
        assert status == {"name": "oecd", "version": 1, "seq": 0,
                          "loaded": False, "engine_built": False,
                          "engine_builds": 0, "lazy": True, "busy": False,
                          "rebuild_running": False,
                          "ingest": {"seq": 0, "rows_appended": 0,
                                     "delta_merges": 0, "rebuilds": 0,
                                     "bg_rebuilds": 0,
                                     "rows_since_rebuild": 0,
                                     "base_rows": 0}}
        workspace.engine("oecd")
        (status,) = workspace.describe()
        assert status["loaded"] and status["engine_built"]
        assert status["engine_builds"] == 1


class TestRequestServing:
    def test_multi_class_response_in_request_order(self, workspace):
        response = workspace.handle(_request())
        assert response.classes() == ["dispersion", "skew", "outliers"]
        assert all(len(c["insights"]) == 3 for c in response.carousels)
        assert response.dataset_version == 1
        assert response.timing["total_seconds"] >= 0

    def test_multi_class_request_enumerates_once(self, workspace):
        response = workspace.handle(_request())
        assert response.provenance["enumerations"] == 1
        assert response.provenance["shared_queries"] == 2

    def test_repeat_request_served_from_cache_with_provenance(self, workspace):
        first = workspace.handle(_request())
        assert first.provenance["cache"] == "miss"
        second = workspace.handle(_request())
        assert second.provenance["cache"] == "hit"
        assert second.carousels == first.carousels
        info = workspace.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_cache_hit_does_not_mutate_cached_entry(self, workspace):
        workspace.handle(_request())
        hit = workspace.handle(_request())
        hit.carousels[0]["insights"].clear()
        hit.provenance["cache"] = "tampered"
        again = workspace.handle(_request())
        assert again.provenance["cache"] == "hit"
        assert again.carousels[0]["insights"]

    def test_results_match_direct_engine_queries(self, workspace, oecd_engine):
        response = workspace.handle(_request())
        for name in ("dispersion", "skew", "outliers"):
            direct = oecd_engine.query(name, top_k=3)
            assert [i.attributes for i in response.insights_for(name)] == (
                direct.attribute_sets()
            )

    def test_dict_and_json_requests_accepted(self, workspace):
        response = workspace.handle(_request().to_dict())
        assert isinstance(response, InsightResponse)
        text = workspace.handle_json(_request().to_json())
        assert InsightResponse.from_json(text).classes() == [
            "dispersion", "skew", "outliers",
        ]

    def test_response_json_round_trip_is_byte_identical(self, workspace):
        response = workspace.handle(_request())
        text = response.to_json()
        assert InsightResponse.from_json(text).to_json() == text
        json.loads(text)  # strict JSON (no IEEE infinities etc.)

    def test_constraints_forwarded(self, workspace):
        response = workspace.handle(InsightRequest(
            dataset="oecd", insight_classes="linear_relationship", top_k=3,
            fixed=("SelfReportedHealth",), mode="exact",
        ))
        insights = response.insights_for("linear_relationship")
        assert insights
        assert all(i.involves("SelfReportedHealth") for i in insights)

    def test_bad_request_type_rejected(self, workspace):
        with pytest.raises(ServiceError):
            workspace.handle(42)


class TestPagination:
    def test_pages_are_disjoint_and_ordered(self, workspace):
        page1 = workspace.handle(InsightRequest(
            dataset="oecd", insight_classes="skew", top_k=2, mode="exact"))
        assert page1.next_cursor is not None
        page2 = workspace.handle(InsightRequest(
            dataset="oecd", insight_classes="skew", top_k=2, mode="exact",
            cursor=page1.next_cursor))
        first = page1.insights_for("skew")
        second = page2.insights_for("skew")
        assert len(first) == 2 and second
        assert not {i.key for i in first} & {i.key for i in second}
        # Concatenated pages must equal one deep query.
        deep = workspace.engine("oecd").query("skew", top_k=4, mode="exact")
        assert [i.attributes for i in first + second] == deep.attribute_sets()[:len(first + second)]

    def test_pagination_terminates(self, workspace):
        cursor = None
        seen = []
        for _ in range(30):  # far more pages than insights exist
            response = workspace.handle(InsightRequest(
                dataset="oecd", insight_classes="skew", top_k=3, mode="exact",
                cursor=cursor))
            seen.extend(response.insights_for("skew"))
            cursor = response.next_cursor
            if cursor is None:
                break
        assert cursor is None
        assert len({i.key for i in seen}) == len(seen)

    def test_invalid_cursor_rejected(self, workspace):
        with pytest.raises(ProtocolError):
            workspace.handle(_request(cursor="garbage-cursor"))


class TestReloadAndInvalidation:
    def test_reload_bumps_version_and_invalidates_cache(self):
        calls = []

        def loader():
            calls.append(1)
            return make_numeric_table(n_rows=80, n_columns=5, seed=1)

        workspace = Workspace()
        workspace.register("synthetic", loader)
        request = InsightRequest(dataset="synthetic", insight_classes="skew", top_k=2)
        assert workspace.handle(request).provenance["cache"] == "miss"
        assert workspace.handle(request).provenance["cache"] == "hit"

        assert workspace.reload("synthetic") == 2
        assert workspace.version("synthetic") == 2
        response = workspace.handle(request)
        assert response.provenance["cache"] == "miss"
        assert response.dataset_version == 2
        assert len(calls) == 2  # loader re-ran after reload

    def test_explicit_invalidation(self, workspace):
        workspace.handle(_request())
        assert len(workspace.cache) == 1
        assert workspace.invalidate("oecd") == 1
        assert len(workspace.cache) == 0
        assert workspace.handle(_request()).provenance["cache"] == "miss"


class TestWorkspaceSessions:
    def test_session_addressable_by_dataset_name(self, workspace):
        session = workspace.session("oecd", name="analyst-1")
        assert session.dataset == "oecd"
        assert session.engine is workspace.engine("oecd")

    def test_save_restore_save_is_byte_identical(self, workspace):
        session = workspace.session("oecd", name="analyst-1")
        insight = Insight("normality", ("SelfReportedHealth",), 0.7,
                          "non_normality", summary="left-skewed",
                          details={"shape": "left-skewed"})
        session.focus(insight)
        session.query("skew", top_k=1)
        saved = session.save_json()
        restored = workspace.restore_session(saved)
        assert restored.save_json() == saved
        assert restored.focused_insights == [insight]
        # And once more through the dict form.
        assert workspace.restore_session(restored.save()).save_json() == saved

    def test_restored_session_keeps_exploring(self, workspace):
        session = workspace.session("oecd")
        session.focus(Insight("skew", ("SelfReportedHealth",), 2.0, "abs_skewness"))
        restored = workspace.restore_session(session.save())
        result = restored.recommend_near_focus("linear_relationship", top_k=2)
        assert len(result) == 2

    def test_restore_unknown_dataset_raises(self, workspace):
        session = workspace.session("oecd")
        state = session.save()
        state["dataset"] = "elsewhere"
        with pytest.raises(UnknownDatasetError):
            workspace.restore_session(state)
