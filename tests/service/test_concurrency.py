"""Concurrency tests: parallel/serial determinism and thread-safe serving.

Two guarantees are pinned down here:

* **determinism** — for every bundled dataset, a multi-class request
  produces byte-identical response payloads under ``max_workers=1`` and
  ``max_workers=4`` (sharded scoring and parallel preprocessing must
  never change a single byte of the rankings);
* **thread safety** — one :class:`Workspace` hammered by many threads
  (concurrent ``handle`` + ``reload`` + ``invalidate``) never corrupts
  its counters: engine builds are single-flight, every cache lookup is
  accounted for, and the LRU never exceeds capacity.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import ExecutorConfig, InsightRequest, Workspace
from repro.core.registry import default_registry
from repro.data.datasets import make_mixed_table

ALL_CLASSES = tuple(default_registry().names())

#: ALL_CLASSES minus the 3-attribute / quadratic classes whose candidate
#: spaces make the larger bundled datasets slow to rank twice; the full
#: list still runs on the two fast datasets, so every class is covered.
FAST_CLASSES = tuple(
    name for name in ALL_CLASSES if name not in ("segmentation", "dependence")
)

#: Element-wise univariate classes — the scoring-bound workload that the
#: sharded score stage fans out across workers.
SHARDED_CLASSES = ("dispersion", "skew", "heavy_tails", "outliers",
                   "normality", "multimodality")


def _comparable_payload(response) -> str:
    """Canonical response JSON minus fields that legitimately vary.

    Wall-clock timing and the advertised worker count differ between a
    serial and a parallel run by construction; everything else —
    rankings, scores, summaries, pagination, cache/pipeline provenance —
    must match byte for byte.
    """
    payload = response.to_dict()
    payload.pop("timing")
    payload["provenance"].pop("max_workers")
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestParallelSerialDeterminism:
    @pytest.mark.parametrize("table_fixture, mode, classes", [
        ("oecd_table", None, ALL_CLASSES),
        ("oecd_table", "exact", ALL_CLASSES),
        ("small_mixed_table", None, ALL_CLASSES),
        ("small_mixed_table", "exact", ALL_CLASSES),
        ("parkinson_table", None, FAST_CLASSES),
        ("imdb_table", None, FAST_CLASSES),
    ])
    def test_every_bundled_dataset_identical_under_parallelism(
        self, request, table_fixture, mode, classes
    ):
        table = request.getfixturevalue(table_fixture)
        dto = InsightRequest(
            dataset="data", insight_classes=classes, top_k=3, mode=mode
        )
        payloads = []
        for workers in (1, 4):
            workspace = Workspace(
                executor=ExecutorConfig(max_workers=workers, min_chunk_size=1)
            )
            workspace.register("data", table)
            response = workspace.handle(dto)
            assert response.provenance["cache"] == "miss"
            assert response.provenance["max_workers"] == workers
            payloads.append(_comparable_payload(response))
            workspace.engine("data").executor.close()
        assert payloads[0] == payloads[1]

    def test_sharding_engages_on_scoring_bound_request(self, oecd_table):
        workspace = Workspace(
            executor=ExecutorConfig(max_workers=4, min_chunk_size=1)
        )
        workspace.register("data", oecd_table)
        response = workspace.handle(
            InsightRequest(dataset="data", insight_classes=SHARDED_CLASSES, top_k=3)
        )
        try:
            assert response.provenance["max_workers"] == 4
            # The univariate classes share one enumeration of the numeric
            # singletons; sharding happened inside the score stage.
            assert response.provenance["enumerations"] == 1
            assert response.provenance["shared_queries"] == len(SHARDED_CLASSES) - 1
        finally:
            workspace.engine("data").executor.close()

    def test_handle_many_matches_sequential_handles(self, small_mixed_table):
        requests = [
            InsightRequest(dataset="data", insight_classes=("skew", "outliers"),
                           top_k=k)
            for k in (1, 2, 3, 4)
        ]
        serial_ws = Workspace()
        serial_ws.register("data", small_mixed_table)
        sequential = [_comparable_payload(serial_ws.handle(r)) for r in requests]

        batch_ws = Workspace()
        batch_ws.register("data", small_mixed_table)
        batched = batch_ws.handle_many(requests, max_workers=4)
        for index, (response, request_dto) in enumerate(zip(batched, requests)):
            batch = response.provenance["batch"]
            assert batch["index"] == index
            assert batch["size"] == len(requests)
            response.provenance = {
                k: v for k, v in response.provenance.items() if k != "batch"
            }
            assert _comparable_payload(response) == sequential[index]


class TestWorkspaceUnderConcurrency:
    def _make_workspace(self, loads: list[int]) -> Workspace:
        def loader():
            loads.append(1)
            return make_mixed_table(n_rows=200, n_numeric=8, n_categorical=2, seed=9)

        workspace = Workspace(cache_size=8)
        workspace.register("data", loader)
        return workspace

    def test_cold_start_race_builds_engine_exactly_once(self):
        loads: list[int] = []
        workspace = self._make_workspace(loads)
        request = InsightRequest(dataset="data", insight_classes=("skew", "outliers"),
                                 top_k=3)
        n_threads = 12
        errors: list[Exception] = []
        start_gate = threading.Barrier(n_threads, timeout=10)

        def serve():
            try:
                start_gate.wait()
                response = workspace.handle(request)
                assert response.dataset_version == 1
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=serve) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        # Single-flight: N racing threads, one build, one loader run.
        assert workspace.engine_builds("data") == 1
        assert len(loads) == 1
        info = workspace.cache_info()
        # Every handle() does exactly one cache lookup.
        assert info["hits"] + info["misses"] == n_threads
        assert info["misses"] >= 1
        assert info["size"] <= info["capacity"]

    def test_stress_handle_reload_invalidate(self):
        loads: list[int] = []
        workspace = self._make_workspace(loads)
        requests = [
            InsightRequest(dataset="data", insight_classes=("skew",), top_k=k)
            for k in (1, 2, 3)
        ]
        n_handle_threads, handles_per_thread, n_reloads, n_invalidates = 6, 10, 3, 3
        errors: list[Exception] = []

        def hammer_handles(seed: int):
            try:
                for i in range(handles_per_thread):
                    response = workspace.handle(requests[(seed + i) % len(requests)])
                    assert response.carousels[0]["insight_class"] == "skew"
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        def hammer_reloads():
            try:
                for _ in range(n_reloads):
                    workspace.reload("data")
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        def hammer_invalidates():
            try:
                for _ in range(n_invalidates):
                    workspace.invalidate("data")
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer_handles, args=(seed,))
            for seed in range(n_handle_threads)
        ]
        threads.append(threading.Thread(target=hammer_reloads))
        threads.append(threading.Thread(target=hammer_invalidates))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        total_handles = n_handle_threads * handles_per_thread
        info = workspace.cache_info()
        # Counter consistency survives the races: one lookup per handle,
        # every removal accounted for, occupancy within bounds.
        assert info["hits"] + info["misses"] == total_handles
        assert info["evictions"] >= info["invalidations"]
        assert 0 <= info["size"] <= info["capacity"]
        # Reloads bump the version linearly and rebuild at most once per
        # generation (single-flight within each).
        assert workspace.version("data") == 1 + n_reloads
        assert 1 <= workspace.engine_builds("data") <= 1 + n_reloads
        assert 1 <= len(loads) <= 1 + n_reloads
        # The workspace still serves correct, current answers afterwards.
        response = workspace.handle(requests[0])
        assert response.dataset_version == 1 + n_reloads
        assert len(response.insights_for("skew")) == 1
