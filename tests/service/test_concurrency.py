"""Concurrency tests: parallel/serial determinism and thread-safe serving.

Two guarantees are pinned down here:

* **determinism** — for every bundled dataset, a multi-class request
  produces byte-identical response payloads under ``max_workers=1`` and
  ``max_workers=4`` (sharded scoring and parallel preprocessing must
  never change a single byte of the rankings);
* **thread safety** — one :class:`Workspace` hammered by many threads
  (concurrent ``handle`` + ``reload`` + ``invalidate``) never corrupts
  its counters: engine builds are single-flight, every cache lookup is
  accounted for, and the LRU never exceeds capacity.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import ExecutorConfig, InsightRequest, Workspace
from repro.core.registry import default_registry
from repro.data.datasets import make_mixed_table
from repro.errors import ServiceError
from repro.ingest import IngestConfig

ALL_CLASSES = tuple(default_registry().names())

#: ALL_CLASSES minus the 3-attribute / quadratic classes whose candidate
#: spaces make the larger bundled datasets slow to rank twice; the full
#: list still runs on the two fast datasets, so every class is covered.
FAST_CLASSES = tuple(
    name for name in ALL_CLASSES if name not in ("segmentation", "dependence")
)

#: Element-wise univariate classes — the scoring-bound workload that the
#: sharded score stage fans out across workers.
SHARDED_CLASSES = ("dispersion", "skew", "heavy_tails", "outliers",
                   "normality", "multimodality")


def _comparable_payload(response) -> str:
    """Canonical response JSON minus fields that legitimately vary.

    Wall-clock timing and the advertised worker count differ between a
    serial and a parallel run by construction; everything else —
    rankings, scores, summaries, pagination, cache/pipeline provenance —
    must match byte for byte.
    """
    payload = response.to_dict()
    payload.pop("timing")
    payload["provenance"].pop("max_workers")
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestParallelSerialDeterminism:
    @pytest.mark.parametrize("table_fixture, mode, classes", [
        ("oecd_table", None, ALL_CLASSES),
        ("oecd_table", "exact", ALL_CLASSES),
        ("small_mixed_table", None, ALL_CLASSES),
        ("small_mixed_table", "exact", ALL_CLASSES),
        ("parkinson_table", None, FAST_CLASSES),
        ("imdb_table", None, FAST_CLASSES),
    ])
    def test_every_bundled_dataset_identical_under_parallelism(
        self, request, table_fixture, mode, classes
    ):
        table = request.getfixturevalue(table_fixture)
        dto = InsightRequest(
            dataset="data", insight_classes=classes, top_k=3, mode=mode
        )
        payloads = []
        for workers in (1, 4):
            workspace = Workspace(
                executor=ExecutorConfig(max_workers=workers, min_chunk_size=1)
            )
            workspace.register("data", table)
            response = workspace.handle(dto)
            assert response.provenance["cache"] == "miss"
            assert response.provenance["max_workers"] == workers
            payloads.append(_comparable_payload(response))
            workspace.engine("data").executor.close()
        assert payloads[0] == payloads[1]

    def test_sharding_engages_on_scoring_bound_request(self, oecd_table):
        workspace = Workspace(
            executor=ExecutorConfig(max_workers=4, min_chunk_size=1)
        )
        workspace.register("data", oecd_table)
        response = workspace.handle(
            InsightRequest(dataset="data", insight_classes=SHARDED_CLASSES, top_k=3)
        )
        try:
            assert response.provenance["max_workers"] == 4
            # The univariate classes share one enumeration of the numeric
            # singletons; sharding happened inside the score stage.
            assert response.provenance["enumerations"] == 1
            assert response.provenance["shared_queries"] == len(SHARDED_CLASSES) - 1
        finally:
            workspace.engine("data").executor.close()

    def test_handle_many_matches_sequential_handles(self, small_mixed_table):
        requests = [
            InsightRequest(dataset="data", insight_classes=("skew", "outliers"),
                           top_k=k)
            for k in (1, 2, 3, 4)
        ]
        serial_ws = Workspace()
        serial_ws.register("data", small_mixed_table)
        sequential = [_comparable_payload(serial_ws.handle(r)) for r in requests]

        batch_ws = Workspace()
        batch_ws.register("data", small_mixed_table)
        batched = batch_ws.handle_many(requests, max_workers=4)
        for index, (response, request_dto) in enumerate(zip(batched, requests)):
            batch = response.provenance["batch"]
            assert batch["index"] == index
            assert batch["size"] == len(requests)
            response.provenance = {
                k: v for k, v in response.provenance.items() if k != "batch"
            }
            assert _comparable_payload(response) == sequential[index]


class TestWorkspaceUnderConcurrency:
    def _make_workspace(self, loads: list[int]) -> Workspace:
        def loader():
            loads.append(1)
            return make_mixed_table(n_rows=200, n_numeric=8, n_categorical=2, seed=9)

        workspace = Workspace(cache_size=8)
        workspace.register("data", loader)
        return workspace

    def test_cold_start_race_builds_engine_exactly_once(self):
        loads: list[int] = []
        workspace = self._make_workspace(loads)
        request = InsightRequest(dataset="data", insight_classes=("skew", "outliers"),
                                 top_k=3)
        n_threads = 12
        errors: list[Exception] = []
        start_gate = threading.Barrier(n_threads, timeout=10)

        def serve():
            try:
                start_gate.wait()
                response = workspace.handle(request)
                assert response.dataset_version == 1
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=serve) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        # Single-flight: N racing threads, one build, one loader run.
        assert workspace.engine_builds("data") == 1
        assert len(loads) == 1
        info = workspace.cache_info()
        # Every handle() does exactly one cache lookup.
        assert info["hits"] + info["misses"] == n_threads
        assert info["misses"] >= 1
        assert info["size"] <= info["capacity"]

    def test_stress_handle_reload_invalidate(self):
        loads: list[int] = []
        workspace = self._make_workspace(loads)
        requests = [
            InsightRequest(dataset="data", insight_classes=("skew",), top_k=k)
            for k in (1, 2, 3)
        ]
        n_handle_threads, handles_per_thread, n_reloads, n_invalidates = 6, 10, 3, 3
        errors: list[Exception] = []

        def hammer_handles(seed: int):
            try:
                for i in range(handles_per_thread):
                    response = workspace.handle(requests[(seed + i) % len(requests)])
                    assert response.carousels[0]["insight_class"] == "skew"
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        def hammer_reloads():
            try:
                for _ in range(n_reloads):
                    workspace.reload("data")
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        def hammer_invalidates():
            try:
                for _ in range(n_invalidates):
                    workspace.invalidate("data")
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer_handles, args=(seed,))
            for seed in range(n_handle_threads)
        ]
        threads.append(threading.Thread(target=hammer_reloads))
        threads.append(threading.Thread(target=hammer_invalidates))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        total_handles = n_handle_threads * handles_per_thread
        info = workspace.cache_info()
        # Counter consistency survives the races: one lookup per handle,
        # every removal accounted for, occupancy within bounds.
        assert info["hits"] + info["misses"] == total_handles
        assert info["evictions"] >= info["invalidations"]
        assert 0 <= info["size"] <= info["capacity"]
        # Reloads bump the version linearly and rebuild at most once per
        # generation (single-flight within each).
        assert workspace.version("data") == 1 + n_reloads
        assert 1 <= workspace.engine_builds("data") <= 1 + n_reloads
        assert 1 <= len(loads) <= 1 + n_reloads
        # The workspace still serves correct, current answers afterwards.
        response = workspace.handle(requests[0])
        assert response.dataset_version == 1 + n_reloads
        assert len(response.insights_for("skew")) == 1

    def test_concurrent_register_same_name_has_exactly_one_winner(self):
        """register() is an atomic check-and-insert.

        N threads racing to register one new name produce exactly one
        entry; the losers get the "already registered" error instead of
        silently clobbering the winner's dataset (or double-starting its
        journal generation).
        """
        def loader():
            return make_mixed_table(n_rows=40, n_numeric=2,
                                    n_categorical=1, seed=13)

        for _attempt in range(5):
            workspace = Workspace()
            n_threads = 8
            gate = threading.Barrier(n_threads, timeout=10)
            outcomes: list[str] = []
            record = threading.Lock()

            def race():
                gate.wait()
                try:
                    workspace.register("shared", loader)
                    result = "registered"
                except ServiceError:
                    result = "duplicate"
                with record:
                    outcomes.append(result)

            threads = [threading.Thread(target=race)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert outcomes.count("registered") == 1
            assert outcomes.count("duplicate") == n_threads - 1
            assert workspace.datasets() == ["shared"]
            assert workspace.version("shared") == 1


class TestBackgroundRebuild:
    """Queries and appends racing an off-path rebuild stay consistent.

    The atomic-swap contract: every response is byte-identical to the
    reference response for the ``(version, seq)`` snapshot it claims —
    a half-built engine serving even one request would break that — and
    the swap mints a sequence number of its own, so the rebuilt engine
    never masquerades under the merged engine's identity.
    """

    @staticmethod
    def _table():
        return make_mixed_table(n_rows=400, n_numeric=4, n_categorical=2,
                                seed=31)

    @staticmethod
    def _stream():
        return make_mixed_table(n_rows=60, n_numeric=4, n_categorical=2,
                                seed=32).to_records()

    @staticmethod
    def _request():
        return InsightRequest(dataset="live",
                              insight_classes=("skew", "outliers"), top_k=3)

    def _prepared(self):
        workspace = Workspace(
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("live", self._table())
        workspace.engine("live")
        stream = self._stream()
        for start in (0, 20, 40):
            workspace.append("live", stream[start:start + 20])
        return workspace

    def test_queries_racing_a_rebuild_match_their_snapshots_reference(self):
        # Sequential reference: the same appends, then a rebuild — one
        # known-good payload per reachable (version, seq).
        reference = self._prepared()
        expected = {3: reference.handle(self._request()).to_dict()["carousels"]}
        swap = reference.rebuild("live")
        assert (swap["built_from_rows"], swap["merged_rows"]) == (460, 0)
        expected[4] = reference.handle(self._request()).to_dict()["carousels"]

        workspace = self._prepared()
        responses, errors = [], []
        stop = threading.Event()

        def query_loop():
            try:
                while not stop.is_set():
                    responses.append(workspace.handle(self._request()))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        assert workspace.rebuild("live")["seq"] == 4  # races the queries
        responses.append(workspace.handle(self._request()))
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors
        seqs = {response.dataset_seq for response in responses}
        assert seqs <= {3, 4}
        assert 4 in seqs  # the post-swap query saw the rebuilt engine
        for response in responses:
            assert response.to_dict()["carousels"] == (
                expected[response.dataset_seq]
            ), f"torn read at seq {response.dataset_seq}"
        # Exactly one extra build: the swap was atomic and single.
        assert workspace.engine_builds("live") == 2

    def test_appends_racing_a_rebuild_keep_delta_merging(self, tmp_path):
        """Appends never block on (or get swallowed by) the rebuild.

        The durable journal doubles as the correctness oracle here: the
        live engine after a racy swap must byte-match what replaying the
        journal — which records the exact swap position — reconstructs.
        """
        stream = self._stream()
        workspace = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("live", self._table())
        workspace.engine("live")
        workspace.append("live", stream[:20])

        rebuilt: list[dict] = []
        worker = threading.Thread(
            target=lambda: rebuilt.append(workspace.rebuild("live")))
        worker.start()
        results = [workspace.append("live", stream[start:start + 8])
                   for start in (20, 28, 36, 44)]
        worker.join()

        assert all(result.applied == "delta_merge" for result in results)
        assert rebuilt[0] is not None  # the swap landed
        final = workspace.handle(self._request())
        live_payload = json.dumps(final.to_dict()["carousels"])
        workspace.close()

        # Inline tables snapshot at registration, so the replayed
        # workspace restores "live" on open — no register needed.
        replayed = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        assert replayed.state("live") == (
            final.dataset_version, final.dataset_seq
        )
        replay_payload = json.dumps(
            replayed.handle(self._request()).to_dict()["carousels"])
        assert replay_payload == live_payload

    def test_replace_registration_discards_a_racing_rebuild(
        self, tmp_path, monkeypatch
    ):
        """A rebuild that loses the race to register(replace=True) must
        vanish entirely.

        The stale rebuild captured the old entry object, whose version
        never changes when replacement installs a new entry — so without
        an explicit supersession flag it would swap its engine in AND
        journal its swap record + snapshot (old version!) into the
        replacement's generation, destroying the replacement's only
        durable copy and resurrecting the old dataset on restart.
        """
        import repro.service.workspace as workspace_module

        stream = self._stream()
        workspace = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("live", self._table())
        workspace.engine("live")
        workspace.append("live", stream[:20])

        real_foresight = workspace_module.Foresight
        build_started = threading.Event()
        release_build = threading.Event()

        def stalled_foresight(*args, **kwargs):
            build_started.set()
            assert release_build.wait(timeout=30)
            return real_foresight(*args, **kwargs)

        monkeypatch.setattr(workspace_module, "Foresight", stalled_foresight)
        outcomes: list[dict | None] = []
        worker = threading.Thread(
            target=lambda: outcomes.append(workspace.rebuild("live")))
        worker.start()
        assert build_started.wait(timeout=30)

        # While the rebuild's off-lock build is in flight, replace the
        # dataset wholesale: different rows, a new generation on disk.
        replacement = make_mixed_table(n_rows=50, n_numeric=4,
                                       n_categorical=2, seed=33)
        workspace.register("live", replacement, replace=True)
        monkeypatch.setattr(workspace_module, "Foresight", real_foresight)
        release_build.set()
        worker.join(timeout=30)
        assert not worker.is_alive()

        assert outcomes == [None]  # the stale rebuild discarded itself
        assert workspace.state("live") == (2, 0)
        assert workspace.table("live").n_rows == 50
        # Appends keep landing in the replacement's generation.
        appended = workspace.append("live", stream[:5])
        assert (appended.version, appended.seq) == (2, 1)
        workspace.close()

        # A restart restores the replacement: the stale rebuild never
        # journalled into (or snapshotted over) its generation.
        replayed = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        assert replayed.state("live") == (2, 1)
        assert replayed.table("live").n_rows == 55
        replayed.close()

    def test_append_losing_the_lock_race_to_replace_lands_on_the_replacement(
        self, tmp_path, monkeypatch
    ):
        """Fetching an entry and locking it is not atomic.

        A replace-registration landing in that window leaves the caller
        holding a dead entry whose journal handle now points into the
        replacement's generation — appending through it would journal
        the old dataset's rows (and seq) into the new generation.  The
        locked-entry helper must detect the superseded entry and retry
        on the current one.
        """
        stream = self._stream()
        workspace = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        workspace.register("live", self._table())
        workspace.engine("live")

        replacement = make_mixed_table(n_rows=50, n_numeric=4,
                                       n_categorical=2, seed=33)
        real_entry = Workspace._entry
        state = {"armed": True}

        def racing_entry(self, name):
            entry = real_entry(self, name)
            if state["armed"] and name == "live":
                # Deterministically emulate the preemption: the replace
                # completes after the fetch, before the lock.
                state["armed"] = False
                self.register("live", replacement, replace=True)
            return entry

        monkeypatch.setattr(Workspace, "_entry", racing_entry)
        result = workspace.append("live", stream[:5])
        monkeypatch.setattr(Workspace, "_entry", real_entry)

        # The append retried onto the replacement — never the dead entry.
        assert (result.version, result.seq) == (2, 1)
        assert workspace.table("live").n_rows == 55
        workspace.close()

        replayed = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        assert replayed.state("live") == (2, 1)
        assert replayed.table("live").n_rows == 55
        replayed.close()
