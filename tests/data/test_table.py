"""Tests for the DataTable."""

import numpy as np
import pytest

from repro.data import DataTable, numeric_column
from repro.data.schema import ColumnKind
from repro.errors import SchemaError, UnknownColumnError


class TestConstruction:
    def test_from_columns_infers_kinds(self, simple_table):
        assert simple_table.shape == (6, 5)
        assert simple_table.column("height").kind is ColumnKind.NUMERIC
        assert simple_table.column("city").kind is ColumnKind.CATEGORICAL
        assert simple_table.column("smoker").kind is ColumnKind.BOOLEAN

    def test_from_records(self):
        table = DataTable.from_records(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3}]
        )
        assert table.shape == (3, 2)
        assert table.column("b").missing_count() == 1

    def test_from_numeric_matrix(self):
        matrix = np.arange(12, dtype=float).reshape(4, 3)
        table = DataTable.from_numeric_matrix(matrix, ["a", "b", "c"])
        assert table.numeric_names() == ["a", "b", "c"]
        np.testing.assert_allclose(table.numeric_matrix()[0], matrix)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            DataTable([numeric_column("a", [1.0, 2.0]), numeric_column("b", [1.0])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DataTable([numeric_column("a", [1.0]), numeric_column("a", [2.0])])

    def test_kind_override(self):
        table = DataTable.from_columns(
            {"code": [1, 2, 3]}, kinds={"code": ColumnKind.CATEGORICAL}
        )
        assert table.column("code").kind is ColumnKind.CATEGORICAL


class TestAccess:
    def test_unknown_column(self, simple_table):
        with pytest.raises(UnknownColumnError):
            simple_table.column("nope")

    def test_numeric_column_type_check(self, simple_table):
        with pytest.raises(SchemaError):
            simple_table.numeric_column("city")

    def test_categorical_column_type_check(self, simple_table):
        with pytest.raises(SchemaError):
            simple_table.categorical_column("height")

    def test_numeric_and_categorical_names(self, simple_table):
        assert set(simple_table.numeric_names()) == {"height", "weight", "children"}
        assert set(simple_table.categorical_names()) == {"city", "smoker"}

    def test_discrete_names_include_low_cardinality_numeric(self, simple_table):
        assert "children" in simple_table.discrete_names()

    def test_schema_round_trip(self, simple_table):
        schema = simple_table.schema
        assert schema.names() == simple_table.column_names()


class TestTransformations:
    def test_select_order(self, simple_table):
        selected = simple_table.select(["city", "height"])
        assert selected.column_names() == ["city", "height"]
        assert selected.n_rows == simple_table.n_rows

    def test_drop(self, simple_table):
        dropped = simple_table.drop(["city"])
        assert "city" not in dropped
        assert dropped.n_columns == simple_table.n_columns - 1

    def test_rename(self, simple_table):
        renamed = simple_table.rename({"height": "height_m"})
        assert "height_m" in renamed
        assert "height" not in renamed

    def test_take_and_head(self, simple_table):
        head = simple_table.head(2)
        assert head.n_rows == 2
        taken = simple_table.take([5, 0])
        assert taken.column("city").labels()[0] == "Paris"

    def test_filter_rows(self, simple_table):
        paris = simple_table.filter_rows(lambda row: row["city"] == "Paris")
        assert paris.n_rows == 3

    def test_sample_reproducible(self, simple_table):
        a = simple_table.sample(3, seed=1)
        b = simple_table.sample(3, seed=1)
        assert a.to_records() == b.to_records()

    def test_split_partitions_rows(self, simple_table):
        left, right = simple_table.split(0.5, seed=0)
        assert left.n_rows + right.n_rows == simple_table.n_rows

    def test_with_column_appends_and_replaces(self, simple_table):
        extra = numeric_column("bmi", [20, 22, 25, 23, 21, 26])
        with_extra = simple_table.with_column(extra)
        assert "bmi" in with_extra
        replaced = with_extra.with_column(numeric_column("bmi", [1, 1, 1, 1, 1, 1]))
        assert replaced.numeric_column("bmi").values[0] == 1.0

    def test_with_column_length_check(self, simple_table):
        with pytest.raises(SchemaError):
            simple_table.with_column(numeric_column("bad", [1.0]))


class TestExport:
    def test_numeric_matrix_has_nan_for_missing(self, simple_table):
        matrix, names = simple_table.numeric_matrix(["height", "weight"])
        assert matrix.shape == (6, 2)
        assert np.isnan(matrix[3, 0])
        assert names == ["height", "weight"]

    def test_records_round_trip(self, simple_table):
        records = simple_table.to_records()
        rebuilt = DataTable.from_records(records, kinds={"children": ColumnKind.NUMERIC})
        assert rebuilt.shape == simple_table.shape
        assert rebuilt.column("city").labels() == simple_table.column("city").labels()

    def test_summary(self, simple_table):
        summary = simple_table.summary()
        assert summary["n_rows"] == 6
        assert summary["missing_cells"] == 2
