"""Tests for CSV reading and writing."""

import pytest

from repro.data.csv_io import (
    column_kinds_from_strings,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.data.schema import ColumnKind
from repro.errors import SchemaError

CSV_TEXT = """name,age,member,score
alice,34,yes,8.5
bob,28,no,7.25
carol,,yes,
dave,41,no,9.0
"""


class TestReadCsvText:
    def test_basic_parse(self):
        table = read_csv_text(CSV_TEXT, name="people")
        assert table.name == "people"
        assert table.shape == (4, 4)
        assert table.column("age").kind is ColumnKind.NUMERIC
        assert table.column("member").kind is ColumnKind.BOOLEAN
        assert table.column("name").kind is ColumnKind.CATEGORICAL

    def test_missing_cells(self):
        table = read_csv_text(CSV_TEXT)
        assert table.column("age").missing_count() == 1
        assert table.column("score").missing_count() == 1

    def test_kind_override(self):
        table = read_csv_text(CSV_TEXT, kinds={"age": ColumnKind.CATEGORICAL})
        assert table.column("age").kind is ColumnKind.CATEGORICAL

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("")

    def test_duplicate_header_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,a\n1,2\n")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,b\n1\n")

    def test_custom_delimiter(self):
        table = read_csv_text("a;b\n1;x\n2;y\n", delimiter=";")
        assert table.shape == (2, 2)


class TestRoundTrip:
    def test_text_round_trip(self):
        table = read_csv_text(CSV_TEXT)
        text = to_csv_text(table)
        again = read_csv_text(text)
        assert again.shape == table.shape
        assert again.column("age").missing_count() == 1
        assert again.column("name").labels() == table.column("name").labels()

    def test_file_round_trip(self, tmp_path, simple_table):
        path = tmp_path / "people.csv"
        write_csv(simple_table, path)
        loaded = read_csv(path)
        assert loaded.shape == simple_table.shape
        assert loaded.name == "people"
        assert loaded.column("city").labels() == simple_table.column("city").labels()

    def test_numeric_values_preserved(self, tmp_path, simple_table):
        path = tmp_path / "people.csv"
        write_csv(simple_table, path)
        loaded = read_csv(path)
        original = simple_table.numeric_column("weight").valid_values()
        reloaded = loaded.numeric_column("weight").valid_values()
        assert original.tolist() == reloaded.tolist()


class TestKindHelpers:
    def test_column_kinds_from_strings(self):
        kinds = column_kinds_from_strings({"a": "numeric", "b": "categorical"})
        assert kinds["a"] is ColumnKind.NUMERIC
        assert kinds["b"] is ColumnKind.CATEGORICAL

    def test_invalid_kind_string(self):
        with pytest.raises(SchemaError):
            column_kinds_from_strings({"a": "integer"})
