"""Tests for the synthetic demo datasets and workload generators."""

import numpy as np
import pytest

from repro.data.datasets import (
    HEALTH_LIFESATISFACTION_CORRELATION,
    LEISURE_WORKHOURS_CORRELATION,
    OECD_COUNTRIES,
    OECD_INDICATORS,
    figure2_abbreviations,
    load_imdb,
    load_oecd,
    load_parkinson,
    make_bimodal_column,
    make_clustered_table,
    make_correlated_pair,
    make_mixed_table,
    make_numeric_table,
    make_uniform_categorical,
    make_zipf_categorical,
)
from repro.stats import (
    multimodality_strength,
    normality_test,
    pearson,
    relative_frequency_topk,
    segmentation_strength,
    skewness,
    top_correlated_pairs,
)


class TestOecd:
    def test_shape_matches_paper(self, oecd_table):
        # "25 distinct attributes (indicators) about 35 countries"
        assert oecd_table.n_rows == len(OECD_COUNTRIES) == 35
        assert oecd_table.n_columns == 25
        assert len(oecd_table.numeric_names()) == len(OECD_INDICATORS) == 24

    def test_working_hours_vs_leisure_strongly_negative(self, oecd_table):
        rho = pearson(
            oecd_table.numeric_column("EmployeesWorkingVeryLongHours").values,
            oecd_table.numeric_column("TimeDevotedToLeisure").values,
        )
        assert rho == pytest.approx(LEISURE_WORKHOURS_CORRELATION, abs=1e-9)

    def test_leisure_uncorrelated_with_health(self, oecd_table):
        rho = pearson(
            oecd_table.numeric_column("TimeDevotedToLeisure").values,
            oecd_table.numeric_column("SelfReportedHealth").values,
        )
        assert abs(rho) < 1e-9

    def test_health_vs_life_satisfaction_high(self, oecd_table):
        rho = pearson(
            oecd_table.numeric_column("SelfReportedHealth").values,
            oecd_table.numeric_column("LifeSatisfaction").values,
        )
        assert rho == pytest.approx(HEALTH_LIFESATISFACTION_CORRELATION, abs=1e-9)

    def test_leisure_is_approximately_normal(self, oecd_table):
        shape = normality_test(
            oecd_table.numeric_column("TimeDevotedToLeisure").valid_values()
        )
        assert shape.shape_label == "approximately normal"

    def test_health_is_left_skewed(self, oecd_table):
        values = oecd_table.numeric_column("SelfReportedHealth").valid_values()
        assert skewness(values) < -0.5

    def test_top_pair_is_workhours_leisure(self, oecd_table):
        matrix, names = oecd_table.numeric_matrix()
        top = top_correlated_pairs(matrix, names, k=1)[0]
        assert {top[0], top[1]} == {
            "EmployeesWorkingVeryLongHours",
            "TimeDevotedToLeisure",
        }

    def test_deterministic_for_fixed_seed(self):
        a = load_oecd(seed=3)
        b = load_oecd(seed=3)
        np.testing.assert_allclose(a.numeric_matrix()[0], b.numeric_matrix()[0])

    def test_figure2_abbreviations_cover_all_indicators(self):
        mapping = figure2_abbreviations()
        assert set(mapping) == set(OECD_INDICATORS.values())
        assert len(set(mapping.values())) == len(mapping)


class TestParkinson:
    def test_shape_matches_paper(self):
        table = load_parkinson()
        assert table.shape == (2000, 50)

    def test_reduced_table_structure(self, parkinson_table):
        assert parkinson_table.n_columns == 50
        assert "UPDRS_Total" in parkinson_table.numeric_names()
        assert "StudySite" in parkinson_table.categorical_names()

    def test_updrs_parts_correlate_with_total(self, parkinson_table):
        total = parkinson_table.numeric_column("UPDRS_Total").values
        part3 = parkinson_table.numeric_column("UPDRS_III").values
        assert pearson(total, part3) > 0.8

    def test_duration_drives_severity(self, parkinson_table):
        rho = pearson(
            parkinson_table.numeric_column("YearsSinceDiagnosis").values,
            parkinson_table.numeric_column("UPDRS_Total").values,
        )
        assert rho > 0.4

    def test_has_missing_clinical_values(self, parkinson_table):
        assert parkinson_table.numeric_column("CSF_Tau").missing_count() > 0


class TestImdb:
    def test_shape_matches_paper(self):
        table = load_imdb()
        assert table.shape == (5000, 28)

    def test_budget_gross_related(self, imdb_table):
        budget = imdb_table.numeric_column("BudgetMillions").values
        gross = imdb_table.numeric_column("GrossMillions").values
        keep = ~(np.isnan(budget) | np.isnan(gross))
        assert pearson(np.log1p(budget[keep]), np.log1p(gross[keep])) > 0.5

    def test_critic_and_user_scores_related(self, imdb_table):
        assert (
            pearson(
                imdb_table.numeric_column("IMDBScore").values,
                imdb_table.numeric_column("CriticScore").values,
            )
            > 0.5
        )

    def test_country_has_heavy_hitters(self, imdb_table):
        labels = imdb_table.categorical_column("Country").valid_labels()
        assert relative_frequency_topk(labels, k=1) > 0.4

    def test_gross_right_skewed(self, imdb_table):
        assert skewness(imdb_table.numeric_column("GrossMillions").valid_values()) > 1.0


class TestSyntheticGenerators:
    def test_numeric_table_shape_and_blocks(self):
        table = make_numeric_table(n_rows=2000, n_columns=10, block_size=5,
                                   block_correlation=0.9, skewed_fraction=0.0,
                                   heavy_tailed_fraction=0.0, outlier_fraction=0.0,
                                   seed=1)
        assert table.shape == (2000, 10)
        matrix, names = table.numeric_matrix()
        within = abs(pearson(matrix[:, 5], matrix[:, 6]))
        across = abs(pearson(matrix[:, 0], matrix[:, 7]))
        assert within > 0.7
        assert across < 0.2

    def test_missing_rate(self):
        table = make_numeric_table(n_rows=500, n_columns=4, missing_rate=0.2, seed=2)
        total_missing = sum(c.missing_count() for c in table.columns())
        assert 200 < total_missing < 600

    def test_correlated_pair(self):
        table = make_correlated_pair(5000, 0.7, seed=3)
        rho = pearson(
            table.numeric_column("x").values, table.numeric_column("y").values
        )
        assert rho == pytest.approx(0.7, abs=0.05)

    def test_zipf_categorical_has_heavy_hitters(self):
        column = make_zipf_categorical(5000, n_categories=200, exponent=1.6, seed=4)
        assert relative_frequency_topk(column.valid_labels(), k=5) > 0.5

    def test_uniform_categorical_is_flat(self):
        column = make_uniform_categorical(5000, n_categories=10, seed=5)
        assert relative_frequency_topk(column.valid_labels(), k=1) < 0.2

    def test_bimodal_column_is_multimodal(self):
        column = make_bimodal_column(3000, separation=6.0, seed=6)
        assert multimodality_strength(column.valid_values()) > 0.3

    def test_clustered_table_segments(self, clustered_table):
        strength = segmentation_strength(
            clustered_table.numeric_column("x").values,
            clustered_table.numeric_column("y").values,
            clustered_table.categorical_column("cluster").labels(),
        )
        assert strength > 0.7

    def test_mixed_table_composition(self, small_mixed_table):
        assert len(small_mixed_table.numeric_names()) == 12
        assert len(small_mixed_table.categorical_names()) == 3
