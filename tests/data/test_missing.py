"""Tests for missing-value policies."""

import numpy as np
import pytest

from repro.data import DataTable
from repro.data.missing import (
    complete_rows_mask,
    dense_numeric_matrix,
    drop_missing,
    groupwise_values,
    impute_mean,
    impute_median,
    impute_mode,
    pairwise_values,
)
from repro.errors import EmptyColumnError, SchemaError


@pytest.fixture()
def gappy_table() -> DataTable:
    return DataTable.from_columns(
        {
            "a": [1.0, None, 3.0, 4.0, None],
            "b": [10.0, 20.0, None, 40.0, 50.0],
            "g": ["x", "x", "y", "y", None],
        }
    )


class TestMasksAndDrop:
    def test_complete_rows_mask(self, gappy_table):
        mask = complete_rows_mask(gappy_table, ["a", "b"])
        assert mask.tolist() == [True, False, False, True, False]

    def test_complete_rows_mask_empty_names(self, gappy_table):
        assert complete_rows_mask(gappy_table, []).all()

    def test_drop_missing_all_columns(self, gappy_table):
        clean = drop_missing(gappy_table)
        assert clean.n_rows == 2

    def test_drop_missing_subset(self, gappy_table):
        clean = drop_missing(gappy_table, ["a"])
        assert clean.n_rows == 3


class TestPairwiseAndGroupwise:
    def test_pairwise_values(self, gappy_table):
        x, y = pairwise_values(
            gappy_table.numeric_column("a"), gappy_table.numeric_column("b")
        )
        assert x.tolist() == [1.0, 4.0]
        assert y.tolist() == [10.0, 40.0]

    def test_pairwise_minimum_enforced(self, gappy_table):
        with pytest.raises(EmptyColumnError):
            pairwise_values(
                gappy_table.numeric_column("a"),
                gappy_table.numeric_column("b"),
                minimum=3,
            )

    def test_pairwise_length_check(self, gappy_table, simple_table):
        with pytest.raises(SchemaError):
            pairwise_values(
                gappy_table.numeric_column("a"), simple_table.numeric_column("height")
            )

    def test_groupwise_values(self, gappy_table):
        groups = groupwise_values(
            gappy_table.numeric_column("b"), gappy_table.categorical_column("g")
        )
        assert set(groups) == {"x", "y"}
        assert groups["x"].tolist() == [10.0, 20.0]
        assert groups["y"].tolist() == [40.0]


class TestImputation:
    def test_impute_mean(self, gappy_table):
        filled = impute_mean(gappy_table.numeric_column("a"))
        assert filled.missing_count() == 0
        assert filled.values[1] == pytest.approx(np.mean([1.0, 3.0, 4.0]))

    def test_impute_median(self, gappy_table):
        filled = impute_median(gappy_table.numeric_column("b"))
        assert filled.missing_count() == 0
        assert filled.values[2] == pytest.approx(30.0)

    def test_impute_mode(self, gappy_table):
        filled = impute_mode(gappy_table.categorical_column("g"))
        assert filled.missing_count() == 0
        assert filled.labels()[-1] in {"x", "y"}

    def test_impute_empty_column_raises(self):
        table = DataTable.from_columns({"a": [None, None]},
                                       kinds={"a": __import__("repro.data.schema", fromlist=["ColumnKind"]).ColumnKind.NUMERIC})
        with pytest.raises(EmptyColumnError):
            impute_mean(table.numeric_column("a"))


class TestDenseMatrix:
    def test_impute_mean_policy(self, gappy_table):
        matrix, names = dense_numeric_matrix(gappy_table, policy="impute_mean")
        assert names == ["a", "b"]
        assert not np.isnan(matrix).any()
        assert matrix.shape == (5, 2)

    def test_drop_policy(self, gappy_table):
        matrix, _ = dense_numeric_matrix(gappy_table, policy="drop")
        assert matrix.shape == (2, 2)

    def test_unknown_policy(self, gappy_table):
        with pytest.raises(ValueError):
            dense_numeric_matrix(gappy_table, policy="zero")
