"""Tests for typed column containers."""

import numpy as np
import pytest

from repro.data.column import (
    BooleanColumn,
    CategoricalColumn,
    NumericColumn,
    categorical_column,
    column_from_raw,
    numeric_column,
)
from repro.data.schema import ColumnKind, Field
from repro.errors import ColumnTypeError, EmptyColumnError, SchemaError


class TestNumericColumn:
    def test_from_raw_parses_and_masks(self):
        column = NumericColumn.from_raw("x", ["1.5", "2", None, "oops", "4"])
        assert len(column) == 5
        assert column.missing_count() == 2
        np.testing.assert_allclose(column.valid_values(), [1.5, 2.0, 4.0])

    def test_nan_values_marked_missing(self):
        column = numeric_column("x", [1.0, float("nan"), 3.0])
        assert column.missing_count() == 1
        assert column.valid_count() == 2

    def test_values_are_readonly(self):
        column = numeric_column("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            column.values[0] = 99.0

    def test_require_valid_values_raises_when_too_few(self):
        column = numeric_column("x", [float("nan")])
        with pytest.raises(EmptyColumnError):
            column.require_valid_values(minimum=1)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn(Field("x", ColumnKind.CATEGORICAL), np.array([1.0]))

    def test_take_preserves_mask(self):
        column = numeric_column("x", [1.0, float("nan"), 3.0, 4.0])
        taken = column.take(np.array([1, 3]))
        assert taken.missing_count() == 1
        assert taken.valid_values().tolist() == [4.0]

    def test_rename_keeps_values(self):
        column = numeric_column("x", [1.0, 2.0], unit="m")
        renamed = column.rename("height")
        assert renamed.name == "height"
        assert renamed.field.unit == "m"
        np.testing.assert_allclose(renamed.values, column.values)

    def test_to_list_uses_none_for_missing(self):
        column = numeric_column("x", [1.0, float("nan")])
        assert column.to_list() == [1.0, None]

    def test_is_discrete(self):
        discrete = numeric_column("x", [1, 2, 2, 3, 1])
        continuous = numeric_column("y", np.linspace(0, 1, 50))
        assert discrete.is_discrete()
        assert not continuous.is_discrete()

    def test_missing_fraction(self):
        column = numeric_column("x", [1.0, float("nan"), float("nan"), 4.0])
        assert column.missing_fraction() == pytest.approx(0.5)

    def test_mask_shape_validation(self):
        with pytest.raises(SchemaError):
            NumericColumn(
                Field("x", ColumnKind.NUMERIC),
                np.array([1.0, 2.0]),
                np.array([False]),
            )


class TestCategoricalColumn:
    def test_from_raw_builds_codes(self):
        column = categorical_column("city", ["a", "b", "a", None, "c"])
        assert column.n_categories() == 3
        assert column.missing_count() == 1
        assert column.labels() == ["a", "b", "a", None, "c"]

    def test_value_counts_descending(self):
        column = categorical_column("city", ["x", "y", "x", "x", "y", "z"])
        counts = column.value_counts()
        assert list(counts.items()) == [("x", 3), ("y", 2), ("z", 1)]

    def test_valid_labels_and_codes(self):
        column = categorical_column("c", ["a", None, "b"])
        assert column.valid_labels() == ["a", "b"]
        assert column.valid_codes().tolist() == [0, 1]

    def test_duplicate_categories_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(
                Field("c", ColumnKind.CATEGORICAL), np.array([0, 1]), ["a", "a"]
            )

    def test_code_out_of_range_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(
                Field("c", ColumnKind.CATEGORICAL), np.array([0, 5]), ["a", "b"]
            )

    def test_take_and_rename(self):
        column = categorical_column("c", ["a", "b", "c", "a"])
        taken = column.take(np.array([0, 3]))
        assert taken.valid_labels() == ["a", "a"]
        renamed = column.rename("group")
        assert renamed.name == "group"
        assert renamed.categories == column.categories


class TestBooleanColumn:
    def test_from_raw(self):
        column = BooleanColumn.from_raw("flag", ["yes", "no", None, True, 0])
        assert column.kind is ColumnKind.BOOLEAN
        assert column.missing_count() == 1
        assert column.to_bool_array().tolist() == [True, False, True, False]

    def test_non_boolean_strings_become_missing(self):
        column = BooleanColumn.from_raw("flag", ["maybe", "yes"])
        assert column.missing_count() == 1

    def test_take_returns_boolean_column(self):
        column = BooleanColumn.from_raw("flag", [True, False, True])
        assert isinstance(column.take(np.array([0, 2])), BooleanColumn)


class TestColumnFromRaw:
    def test_dispatch(self):
        assert isinstance(
            column_from_raw("x", ["1", "2"], ColumnKind.NUMERIC), NumericColumn
        )
        assert isinstance(
            column_from_raw("x", ["a", "b"], ColumnKind.CATEGORICAL), CategoricalColumn
        )
        assert isinstance(
            column_from_raw("x", ["yes", "no"], ColumnKind.BOOLEAN), BooleanColumn
        )
