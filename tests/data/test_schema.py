"""Tests for column kinds, fields, schemas and type inference."""

import pytest

from repro.data.schema import (
    ColumnKind,
    Field,
    Schema,
    infer_kind,
    infer_schema,
    is_missing_token,
    parse_boolean,
    parse_number,
)
from repro.errors import SchemaError, UnknownColumnError


class TestColumnKind:
    def test_numeric_properties(self):
        assert ColumnKind.NUMERIC.is_numeric
        assert not ColumnKind.NUMERIC.is_categorical

    def test_categorical_properties(self):
        assert ColumnKind.CATEGORICAL.is_categorical
        assert not ColumnKind.CATEGORICAL.is_numeric

    def test_boolean_counts_as_categorical(self):
        assert ColumnKind.BOOLEAN.is_categorical
        assert not ColumnKind.BOOLEAN.is_numeric


class TestField:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Field(name="", kind=ColumnKind.NUMERIC)

    def test_requires_kind(self):
        with pytest.raises(SchemaError):
            Field(name="x", kind="numeric")  # type: ignore[arg-type]

    def test_with_description(self):
        field = Field("x", ColumnKind.NUMERIC).with_description("height in metres")
        assert field.description == "height in metres"
        assert field.name == "x"

    def test_with_tags_appends(self):
        field = Field("price", ColumnKind.NUMERIC, tags=("currency",)).with_tags("usd")
        assert field.tags == ("currency", "usd")


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            [
                Field("a", ColumnKind.NUMERIC),
                Field("b", ColumnKind.CATEGORICAL),
                Field("c", ColumnKind.BOOLEAN),
            ]
        )

    def test_names_in_order(self):
        assert self.make().names() == ["a", "b", "c"]

    def test_duplicate_names_rejected(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.add(Field("a", ColumnKind.NUMERIC))

    def test_numeric_and_categorical_names(self):
        schema = self.make()
        assert schema.numeric_names() == ["a"]
        assert schema.categorical_names() == ["b", "c"]

    def test_getitem_and_contains(self):
        schema = self.make()
        assert "b" in schema
        assert schema["b"].kind is ColumnKind.CATEGORICAL
        with pytest.raises(UnknownColumnError):
            schema["missing"]

    def test_index_of(self):
        assert self.make().index_of("c") == 2

    def test_drop_reindexes(self):
        schema = self.make()
        schema.drop("a")
        assert schema.names() == ["b", "c"]
        assert schema.index_of("c") == 1

    def test_replace(self):
        schema = self.make()
        schema.replace(Field("b", ColumnKind.NUMERIC))
        assert schema["b"].kind is ColumnKind.NUMERIC

    def test_select_preserves_order(self):
        selected = self.make().select(["c", "a"])
        assert selected.names() == ["c", "a"]

    def test_equality(self):
        assert self.make() == self.make()
        other = self.make()
        other.drop("a")
        assert self.make() != other


class TestParsing:
    @pytest.mark.parametrize("token", ["", "NA", "n/a", "NaN", "null", "None", "?", None])
    def test_missing_tokens(self, token):
        assert is_missing_token(token)

    @pytest.mark.parametrize("value", ["0", "hello", 0, 3.5, False])
    def test_non_missing(self, value):
        assert not is_missing_token(value)

    def test_nan_is_missing(self):
        assert is_missing_token(float("nan"))

    @pytest.mark.parametrize(
        "raw,expected",
        [("3.5", 3.5), ("1,000", 1000.0), (7, 7.0), (True, 1.0), ("-2e3", -2000.0)],
    )
    def test_parse_number(self, raw, expected):
        assert parse_number(raw) == expected

    @pytest.mark.parametrize("raw", ["abc", "", None, "12px"])
    def test_parse_number_rejects(self, raw):
        assert parse_number(raw) is None

    @pytest.mark.parametrize(
        "raw,expected",
        [("yes", True), ("No", False), ("t", True), (1, True), (0, False), (True, True)],
    )
    def test_parse_boolean(self, raw, expected):
        assert parse_boolean(raw) is expected

    @pytest.mark.parametrize("raw", ["maybe", 2, 3.7, None])
    def test_parse_boolean_rejects(self, raw):
        assert parse_boolean(raw) is None


class TestInference:
    def test_numeric(self):
        assert infer_kind(["1", "2.5", "-3", None]) is ColumnKind.NUMERIC

    def test_boolean(self):
        assert infer_kind(["yes", "no", "", "yes"]) is ColumnKind.BOOLEAN

    def test_categorical(self):
        assert infer_kind(["red", "green", "blue"]) is ColumnKind.CATEGORICAL

    def test_mixed_text_and_numbers_is_categorical(self):
        assert infer_kind(["1", "two", "3"]) is ColumnKind.CATEGORICAL

    def test_all_missing_defaults_to_categorical(self):
        assert infer_kind(["", None, "NA"]) is ColumnKind.CATEGORICAL

    def test_zero_one_integers_are_boolean(self):
        assert infer_kind([0, 1, 1, 0]) is ColumnKind.BOOLEAN

    def test_infer_schema_with_override(self):
        names = ["x", "label"]
        rows = [["1", "a"], ["2", "b"]]
        schema = infer_schema(names, rows, overrides={"x": ColumnKind.CATEGORICAL})
        assert schema["x"].kind is ColumnKind.CATEGORICAL
        assert schema["label"].kind is ColumnKind.CATEGORICAL
