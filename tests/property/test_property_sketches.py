"""Property-based tests (hypothesis) for the sketch substrate.

These check the invariants the paper's preprocessing relies on: single-pass
construction matches batch construction, merging partitions equals sketching
the union, and the published error bounds hold for arbitrary inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sketch.frequent import MisraGriesSketch, SpaceSavingSketch, exact_counts
from repro.sketch.hyperplane import HyperplaneSketcher
from repro.sketch.moments import MomentSketch
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import ReservoirSample

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)
float_lists = st.lists(finite_floats, min_size=2, max_size=400)
label_lists = st.lists(st.sampled_from([f"v{i}" for i in range(12)]), min_size=1, max_size=500)


class TestMomentSketchProperties:
    @given(values=float_lists, split=st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, values, split):
        split = min(split, len(values))
        array = np.asarray(values)
        whole = MomentSketch()
        whole.update_array(array)
        left, right = MomentSketch(), MomentSketch()
        left.update_array(array[:split])
        right.update_array(array[split:])
        left.merge(right)
        assert left.count == whole.count
        assert np.isclose(left.mean(), whole.mean(), rtol=1e-9, atol=1e-9)
        assert np.isclose(left.variance(), whole.variance(), rtol=1e-7, atol=1e-7)

    @given(values=float_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        array = np.asarray(values)
        sketch = MomentSketch()
        sketch.update_array(array)
        assert np.isclose(sketch.mean(), array.mean(), rtol=1e-9, atol=1e-9)
        assert np.isclose(sketch.variance(), array.var(), rtol=1e-7, atol=1e-7)
        assert sketch.minimum() == array.min()
        assert sketch.maximum() == array.max()


class TestQuantileSketchProperties:
    @given(values=st.lists(finite_floats, min_size=10, max_size=800),
           q=st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9]))
    @settings(max_examples=50, deadline=None)
    def test_rank_error_bound(self, values, q):
        epsilon = 0.05
        array = np.asarray(values)
        sketch = QuantileSketch(epsilon=epsilon)
        sketch.update_array(array)
        estimate = sketch.quantile(q)
        ordered = np.sort(array)
        rank_low = np.searchsorted(ordered, estimate, side="left")
        rank_high = np.searchsorted(ordered, estimate, side="right")
        target = q * (array.size - 1) + 1
        slack = 2 * epsilon * array.size + 1
        assert rank_low - slack <= target <= rank_high + slack

    @given(values=st.lists(finite_floats, min_size=4, max_size=300),
           split=st.integers(min_value=1, max_value=299))
    @settings(max_examples=40, deadline=None)
    def test_merge_count_and_bounds(self, values, split):
        split = min(split, len(values) - 1)
        array = np.asarray(values)
        left, right = QuantileSketch(0.05), QuantileSketch(0.05)
        left.update_array(array[:split])
        right.update_array(array[split:])
        left.merge(right)
        assert left.count == array.size
        assert array.min() <= left.median() <= array.max()


class TestFrequentItemsProperties:
    @given(labels=label_lists, capacity=st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_misra_gries_never_overestimates(self, labels, capacity):
        sketch = MisraGriesSketch(capacity=capacity)
        sketch.update_many(labels)
        truth = exact_counts(labels)
        bound = len(labels) / capacity
        for label, count in truth.items():
            estimate = sketch.estimate(label)
            assert estimate <= count
            assert estimate >= count - bound - 1e-9

    @given(labels=label_lists, capacity=st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_space_saving_never_underestimates_tracked(self, labels, capacity):
        sketch = SpaceSavingSketch(capacity=capacity)
        sketch.update_many(labels)
        truth = exact_counts(labels)
        for label, estimate in sketch.top_k(capacity):
            assert estimate >= truth.get(label, 0)

    @given(labels=label_lists, k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_relfreq_topk_bounded(self, labels, k):
        sketch = MisraGriesSketch(capacity=32)
        sketch.update_many(labels)
        value = sketch.relative_frequency_topk(k)
        assert 0.0 <= value <= 1.0


class TestReservoirProperties:
    @given(n=st.integers(min_value=0, max_value=2000),
           capacity=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_sample_size_invariant(self, n, capacity):
        sample = ReservoirSample(capacity=capacity, seed=0)
        sample.update_many(range(n))
        assert len(sample.sample) == min(n, capacity)
        assert sample.count == n
        assert set(sample.sample) <= set(range(n))


class TestHyperplaneProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        shift=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimator_invariant_to_affine_transform(self, seed, scale, shift):
        """Pearson correlation is invariant to positive affine maps; the
        hyperplane sketch operates on centred columns so its estimate must be
        exactly invariant too."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(400)
        y = 0.6 * x + 0.8 * rng.standard_normal(400)
        sketcher = HyperplaneSketcher(n_rows=400, width=128, seed=seed)
        base = sketcher.sketch_matrix(np.column_stack([x, y]))
        transformed = sketcher.sketch_matrix(np.column_stack([scale * x + shift, y]))
        assert base[0].estimate_correlation(base[1]) == transformed[0].estimate_correlation(
            transformed[1]
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_and_self_similarity(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((300, 3))
        sketcher = HyperplaneSketcher(n_rows=300, width=256, seed=seed)
        sketches = sketcher.sketch_matrix(matrix)
        for i in range(3):
            assert sketches[i].estimate_correlation(sketches[i]) == 1.0
            for j in range(3):
                assert sketches[i].estimate_correlation(sketches[j]) == (
                    sketches[j].estimate_correlation(sketches[i])
                )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_estimates_bounded(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.lognormal(size=(200, 4))
        sketcher = HyperplaneSketcher(n_rows=200, width=64, seed=seed)
        estimate = sketcher.correlation_matrix(sketcher.sketch_matrix(matrix))
        assert np.all(estimate <= 1.0 + 1e-12)
        assert np.all(estimate >= -1.0 - 1e-12)
