"""Property tests for the binary columnar snapshot codec.

Two families of properties:

* **codec round-trips** — any compaction payload (unicode category
  labels in any order, missing numeric values, empty columns, zero-row
  tables) survives ``encode_snapshot``/``decode_snapshot`` exactly, at
  the dict level and through a real :class:`DataTable`; and corrupting
  any single byte of the encoding must raise
  :class:`SnapshotDecodeError` or decode to the original payload (a
  flip inside zlib padding may be absorbed) — never return a silently
  different payload;
* **format coexistence** — a data directory holding a mix of binary
  and legacy-JSON snapshots (the pre-codec format, synthesized via
  ``encode_record``) restores every dataset byte-identically: the
  read-compat fallback serves old directories while new writes are
  binary.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.schema import ColumnKind
from repro.data.table import DataTable
from repro.ingest import IngestConfig
from repro.ingest.durable import (
    encode_record,
    legacy_snapshot_filename,
    table_to_payload,
)
from repro.ingest.snapshot_codec import (
    SnapshotDecodeError,
    decode_snapshot,
    encode_snapshot,
)
from repro.service import InsightRequest, Workspace

SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Unicode-heavy label universe, deliberately not in sorted order.
LABELS = ["γάμμα", "alpha", "δέλτα", "beta", "e✓", "zed"]

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64,
                   min_value=-1e12, max_value=1e12)

NUMERIC_VALUES = st.lists(st.one_of(st.none(), FINITE), max_size=30)


@st.composite
def categorical_spec(draw, n_rows):
    """codes + categories with arbitrary (non-first-appearance) order."""
    categories = draw(st.permutations(LABELS).map(
        lambda p: list(p)[: draw(st.integers(1, len(LABELS)))]))
    codes = draw(st.lists(
        st.integers(-1, len(categories) - 1),  # -1 = missing
        min_size=n_rows, max_size=n_rows))
    return codes, categories


@st.composite
def snapshot_payload(draw):
    """A dict-level compaction payload like ``_write_snapshot_locked``'s."""
    n_rows = draw(st.integers(0, 20))  # 0 = empty columns throughout
    columns = []
    n_numeric = draw(st.integers(0, 3))
    n_categorical = draw(st.integers(0, 2))
    for i in range(n_numeric):
        values = draw(st.lists(st.one_of(st.none(), FINITE),
                               min_size=n_rows, max_size=n_rows))
        columns.append({
            "name": f"n{i}", "kind": ColumnKind.NUMERIC.value,
            "description": "", "unit": "", "tags": [],
            "values": values,
        })
    for i in range(n_categorical):
        codes, categories = draw(categorical_spec(n_rows))
        columns.append({
            "name": f"c{i}", "kind": ColumnKind.CATEGORICAL.value,
            "description": "désc ✓", "unit": "", "tags": ["t"],
            "codes": codes, "categories": categories,
        })
    return {
        "type": "snapshot",
        "version": draw(st.integers(1, 99)),
        "seq": draw(st.integers(0, 500)),
        "counters": {"rows_appended": n_rows, "delta_merges": 0},
        "table": {"name": "live", "n_rows": n_rows, "columns": columns},
    }


class TestCodecRoundTrip:
    @SETTINGS
    @given(payload=snapshot_payload())
    def test_dict_level_round_trip_is_exact(self, payload):
        assert decode_snapshot(encode_snapshot(payload)) == payload

    @SETTINGS
    @given(
        x=NUMERIC_VALUES,
        labels=st.lists(st.sampled_from(LABELS), max_size=30),
    )
    def test_real_table_payload_round_trips(self, x, labels):
        n = min(len(x), len(labels))
        table = DataTable.from_columns(
            {"x": x[:n], "label": labels[:n]},
            kinds={"x": ColumnKind.NUMERIC,
                   "label": ColumnKind.CATEGORICAL},
            name="live",
        )
        payload = {"type": "snapshot", "version": 1, "seq": 0,
                   "table": table_to_payload(table)}
        assert decode_snapshot(encode_snapshot(payload)) == payload

    @SETTINGS
    @given(payload=snapshot_payload(), data=st.data())
    def test_single_byte_corruption_never_decodes_differently(self, payload,
                                                              data):
        encoded = bytearray(encode_snapshot(payload))
        index = data.draw(st.integers(0, len(encoded) - 1))
        flip = data.draw(st.integers(1, 255))
        encoded[index] ^= flip
        try:
            decoded = decode_snapshot(bytes(encoded))
        except SnapshotDecodeError:
            return  # fail-closed: the framing caught it
        # zlib streams carry slack bits; a flip the inflater ignores
        # must still decompress to the exact original sections (the
        # CRC runs over the *compressed* bytes, so an absorbed flip is
        # impossible — reaching here means CRC passed AND content
        # matches).
        assert decoded == payload


class TestFormatCoexistence:
    def _payload(self, workspace, name):
        request = InsightRequest(dataset=name, insight_classes=("skew",),
                                 top_k=3)
        body = workspace.handle(request).to_dict()
        body.pop("timing")
        body["provenance"].pop("cache", None)
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    def _table(self, seed):
        n = 40
        return DataTable.from_columns(
            {"x": [float((i * seed) % 17) for i in range(n)],
             "label": [LABELS[(i + seed) % len(LABELS)] for i in range(n)]},
            kinds={"x": ColumnKind.NUMERIC,
                   "label": ColumnKind.CATEGORICAL},
            name="live",
        )

    def test_mixed_binary_and_legacy_directory_restores_exactly(
        self, tmp_path
    ):
        """Two snapshotted datasets; one converted to the legacy JSON
        format on disk.  A restart must restore both byte-identically —
        same identity, same query payload — through different decoders.
        """
        live = Workspace(data_dir=str(tmp_path),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("bin", self._table(3))
        live.register("legacy", self._table(5))
        references = {name: self._payload(live, name)
                      for name in ("bin", "legacy")}
        states = {name: live.state(name) for name in ("bin", "legacy")}
        live.close()

        # Rewrite one dataset's snapshot in the pre-codec format: the
        # same payload as an encode_record-framed JSON file, exactly
        # what an old process would have left behind.
        directory = Path(tmp_path, "legacy")
        binary = next(directory.glob("snapshot-*.bin"))
        payload = decode_snapshot(binary.read_bytes())
        version = int(payload["version"])
        (directory / legacy_snapshot_filename(version)).write_bytes(
            encode_record(payload))
        binary.unlink()

        restarted = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        for name in ("bin", "legacy"):
            assert restarted.state(name) == states[name]
            assert self._payload(restarted, name) == references[name]
        restarted.close()

    def test_binary_write_replaces_same_version_legacy_file(self, tmp_path):
        """Compaction over a legacy directory upgrades it: the new
        binary snapshot lands and the stale same-version JSON file is
        removed, so a later corruption of one can never resurrect the
        other at a stale seq."""
        live = Workspace(data_dir=str(tmp_path),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("live", self._table(7))
        live.close()
        directory = Path(tmp_path, "live")
        binary = next(directory.glob("snapshot-*.bin"))
        payload = decode_snapshot(binary.read_bytes())
        version = int(payload["version"])
        legacy = directory / legacy_snapshot_filename(version)
        legacy.write_bytes(encode_record(payload))
        binary.unlink()

        # Restore from JSON, then compact at the SAME version: the
        # rebuild's snapshot write must replace the legacy file, not
        # leave two same-version snapshots racing future recoveries.
        restarted = Workspace(
            data_dir=str(tmp_path),
            ingest=IngestConfig(rebuild_fraction=float("inf")))
        restarted.register("live", lambda: self._table(7))
        restarted.engine("live")
        restarted.append("live", self._table(7).to_records()[:5])
        assert restarted.rebuild("live") is not None
        assert restarted.state("live")[0] == version  # same generation
        restarted.close()
        assert list(directory.glob(f"snapshot-{version:08d}.bin"))
        assert not list(directory.glob("snapshot-*.json"))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
