"""Property tests for the durable journal: record round-trips and replay.

Two families of properties:

* **container round-trips** — any append record (arbitrary
  ``DeltaBatch`` contents: unicode labels, missing values, float
  extremes) encodes and decodes byte-exactly, concatenated record
  streams decode in order, and truncating the byte stream at *any*
  offset yields a clean prefix of records — never an exception;
* **replay determinism** — journalling a row stream through a durable
  workspace and replaying it into a fresh process reproduces the
  sketch-store summaries byte-for-byte, for any split of the stream
  into batches; and across *different* splits the mergeable summaries
  agree (exact for counter sketches, to float-merge tolerance for
  moments).
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.schema import ColumnKind
from repro.data.table import DataTable
from repro.ingest import DeltaBatch, IngestConfig
from repro.ingest.durable import decode_records, encode_record, scan_records
from repro.service import InsightRequest, Workspace

SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Small label universe: keeps Misra–Gries / Space-Saving merges exact,
#: so cross-split comparisons can be equality checks on counters.
LABELS = st.sampled_from(["alpha", "beta", "γάμμα", "δέλτα", "e✓", "zed"])

NUMERIC = st.one_of(
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=64,
              min_value=-1e12, max_value=1e12),
)

ROWS = st.lists(
    st.fixed_dictionaries({"x": NUMERIC, "y": NUMERIC, "label": LABELS}),
    min_size=1, max_size=25,
)


def _schema():
    table = DataTable.from_columns(
        {"x": [1.0, 2.0], "y": [0.5, 1.5], "label": ["alpha", "beta"]},
        kinds={"x": ColumnKind.NUMERIC, "y": ColumnKind.NUMERIC,
               "label": ColumnKind.CATEGORICAL},
    )
    return table.schema


def _record_payload(rows, seq=1):
    batch = DeltaBatch.from_records("live", rows, _schema())
    return {
        "type": "append", "seq": seq, "applied": "deferred",
        "n_rows": batch.n_rows, "total_rows": 2 + batch.n_rows,
        "ts": 1234.5, "rows": batch.to_records(),
    }


class TestRecordContainer:
    @SETTINGS
    @given(rows=ROWS)
    def test_encode_decode_round_trips_delta_batch_contents(self, rows):
        payload = _record_payload(rows)
        decoded, clean = decode_records(encode_record(payload))
        assert decoded == [payload]
        assert clean == len(encode_record(payload))
        # And the decoded rows revalidate into an identical batch.
        original = DeltaBatch.from_records("live", rows, _schema())
        rehydrated = DeltaBatch.from_records(
            "live", decoded[0]["rows"], _schema()
        )
        assert rehydrated.to_records() == original.to_records()

    @SETTINGS
    @given(batches=st.lists(ROWS, min_size=1, max_size=4))
    def test_concatenated_streams_decode_in_order(self, batches):
        payloads = [
            _record_payload(rows, seq=i + 1) for i, rows in enumerate(batches)
        ]
        data = b"".join(encode_record(p) for p in payloads)
        decoded, clean = decode_records(data)
        assert decoded == payloads
        assert clean == len(data)

    @SETTINGS
    @given(batches=st.lists(ROWS, min_size=1, max_size=3),
           data=st.data())
    def test_truncation_at_any_offset_yields_a_clean_prefix(self, batches,
                                                            data):
        payloads = [
            _record_payload(rows, seq=i + 1) for i, rows in enumerate(batches)
        ]
        stream = b"".join(encode_record(p) for p in payloads)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        decoded, clean = decode_records(stream[:cut])  # must never raise
        assert decoded == payloads[: len(decoded)]  # a prefix, in order
        assert clean <= cut
        # Complete records survive exactly up to the cut.
        boundaries = [end for _p, _s, end in scan_records(stream)]
        expected = sum(1 for end in boundaries if end <= cut)
        assert len(decoded) == expected


def _summaries(workspace) -> str:
    """Byte-comparable sketch-store summaries of the "live" dataset."""
    store = workspace.engine("live").store
    quantiles = [store.approx_quantile("x", q) for q in (0.25, 0.5, 0.75)]
    return json.dumps({
        "mean": store.approx_mean("x"),
        "variance": store.approx_variance("x"),
        "quantiles": quantiles,
        "top": store.approx_top_values("label", 4),
        "counts": {label: store.approx_count("label", label)
                   for label in ("alpha", "beta", "γάμμα", "δέλτα", "e✓",
                                 "zed")},
    }, sort_keys=True)


def _base_table():
    return DataTable.from_columns(
        {"x": [float(i) for i in range(20)],
         "y": [float(i % 7) for i in range(20)],
         "label": [["alpha", "beta", "zed"][i % 3] for i in range(20)]},
        kinds={"x": ColumnKind.NUMERIC, "y": ColumnKind.NUMERIC,
               "label": ColumnKind.CATEGORICAL},
        name="live",
    )


def _split(rows, cut_points):
    batches, start = [], 0
    for cut in sorted(set(cut_points)):
        if start < cut < len(rows):
            batches.append(rows[start:cut])
            start = cut
    batches.append(rows[start:])
    return [batch for batch in batches if batch]


class TestReplayDeterminism:
    @SETTINGS
    @given(rows=ROWS, cuts=st.lists(st.integers(min_value=1, max_value=24),
                                    max_size=3))
    def test_journal_replay_reproduces_summaries_byte_for_byte(
        self, tmp_path_factory, rows, cuts
    ):
        data_dir = tmp_path_factory.mktemp("journal")
        live = Workspace(data_dir=str(data_dir),
                         ingest=IngestConfig(rebuild_fraction=float("inf")))
        live.register("live", _base_table())
        live.engine("live")
        for batch in _split(rows, cuts):
            live.append("live", batch)
        expected_state = live.state("live")
        expected_summary = _summaries(live)
        request = InsightRequest(dataset="live", insight_classes=("skew",),
                                 top_k=3)
        expected_response = live.handle(request).to_json()

        restarted = Workspace(
            data_dir=str(data_dir),
            ingest=IngestConfig(rebuild_fraction=float("inf")),
        )
        assert restarted.state("live") == expected_state
        assert _summaries(restarted) == expected_summary
        restored = json.loads(restarted.handle(request).to_json())
        reference = json.loads(expected_response)
        for body in (restored, reference):
            body.pop("timing")
            body["provenance"].pop("cache", None)
        assert restored == reference

    @SETTINGS
    @given(rows=st.lists(
        st.fixed_dictionaries({"x": NUMERIC, "y": NUMERIC, "label": LABELS}),
        min_size=4, max_size=25,
    ), data=st.data())
    def test_any_batch_split_replays_to_the_same_summaries(self, rows, data):
        n = len(rows)
        cuts_a = data.draw(st.lists(st.integers(1, n - 1), max_size=3))
        cuts_b = data.draw(st.lists(st.integers(1, n - 1), max_size=3))

        def ingest(cut_points):
            workspace = Workspace(
                ingest=IngestConfig(rebuild_fraction=float("inf"))
            )
            workspace.register("live", _base_table())
            workspace.engine("live")
            for batch in _split(rows, cut_points):
                workspace.append("live", batch)
            return workspace.engine("live").store

        store_a, store_b = ingest(cuts_a), ingest(cuts_b)
        # Counter sketches merge exactly (the label universe is smaller
        # than every sketch capacity), so counts must agree exactly.
        for label in ("alpha", "beta", "γάμμα", "δέλτα", "e✓", "zed"):
            assert store_a.approx_count("label", label) == (
                store_b.approx_count("label", label)
            )
        assert store_a.approx_top_values("label", 4) == (
            store_b.approx_top_values("label", 4)
        )
        # Moment sums add in batch order: identical up to float merge
        # tolerance, not byte order.
        assert math.isclose(store_a.approx_mean("x"),
                            store_b.approx_mean("x"),
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(store_a.approx_variance("x"),
                            store_b.approx_variance("x"),
                            rel_tol=1e-9, abs_tol=1e-9)
        # GK quantile summaries depend on interleave grouping but stay
        # inside the configured rank error; the medians of two splits of
        # the same stream must bracket each other's neighboring values.
        n_values = store_a.table.n_rows
        epsilon = store_a.config.quantile_epsilon
        rank_slack = max(2.0, 4.0 * epsilon * n_values)
        values = sorted(v for v in store_a.table.numeric_column("x")
                        .valid_values())
        if values:
            median_a = store_a.approx_quantile("x", 0.5)
            median_b = store_b.approx_quantile("x", 0.5)
            rank_a = sum(1 for v in values if v <= median_a)
            rank_b = sum(1 for v in values if v <= median_b)
            assert abs(rank_a - rank_b) <= rank_slack


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
