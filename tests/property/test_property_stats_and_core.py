"""Property-based tests for statistics, the data substrate and the ranking
engine invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.insight import EvaluationContext, MODE_EXACT
from repro.core.query import InsightQuery, MetricRange
from repro.core.ranking import RankingEngine
from repro.core.registry import default_registry
from repro.data import DataTable
from repro.data.csv_io import read_csv_text, to_csv_text
from repro.stats.correlation import pearson, spearman
from repro.stats.frequency import relative_frequency_topk, shannon_entropy
from repro.stats.moments import kurtosis, skewness, variance
from repro.stats.quantiles import five_number_summary

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


class TestStatisticsProperties:
    @given(values=st.lists(finite_floats, min_size=2, max_size=300),
           scale=st.floats(min_value=0.01, max_value=100, allow_nan=False),
           shift=st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shape_metrics_invariant_to_affine_maps(self, values, scale, shift):
        array = np.asarray(values)
        assume(np.std(array) > 1e-6)
        transformed = scale * array + shift
        assert np.isclose(skewness(array), skewness(transformed), atol=1e-6)
        assert np.isclose(kurtosis(array), kurtosis(transformed), atol=1e-6)

    @given(values=st.lists(finite_floats, min_size=2, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_variance_nonnegative_and_five_numbers_ordered(self, values):
        array = np.asarray(values)
        assert variance(array) >= 0.0
        summary = five_number_summary(array)
        assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum

    @given(values=st.lists(finite_floats, min_size=3, max_size=200),
           scale=st.floats(min_value=0.01, max_value=50, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_correlation_bounds_and_scale_invariance(self, values, scale):
        array = np.asarray(values)
        assume(np.std(array) > 1e-6)
        rng = np.random.default_rng(0)
        other = array * 0.5 + rng.standard_normal(array.size)
        assume(np.std(other) > 1e-6)
        rho = pearson(array, other)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
        assert np.isclose(pearson(scale * array, other), rho, atol=1e-7)
        assert -1.0 - 1e-9 <= spearman(array, other) <= 1.0 + 1e-9

    @given(labels=st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=300),
           k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_relfreq_monotone_in_k(self, labels, k):
        value_k = relative_frequency_topk(labels, k)
        value_k1 = relative_frequency_topk(labels, k + 1)
        assert 0.0 < value_k <= value_k1 <= 1.0 + 1e-12

    @given(labels=st.lists(st.sampled_from("abcd"), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, labels):
        entropy = shannon_entropy(labels)
        assert 0.0 <= entropy <= np.log2(4) + 1e-9


class TestDataProperties:
    @given(
        n_rows=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_csv_round_trip_preserves_shape_and_labels(self, n_rows, seed):
        rng = np.random.default_rng(seed)
        table = DataTable.from_columns(
            {
                "x": rng.standard_normal(n_rows).round(6).tolist(),
                "label": rng.choice(["red", "green", "blue"], n_rows).tolist(),
                "flag": rng.choice([True, False], n_rows).tolist(),
            }
        )
        again = read_csv_text(to_csv_text(table))
        assert again.shape == table.shape
        assert again.column("label").labels() == table.column("label").labels()
        np.testing.assert_allclose(
            again.numeric_column("x").values, table.numeric_column("x").values, atol=1e-9
        )

    @given(
        n_rows=st.integers(min_value=2, max_value=50),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_every_row(self, n_rows, fraction, seed):
        rng = np.random.default_rng(seed)
        table = DataTable.from_columns({"x": rng.standard_normal(n_rows).tolist()})
        left, right = table.split(fraction, seed=seed)
        assert left.n_rows + right.n_rows == n_rows
        combined = sorted(left.numeric_column("x").values.tolist()
                          + right.numeric_column("x").values.tolist())
        assert combined == sorted(table.numeric_column("x").values.tolist())


def _random_table(seed: int, n_rows: int) -> DataTable:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n_rows)
    return DataTable.from_columns(
        {
            "a": base.tolist(),
            "b": (0.7 * base + 0.7 * rng.standard_normal(n_rows)).tolist(),
            "c": rng.lognormal(size=n_rows).tolist(),
            "d": rng.standard_normal(n_rows).tolist(),
        }
    )


class TestRankingProperties:
    @given(seed=st.integers(min_value=0, max_value=500),
           top_k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_scores_sorted_and_bounded_by_top_k(self, seed, top_k):
        table = _random_table(seed, 60)
        engine = RankingEngine(default_registry())
        context = EvaluationContext(table=table, store=None, mode=MODE_EXACT)
        result = engine.rank(
            InsightQuery("linear_relationship", top_k=top_k, mode=MODE_EXACT), context
        )
        scores = [i.score for i in result]
        assert len(result) <= top_k
        assert scores == sorted(scores, reverse=True)

    @given(seed=st.integers(min_value=0, max_value=500),
           low=st.floats(min_value=0.0, max_value=0.5),
           width=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=30, deadline=None)
    def test_metric_range_respected(self, seed, low, width):
        table = _random_table(seed, 60)
        engine = RankingEngine(default_registry())
        context = EvaluationContext(table=table, store=None, mode=MODE_EXACT)
        result = engine.rank(
            InsightQuery(
                "linear_relationship", top_k=10, mode=MODE_EXACT,
                metric_range=MetricRange(low, low + width),
            ),
            context,
        )
        assert all(low <= i.score <= low + width for i in result)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_fixed_attribute_always_present(self, seed):
        table = _random_table(seed, 60)
        engine = RankingEngine(default_registry())
        context = EvaluationContext(table=table, store=None, mode=MODE_EXACT)
        result = engine.rank(
            InsightQuery(
                "linear_relationship", top_k=10, mode=MODE_EXACT,
                fixed_attributes=("a",),
            ),
            context,
        )
        assert result.insights
        assert all(i.involves("a") for i in result)
