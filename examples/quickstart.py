"""Quickstart: load a dataset, get recommended visual insights.

Run with::

    python examples/quickstart.py

This walks the shortest path through the public API:

1. load a table (here the synthetic OECD wellbeing dataset),
2. build a :class:`repro.Foresight` engine (this preprocesses the table into
   sketches, exactly like the paper's preprocessing step),
3. print the "carousels" — the top-ranked insights of every insight class
   (the Figure 1 view),
4. drill into one insight and render its visualization as ASCII.
"""

from __future__ import annotations

from repro import Foresight
from repro.data.datasets import load_oecd
from repro.viz.ascii import render


def main() -> None:
    table = load_oecd()
    print(f"Loaded {table.name}: {table.n_rows} rows x {table.n_columns} columns")
    print(f"Numeric attributes ({len(table.numeric_names())}):",
          ", ".join(table.numeric_names()[:6]), "...")
    print()

    engine = Foresight(table)
    print("Preprocessing built",
          f"{engine.store.stats.total_sketch_bytes} bytes of sketches in",
          f"{engine.store.stats.seconds * 1000:.1f} ms")
    print()

    # --- Figure 1 view: one carousel per insight class -----------------------
    print("=" * 72)
    print("Top recommended insights per class (carousels)")
    print("=" * 72)
    for carousel in engine.carousels(top_k=3):
        print(f"\n[{carousel.label}]  ({carousel.elapsed_seconds * 1000:.1f} ms)")
        if not carousel.insights:
            print("  (no candidates in this dataset)")
        for rank, insight in enumerate(carousel.insights, start=1):
            print(f"  {rank}. {insight.summary}")

    # --- Drill into the strongest correlation ---------------------------------
    print()
    print("=" * 72)
    print("Strongest correlation, visualized")
    print("=" * 72)
    top = engine.query("linear_relationship", top_k=1).top()
    spec = engine.visualize(top)
    print(render(spec))
    print()
    print("The same spec as JSON (first 400 characters):")
    print(spec.to_json()[:400], "...")


if __name__ == "__main__":
    main()
