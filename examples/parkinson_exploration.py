"""Parkinson's progression (PPMI-like) exploration (paper section 4.2).

The second demo dataset is a clinical table of Parkinson's Disease patients
(2 000 rows x 50 columns of progression markers).  This example uses
Foresight to surface the structure a clinician would look for:

* which clinical scales move together (correlation carousel),
* which scales track disease duration monotonically but nonlinearly,
* which cohorts / medications segment the motor scores,
* data-quality problems (missing biomarker values, outlier lab results).

Run with::

    python examples/parkinson_exploration.py
"""

from __future__ import annotations

from repro import ExplorationSession, Foresight
from repro.data.datasets import load_parkinson


def show(title: str, insights) -> None:
    print(f"\n--- {title} " + "-" * max(0, 66 - len(title)))
    for rank, insight in enumerate(insights, start=1):
        print(f"  {rank}. {insight.summary}")


def main() -> None:
    table = load_parkinson()
    print(f"Loaded {table.name}: {table.n_rows} patients x {table.n_columns} attributes")
    engine = Foresight(table)
    session = ExplorationSession(engine, name="ppmi-review")

    # Open-ended stage: the strongest insights in the clinically relevant classes.
    carousels = session.carousels(
        top_k=3,
        insight_classes=["linear_relationship", "skew", "outliers", "missing_values"],
    )
    for carousel in carousels:
        show(carousel.label, carousel.insights)

    # Which scales track the UPDRS total most closely?
    show(
        "Correlates of the total UPDRS score",
        engine.query("linear_relationship", top_k=6, fixed=("UPDRS_Total",), mode="exact"),
    )

    # Nonlinear but monotone progression markers.
    show(
        "Nonlinear monotonic relationships with disease duration",
        engine.query(
            "monotonic_relationship", top_k=5, fixed=("YearsSinceDiagnosis",), mode="exact"
        ),
    )

    # How do the cohorts segment the motor measurements?
    show(
        "Segmentation by cohort",
        engine.query(
            "segmentation", top_k=5, fixed=("Cohort",), mode="exact", max_candidates=2000
        ),
    )

    # Dependence of numeric scales on medication.
    show(
        "Statistical dependence on medication",
        engine.query("dependence", top_k=5, fixed=("Medication",), mode="exact"),
    )

    # Focus the strongest progression correlation and look at nearby insights.
    focus = engine.query(
        "linear_relationship", top_k=1, fixed=("UPDRS_Total", "UPDRS_III")
    ).top()
    session.focus(focus)
    show(
        "Neighborhood of the focused UPDRS insight",
        session.recommend_near_focus("linear_relationship", top_k=5),
    )

    print("\nSession history:")
    for event in session.history:
        print(f"  - {event.action}")


if __name__ == "__main__":
    main()
