"""Sketching demo: exact vs approximate insight computation at scale.

Section 3 of the paper motivates sketching with three claims:

* the hyperplane sketch estimates Pearson correlations accurately
  (">90% accuracy"),
* sketch-based preprocessing is faster than exact preprocessing
  ("3x-4x speedup in preprocessing"),
* insight queries answered from sketches run at interactive speed.

This example builds a 100 000-row synthetic table, preprocesses it into
sketches, and prints the accuracy and latency comparison, plus the memory
footprint (|B|·k bits) of the correlation sketches.

Run with::

    python examples/sketching_demo.py         # ~1 minute
    python examples/sketching_demo.py --small # a few seconds
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import Foresight
from repro.core.engine import EngineConfig
from repro.data.datasets import make_numeric_table
from repro.sketch import SketchStoreConfig
from repro.stats import correlation_matrix, top_correlated_pairs
from repro.viz.ascii import render_table


def main(small: bool = False) -> None:
    n_rows = 20_000 if small else 100_000
    n_columns = 30 if small else 80
    table = make_numeric_table(
        n_rows=n_rows, n_columns=n_columns, block_correlation=0.75,
        missing_rate=0.02, seed=7,
    )
    print(f"Synthetic workload: {table.n_rows} rows x {table.n_columns} numeric columns "
          "(2% missing cells)")

    # --- preprocessing --------------------------------------------------------
    start = time.perf_counter()
    engine = Foresight(table, config=EngineConfig(sketch=SketchStoreConfig(seed=1)))
    preprocess_seconds = time.perf_counter() - start
    stats = engine.store.stats
    print(f"\nSketch preprocessing: {preprocess_seconds:.2f} s "
          f"(hyperplane width k = {stats.hyperplane_width}, "
          f"total sketch memory = {stats.total_sketch_bytes / 1024:.1f} KiB)")

    # --- exact baseline --------------------------------------------------------
    matrix, names = table.numeric_matrix()
    start = time.perf_counter()
    exact = correlation_matrix(matrix)
    exact_seconds = time.perf_counter() - start
    print(f"Exact all-pairs correlation over the raw data: {exact_seconds:.2f} s")

    # --- query latency ---------------------------------------------------------
    start = time.perf_counter()
    approx, ordered = engine.store.approx_correlation_matrix()
    sketch_query_seconds = time.perf_counter() - start
    print(f"All-pairs correlation from sketches only:       {sketch_query_seconds:.3f} s "
          f"({exact_seconds / max(sketch_query_seconds, 1e-9):.0f}x faster than exact)")

    # --- accuracy --------------------------------------------------------------
    index = {name: i for i, name in enumerate(names)}
    top_pairs = top_correlated_pairs(matrix, names, k=50)
    rows = []
    errors = []
    for x_name, y_name, exact_rho in top_pairs[:10]:
        estimate = approx[index[x_name], index[y_name]]
        errors.append(abs(estimate - exact_rho))
        rows.append({
            "pair": f"{x_name} / {y_name}",
            "exact": exact_rho,
            "sketch": float(estimate),
            "abs error": abs(estimate - exact_rho),
        })
    print("\nTop correlated pairs, exact vs sketch estimate:")
    print(render_table(rows))
    # Accuracy, measured two ways: how well the sketch ranking recovers the
    # exact top-50 pairs (recall — what matters for a recommender), and how
    # close the estimates themselves are.
    exact_top = {frozenset((x, y)) for x, y, _ in top_pairs}
    estimated_ranking = []
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            estimated_ranking.append((ordered[i], ordered[j], float(approx[i, j])))
    estimated_ranking.sort(key=lambda p: -abs(p[2]))
    sketch_top = {frozenset((x, y)) for x, y, _ in estimated_ranking[:50]}
    recall = 100.0 * len(exact_top & sketch_top) / len(exact_top)
    all_errors = [
        abs(approx[index[x], index[y]] - rho) for x, y, rho in top_pairs
    ]
    print(f"\nTop-50 ranking recall (sketch vs exact): {recall:.0f}% "
          "(paper claims >90% accuracy)")
    print(f"Mean |error| of the estimates on those pairs: {np.mean(all_errors):.3f}")

    # --- interactive insight queries -------------------------------------------
    print("\nInsight query latency from pre-built sketches:")
    rows = []
    for class_name in ("linear_relationship", "skew", "heavy_tails", "outliers",
                       "dispersion"):
        start = time.perf_counter()
        result = engine.query(class_name, top_k=5)
        elapsed = time.perf_counter() - start
        rows.append({
            "insight class": class_name,
            "latency (ms)": elapsed * 1000.0,
            "top attribute(s)": ", ".join(result.top().attributes) if result.insights else "-",
        })
    print(render_table(rows))


if __name__ == "__main__":
    main(small="--small" in sys.argv)
