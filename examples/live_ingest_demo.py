"""Stream rows into a served dataset while querying it.

The live-datasets demo: starts the HTTP server over a synthetic dataset,
then interleaves **appends** (``POST /v1/datasets/{name}/rows``) with
**insight queries**, showing

* the ingestion identity ``(version, seq)`` bumping on every accepted
  append, stamped on each response;
* appends absorbed by *delta merges* into the live sketch store — no
  engine rebuild (watch ``engine_builds`` stay at 1 while
  ``delta_merges`` climbs) — until the accuracy budget forces one;
* the dataset-management surface: registering a brand-new dataset over
  the wire and reloading it;
* the ingestion counters in ``/metrics`` (and their Prometheus text
  exposition via ``Accept: text/plain``).

Run with::

    PYTHONPATH=src python examples/live_ingest_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.server import ReproClient, ReproServer, ServerConfig  # noqa: E402
from repro.service import InsightRequest, Workspace  # noqa: E402

BASE_ROWS = 2_000
BATCH_ROWS = 150
N_BATCHES = 8


def main() -> None:
    base = make_mixed_table(n_rows=BASE_ROWS, n_numeric=6, n_categorical=2,
                            seed=42)
    # Fresh rows to stream in, drawn from a shifted distribution so the
    # appended data visibly moves the insight scores.
    stream = make_mixed_table(n_rows=BATCH_ROWS * N_BATCHES, n_numeric=6,
                              n_categorical=2, seed=43).to_records()

    workspace = Workspace(ingest=IngestConfig(rebuild_fraction=0.5))
    workspace.register("live", lambda: base)

    config = ServerConfig(port=0, write_quota=1)
    server = ReproServer(workspace, config)
    with server.start_in_thread() as handle:
        host, port = handle.address
        print(f"server listening on http://{host}:{port}\n")
        client = ReproClient(host, port)
        request = InsightRequest(dataset="live",
                                 insight_classes=("skew", "outliers"),
                                 top_k=3)

        response = client.insights(request)
        top = response.carousels[0]["insights"][0]
        print(f"before ingest: (v{response.dataset_version}, "
              f"seq {response.dataset_seq})  "
              f"top skew {top['attributes'][0]} = {top['score']:.4f}")

        # -- stream batches in while querying ------------------------------
        for i in range(N_BATCHES):
            batch = stream[i * BATCH_ROWS:(i + 1) * BATCH_ROWS]
            appended = client.append_rows("live", batch)
            response = client.insights(request)
            top = response.carousels[0]["insights"][0]
            print(f"append #{appended['seq']}: +{appended['rows_appended']} "
                  f"rows via {appended['applied']:<11s} -> "
                  f"(v{response.dataset_version}, seq {response.dataset_seq}) "
                  f"total {appended['total_rows']}  "
                  f"top skew = {top['score']:.4f}")

        # -- what the ops surface saw ---------------------------------------
        metrics = client.metrics()
        ingest = metrics["workspace"]["ingest"]["totals"]
        print(f"\ningest totals: {ingest['appends']} appends, "
              f"{ingest['rows_appended']} rows, "
              f"{ingest['delta_merges']} delta merges, "
              f"{ingest['rebuilds']} rebuild(s) "
              f"(accuracy budget: {IngestConfig().rebuild_fraction:.0%} "
              "of base rows)")
        print(f"engine builds: {metrics['workspace']['engine_builds']} "
              "(delta merges swap stores without rebuilding)")

        # -- a new dataset over the wire + reload ---------------------------
        created = client.put_dataset(
            "scratch",
            columns={"x": [1.0, 2.0, 3.0, 8.0, 13.0],
                     "label": ["a", "a", "b", "b", "b"]},
        )
        print(f"\nregistered 'scratch' inline: v{created['version']}")
        client.append_rows("scratch", [{"x": 21.0, "label": "c"}])
        reloaded = client.reload_dataset("live")
        print(f"reloaded 'live': v{reloaded['version']} "
              f"(journal reset, seq {reloaded['seq']})")

        # -- Prometheus text exposition -------------------------------------
        sample = [line for line in client.metrics_text().splitlines()
                  if line.startswith("repro_ingest")]
        print("\nPrometheus exposition (ingest counters):")
        for line in sample:
            print(f"  {line}")
        client.close()

    print("\nserver drained and stopped.")


if __name__ == "__main__":
    main()
