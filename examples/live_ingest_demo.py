"""Stream rows into a served dataset while querying it — then kill it.

The live-datasets demo: starts the HTTP server over a synthetic dataset,
then interleaves **appends** (``POST /v1/datasets/{name}/rows``) with
**insight queries**, showing

* the ingestion identity ``(version, seq)`` bumping on every accepted
  append, stamped on each response;
* appends absorbed by *delta merges* into the live sketch store — no
  engine rebuild on the append path; when the accuracy budget runs out a
  **background rebuild** refreshes the sketches off-path and swaps in
  atomically (minting a seq of its own);
* the dataset-management surface: registering a brand-new dataset over
  the wire, reloading it, and ``POST .../flush`` for the durable journal;
* the ingestion counters in ``/metrics`` (and their Prometheus text
  exposition via ``Accept: text/plain``);
* **kill-and-restart recovery**: a child process appends rows into a
  durable ``data_dir`` and dies with ``os._exit`` — no cleanup, no
  drain — and a fresh workspace on the same directory replays the
  write-ahead journal to the exact ``(version, seq)`` and byte-identical
  query payloads.

Run with::

    PYTHONPATH=src python examples/live_ingest_demo.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import make_mixed_table  # noqa: E402
from repro.ingest import IngestConfig  # noqa: E402
from repro.server import ReproClient, ReproServer, ServerConfig  # noqa: E402
from repro.service import InsightRequest, Workspace  # noqa: E402

BASE_ROWS = 2_000
BATCH_ROWS = 150
N_BATCHES = 8


def main() -> None:
    base = make_mixed_table(n_rows=BASE_ROWS, n_numeric=6, n_categorical=2,
                            seed=42)
    # Fresh rows to stream in, drawn from a shifted distribution so the
    # appended data visibly moves the insight scores.
    stream = make_mixed_table(n_rows=BATCH_ROWS * N_BATCHES, n_numeric=6,
                              n_categorical=2, seed=43).to_records()

    workspace = Workspace(ingest=IngestConfig(rebuild_fraction=0.5))
    workspace.register("live", lambda: base)

    config = ServerConfig(port=0, write_quota=1)
    server = ReproServer(workspace, config)
    with server.start_in_thread() as handle:
        host, port = handle.address
        print(f"server listening on http://{host}:{port}\n")
        client = ReproClient(host, port)
        request = InsightRequest(dataset="live",
                                 insight_classes=("skew", "outliers"),
                                 top_k=3)

        response = client.insights(request)
        top = response.carousels[0]["insights"][0]
        print(f"before ingest: (v{response.dataset_version}, "
              f"seq {response.dataset_seq})  "
              f"top skew {top['attributes'][0]} = {top['score']:.4f}")

        # -- stream batches in while querying ------------------------------
        for i in range(N_BATCHES):
            batch = stream[i * BATCH_ROWS:(i + 1) * BATCH_ROWS]
            appended = client.append_rows("live", batch)
            response = client.insights(request)
            top = response.carousels[0]["insights"][0]
            print(f"append #{appended['seq']}: +{appended['rows_appended']} "
                  f"rows via {appended['applied']:<11s} -> "
                  f"(v{response.dataset_version}, seq {response.dataset_seq}) "
                  f"total {appended['total_rows']}  "
                  f"top skew = {top['score']:.4f}")

        # -- what the ops surface saw ---------------------------------------
        workspace.wait_for_rebuilds(timeout=30)  # let the bg swap land
        metrics = client.metrics()
        ingest = metrics["workspace"]["ingest"]["totals"]
        print(f"\ningest totals: {ingest['appends']} appends, "
              f"{ingest['rows_appended']} rows, "
              f"{ingest['delta_merges']} delta merges, "
              f"{ingest['rebuilds']} rebuild(s) of which "
              f"{ingest['bg_rebuilds']} in the background "
              f"(accuracy budget: {IngestConfig().rebuild_fraction:.0%} "
              "of base rows)")
        print(f"engine builds: {metrics['workspace']['engine_builds']} "
              "(delta merges swap stores without rebuilding; the "
              "budget-triggered rebuild ran off the append path)")

        # -- a new dataset over the wire + reload ---------------------------
        created = client.put_dataset(
            "scratch",
            columns={"x": [1.0, 2.0, 3.0, 8.0, 13.0],
                     "label": ["a", "a", "b", "b", "b"]},
        )
        print(f"\nregistered 'scratch' inline: v{created['version']}")
        client.append_rows("scratch", [{"x": 21.0, "label": "c"}])
        reloaded = client.reload_dataset("live")
        print(f"reloaded 'live': v{reloaded['version']} "
              f"(journal reset, seq {reloaded['seq']})")

        # -- Prometheus text exposition -------------------------------------
        sample = [line for line in client.metrics_text().splitlines()
                  if line.startswith("repro_ingest")]
        print("\nPrometheus exposition (ingest counters):")
        for line in sample:
            print(f"  {line}")
        client.close()

    print("\nserver drained and stopped.")
    kill_and_restart_demo()


#: Child process for the durability demo: appends into the journal, then
#: dies the hard way — os._exit skips every destructor and atexit hook.
_CHILD = """
import os, sys
sys.path.insert(0, sys.argv[2])
from repro.data.datasets import make_mixed_table
from repro.service import Workspace

base = make_mixed_table(n_rows=500, n_numeric=4, n_categorical=2, seed=42)
rows = make_mixed_table(n_rows=120, n_numeric=4, n_categorical=2,
                        seed=43).to_records()
workspace = Workspace(data_dir=sys.argv[1])
workspace.register("live", lambda: base)
workspace.engine("live")
workspace.append("live", rows[:60])
workspace.append("live", rows[60:])
print("child state:", workspace.state("live"))
sys.stdout.flush()
os._exit(1)  # simulated crash: acknowledged appends must survive this
"""


def kill_and_restart_demo() -> None:
    """Prove the durability contract with a real process kill."""
    print("\n-- kill-and-restart recovery ----------------------------------")
    src = str(Path(__file__).resolve().parent.parent / "src")
    request = InsightRequest(dataset="live",
                            insight_classes=("skew", "outliers"), top_k=3)

    with tempfile.TemporaryDirectory() as data_dir:
        child = subprocess.run(
            [sys.executable, "-c", _CHILD, data_dir, src],
            capture_output=True, text=True, timeout=120,
        )
        print(child.stdout.strip(), f"(exit code {child.returncode}, "
              "no cleanup ran)")

        # The uninterrupted twin: same operations, never persisted.
        base = make_mixed_table(n_rows=500, n_numeric=4, n_categorical=2,
                                seed=42)
        rows = make_mixed_table(n_rows=120, n_numeric=4, n_categorical=2,
                                seed=43).to_records()
        twin = Workspace()
        twin.register("live", lambda: base)
        twin.engine("live")
        twin.append("live", rows[:60])
        twin.append("live", rows[60:])
        twin_body = twin.handle(request).to_dict()
        twin_body.pop("timing")

        restarted = Workspace(data_dir=data_dir)
        restarted.register("live", lambda: base)  # adopts the journal
        body = restarted.handle(request).to_dict()
        body.pop("timing")
        identical = json.dumps(body, sort_keys=True) == json.dumps(
            twin_body, sort_keys=True)
        print(f"restarted state: {restarted.state('live')} "
              f"(twin: {twin.state('live')})")
        print(f"query payload byte-identical to uninterrupted run: "
              f"{identical}")
        if restarted.state("live") != twin.state("live") or not identical:
            raise SystemExit("durability contract violated")
        restarted.close()


if __name__ == "__main__":
    main()
