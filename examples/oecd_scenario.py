"""The paper's section 4.1 usage scenario, replayed step by step.

An analyst explores the OECD wellbeing dataset:

1. She eyeballs the carousels and instantly notes the strong negative
   correlation between Working Long Hours and Time Devoted To Leisure.
2. She focuses that insight; Foresight updates its recommendations to the
   neighborhood of the focused insight.
3. Exploring the recommended correlations (Pearson and Spearman), she learns
   that Time Devoted To Leisure has no correlation with Self Reported Health.
4. The univariate distribution classes show that Time Devoted To Leisure is
   normally distributed while Self Reported Health is left-skewed.
5. Focusing on Self Reported Health surfaces its strong correlation with
   Life Satisfaction.
6. She saves the session state to revisit later and share with colleagues.

Run with::

    python examples/oecd_scenario.py
"""

from __future__ import annotations

from repro import ExplorationSession, Foresight
from repro.core.classes import LinearRelationshipInsight
from repro.data.datasets import load_oecd
from repro.viz.ascii import render


def banner(step: int, text: str) -> None:
    print()
    print("=" * 72)
    print(f"Step {step}: {text}")
    print("=" * 72)


def main() -> None:
    engine = Foresight(load_oecd())
    session = ExplorationSession(engine, name="oecd-scenario")

    banner(1, "Open-ended exploration: eyeball the correlation carousel")
    carousel = session.carousels(top_k=3, insight_classes=["linear_relationship"])[0]
    for rank, insight in enumerate(carousel.insights, start=1):
        print(f"  {rank}. {insight.summary}")
    top = carousel.insights[0]
    print("\n  -> The analyst notes the strong negative correlation between")
    print("     Working Long Hours and Time Devoted To Leisure.")

    banner(2, "Focus the insight; recommendations update to its neighborhood")
    session.focus(top)
    nearby = session.recommend_near_focus("linear_relationship", top_k=5)
    for rank, insight in enumerate(nearby, start=1):
        print(f"  {rank}. {insight.summary}")

    banner(3, "Check Leisure vs Self Reported Health with Pearson and Spearman")
    exact_context = engine.context("exact")
    pearson_class = LinearRelationshipInsight(method="pearson")
    spearman_class = LinearRelationshipInsight(method="spearman")
    pair = ("TimeDevotedToLeisure", "SelfReportedHealth")
    pearson_scored = pearson_class.score(pair, exact_context)
    spearman_scored = spearman_class.score(pair, exact_context)
    print(f"  Pearson  |rho| = {pearson_scored.score:.3f}")
    print(f"  Spearman |rho| = {spearman_scored.score:.3f}")
    print("  -> surprisingly, Time Devoted To Leisure has no correlation with")
    print("     Self Reported Health.")

    banner(4, "Univariate distribution shapes")
    shapes = {i.attributes[0]: i for i in engine.query("normality", top_k=30, mode="exact")}
    for name in ("TimeDevotedToLeisure", "SelfReportedHealth"):
        insight = shapes[name]
        print(f"  {name}: {insight.details['shape']} "
              f"(skewness {insight.details['skewness']:+.2f})")
        print(render(engine.visualize(insight), width=50, height=8))
        print()

    banner(5, "Focus Self Reported Health; correlated attributes are recommended")
    session.focus(shapes["SelfReportedHealth"])
    recommended = session.recommend_near_focus("linear_relationship", top_k=5)
    for rank, insight in enumerate(recommended, start=1):
        print(f"  {rank}. {insight.summary}")
    health_life = next(
        i for i in recommended
        if set(i.attributes) == {"SelfReportedHealth", "LifeSatisfaction"}
    )
    print("\n  -> Life Satisfaction and Self Reported Health are highly correlated "
          f"(rho = {health_life.details['correlation']:+.2f})")

    banner(6, "Save the session state")
    state = session.save_json()
    print(f"  Session JSON is {len(state)} characters; focused insights:")
    for insight in session.focused_insights:
        print(f"    - {insight.summary}")
    restored = ExplorationSession.restore_json(engine, state)
    print(f"  Restored session {restored.name!r} with "
          f"{len(restored.focused_insights)} focused insights.")


if __name__ == "__main__":
    main()
