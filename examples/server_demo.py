"""Serve insights over HTTP and query them with the blocking client.

Starts the asyncio server on an ephemeral port (request coalescing on,
a per-dataset quota for demonstration), points a :class:`ReproClient`
at it, and walks the whole surface: a carousel request, a client-side
batch, cache-hit behavior, and the operations endpoints.

Run with::

    PYTHONPATH=src python examples/server_demo.py

or against a standalone server (``repro-serve --port 8765``) by swapping
the ``serving(...)`` block for ``ReproClient("127.0.0.1", 8765)``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import load_oecd  # noqa: E402
from repro.service import InsightRequest, Workspace  # noqa: E402
from repro.server import ReproClient, ServerConfig, serving  # noqa: E402
from repro.viz.ascii import render_table  # noqa: E402


def main() -> None:
    workspace = Workspace()
    workspace.register("oecd", load_oecd)

    config = ServerConfig(
        port=0,                   # ask the OS for a free port
        coalesce_window=0.005,    # micro-batch concurrent singles (5 ms)
        dataset_quota=4,          # per-dataset concurrency isolation
    )

    with serving(workspace, config) as handle:
        host, port = handle.address
        print(f"server listening on http://{host}:{port}\n")
        client = ReproClient(host, port)

        # -- one request, three carousels --------------------------------
        response = client.insights(InsightRequest(
            dataset="oecd",
            insight_classes=("linear_relationship", "skew", "outliers"),
            top_k=3,
        ))
        print(f"dataset={response.dataset} v{response.dataset_version} "
              f"cache={response.provenance['cache']} "
              f"coalesced={response.provenance.get('coalesced')}")
        for carousel in response.carousels:
            print(f"\n== {carousel['label']} "
                  f"({carousel['n_admitted']} admitted) ==")
            rows = [
                {"attributes": " × ".join(insight["attributes"]),
                 "score": f"{insight['score']:.3f}"}
                for insight in carousel["insights"]
            ]
            print(render_table(rows))

        # -- the repeat is a cache hit ------------------------------------
        repeat = client.insights(InsightRequest(
            dataset="oecd",
            insight_classes=("linear_relationship", "skew", "outliers"),
            top_k=3,
        ))
        print(f"\nrepeat request: cache={repeat.provenance['cache']}")

        # -- a client-side batch ------------------------------------------
        batch = client.insights_batch([
            InsightRequest(dataset="oecd", insight_classes=("dispersion",)),
            InsightRequest(dataset="oecd", insight_classes=("heavy_tails",)),
        ])
        print(f"batch of {len(batch)}: "
              f"{[b.carousels[0]['insight_class'] for b in batch]}")

        # -- the operations surface ---------------------------------------
        health = client.healthz()
        print(f"\nhealthz: {health['status']}, datasets={health['datasets']}")
        metrics = client.metrics()
        print(f"requests: {metrics['server']['requests']['by_endpoint']}")
        print(f"coalesce: {metrics['server']['coalesce']['batches']} batches, "
              f"{metrics['server']['coalesce']['coalesced_requests']} requests")
        print(f"cache:    {metrics['workspace']['cache']['hits']} hits / "
              f"{metrics['workspace']['cache']['misses']} misses")
        print(f"pipeline: {metrics['workspace']['pipeline']['n_queries']} "
              f"queries, {metrics['workspace']['pipeline']['enumerations']} "
              "enumerations")
        p95 = metrics["server"]["latency"]["p95_seconds"]
        print(f"latency:  p95 <= {p95:.3f}s over "
              f"{metrics['server']['latency']['count']} timed requests")
        client.close()

    print("\nserver drained and stopped.")


if __name__ == "__main__":
    main()
