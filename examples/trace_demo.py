"""See where a request's time went: end-to-end tracing over HTTP.

Starts the server on an ephemeral port, attaches a logging handler to
the structured event log, then:

* runs a cold query and prints its span tree (workspace handle →
  engine build → pipeline stages), fetched by the ``X-Repro-Trace-Id``
  the response carried;
* runs the cached repeat and shows how the tree collapses;
* re-runs both with ``debug=True`` and prints the per-request cost
  echo (CPU, rows scanned, candidates, probes) plus the ``/v1/debug``
  ledger and top-K listing;
* drops the slow-request threshold to 0 ms over the wire so the next
  request emits a ``slow_request`` event;
* lists recent traces and the per-span duration histograms.

Run with::

    PYTHONPATH=src python examples/trace_demo.py
"""

from __future__ import annotations

import logging
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import load_oecd  # noqa: E402
from repro.service import InsightRequest, Workspace  # noqa: E402
from repro.server import ReproClient, ServerConfig, serving  # noqa: E402


def print_tree(node: dict, depth: int = 0) -> None:
    """Render one span subtree as an indented duration breakdown."""
    attrs = {key: value for key, value in node["attributes"].items()
             if key not in ("endpoint", "method")}
    detail = f"  {attrs}" if attrs else ""
    print(f"  {'  ' * depth}{node['duration_ms']:>9.3f} ms  "
          f"{node['name']}{detail}")
    for child in node["children"]:
        print_tree(child, depth + 1)


def print_cost(cost: dict) -> None:
    """Render one request's cost snapshot on a single line each."""
    print(f"    cpu={cost['cpu_seconds'] * 1000:.3f}ms "
          f"wall={cost['wall_seconds'] * 1000:.3f}ms "
          f"rows={cost['rows_scanned']} "
          f"candidates={cost['candidates_enumerated']}"
          f"(-{cost['candidates_pruned']} pruned) "
          f"sketch_probes={cost['sketch_probes']} "
          f"cache={cost['cache_hits']}h/{cost['cache_misses']}m")


def main() -> None:
    # Structured events (slow_request, rebuild_swap, ...) are one JSON
    # line each on this logger; any stdlib handler consumes them.
    logging.basicConfig(level=logging.WARNING, format="%(message)s")
    logging.getLogger("repro.obs.events").setLevel(logging.INFO)

    workspace = Workspace()
    workspace.register("oecd", load_oecd)
    request = InsightRequest(dataset="oecd",
                             insight_classes=("skew", "outliers"), top_k=3)

    # Coalescing off: the direct dispatch path keeps the whole story in
    # one trace.  (Coalesced requests split it across two — the rider's
    # trace and the batch's — cross-referenced by request_trace_id.)
    with serving(workspace, ServerConfig(port=0,
                                         coalesce_window=0.0)) as handle:
        host, port = handle.address
        print(f"server listening on http://{host}:{port}")
        client = ReproClient(host, port)

        # -- a cold request: the whole story ------------------------------
        client.insights(request)
        print(f"\ncold request -> X-Repro-Trace-Id: {client.last_trace_id}")
        trace = client.trace(client.last_trace_id)
        print(f"trace {trace['trace_id']} "
              f"({trace['n_spans']} spans, {trace['duration_ms']:.1f} ms):")
        print_tree(trace["root"])

        # -- the cached repeat: the tree collapses ------------------------
        client.insights(request)
        repeat = client.trace(client.last_trace_id)
        print(f"\ncached repeat ({repeat['n_spans']} spans):")
        print_tree(repeat["root"])

        # -- what did it cost?  debug=True echoes the request's bill ------
        cold = client.insights(
            InsightRequest(dataset="oecd", insight_classes=("skew",),
                           top_k=5),
            debug=True)
        print("\ncold request cost (provenance['cost']):")
        print_cost(cold.provenance["cost"])
        warm = client.insights(
            InsightRequest(dataset="oecd", insight_classes=("skew",),
                           top_k=5),
            debug=True)
        print("cached repeat cost (one cache hit, nothing scanned):")
        print_cost(warm.provenance["cost"])

        # -- the debug surface: ledger + most expensive requests ----------
        debug = client.debug(top_k=3)
        memory = debug["memory"]
        print(f"\nmemory ledger ({memory['total_bytes']:,} bytes):")
        for component, n_bytes in memory["components"].items():
            print(f"  {component:<14} {n_bytes:>12,}")
        print("top requests by CPU:")
        for entry in debug["costs"]["top_requests"]:
            print(f"  {entry['cpu_seconds'] * 1000:>9.3f} ms CPU  "
                  f"{entry['rows_scanned']:>6} rows  "
                  f"trace {entry.get('trace_id', '-')}")

        # -- flag slow requests at runtime --------------------------------
        applied = client.set_slow_threshold(0.0)
        print(f"\nslow threshold set to {applied['slow_ms']} ms — the next "
              "request logs a slow_request event:")
        client.insights(InsightRequest(dataset="oecd",
                                       insight_classes=("dispersion",)))

        # -- the listing and the histograms -------------------------------
        listing = client.traces(dataset="oecd", limit=3)
        print(f"\nlast {len(listing['traces'])} oecd traces "
              f"(of {listing['tracing']['traces_recorded']} recorded):")
        for summary in listing["traces"]:
            print(f"  {summary['trace_id']}  {summary['name']:<18} "
                  f"{summary['duration_ms']:>9.3f} ms")
        spans = client.metrics()["obs"]["spans"]
        print("\nper-span p95s:")
        for name in ("request", "workspace.handle", "pipeline.execute",
                     "engine.build"):
            if name in spans:
                snapshot = spans[name]
                print(f"  {name:<18} n={snapshot['count']:<3} "
                      f"p95<={snapshot['p95_seconds']}s "
                      f"max={snapshot['max_seconds'] * 1000:.3f}ms")
        client.close()

    print("\nserver drained and stopped.")


if __name__ == "__main__":
    main()
