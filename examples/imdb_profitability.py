"""IMDB movies exploration (paper section 4.2, third demo dataset).

The paper poses two questions for this dataset:

* "What factors correlate highly with a film's profitability?"
* "How are critical responses and commercial success interrelated?"

This example answers both with insight queries, and also shows the
metric-range filter ("correlations in [0.5, 0.8]") and the heterogeneous-
frequencies carousel for the categorical movie attributes.

Run with::

    python examples/imdb_profitability.py
"""

from __future__ import annotations

from repro import Foresight
from repro.data.datasets import load_imdb
from repro.viz.ascii import render


def main() -> None:
    table = load_imdb()
    print(f"Loaded {table.name}: {table.n_rows} movies x {table.n_columns} features")
    engine = Foresight(table)

    print("\n--- What correlates with profitability? ------------------------------")
    result = engine.query(
        "linear_relationship", top_k=8, fixed=("ProfitMillions",), mode="exact"
    )
    for insight in result:
        partner = next(a for a in insight.attributes if a != "ProfitMillions")
        print(f"  {partner:<28} rho = {insight.details['correlation']:+.3f}")

    print("\n--- Critical response vs commercial success ---------------------------")
    for pair in (("IMDBScore", "GrossMillions"), ("CriticScore", "GrossMillions"),
                 ("IMDBScore", "CriticScore")):
        query_result = engine.query(
            "linear_relationship", top_k=1, fixed=pair, mode="exact"
        )
        if query_result.insights:
            insight = query_result.top()
            print(f"  {pair[0]:<12} vs {pair[1]:<14} "
                  f"rho = {insight.details['correlation']:+.3f}")

    print("\n--- Mid-strength correlations only (metric range [0.5, 0.8]) ----------")
    filtered = engine.query(
        "linear_relationship", top_k=5, metric_min=0.5, metric_max=0.8, mode="exact"
    )
    for insight in filtered:
        print(f"  {insight.summary}")

    print("\n--- Heavy hitters in the categorical attributes -----------------------")
    for insight in engine.query("heterogeneous_frequencies", top_k=5, mode="exact"):
        print(f"  {insight.summary}")

    print("\n--- Outliers: blockbuster grosses --------------------------------------")
    outliers = engine.query("outliers", top_k=3, mode="exact")
    for insight in outliers:
        print(f"  {insight.summary}")
    print()
    print(render(engine.visualize(outliers.top(), mode="exact"), width=60))

    print("\n--- Budget vs gross, visualized ----------------------------------------")
    budget_gross = engine.query(
        "linear_relationship", top_k=1, fixed=("BudgetMillions", "GrossMillions"),
        mode="exact",
    ).top()
    print(render(engine.visualize(budget_gross), width=60, height=14))


if __name__ == "__main__":
    main()
