"""Heterogeneous-Frequencies insight class.

Paper section 2.2, insight 5: for a categorical column c (or a discrete
numeric column b), heterogeneity strength is measured by ``RelFreq(k, c)``,
the total relative frequency of the k most frequent elements.  Visualised
with a Pareto chart.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EmptyColumnError
from repro.data.table import DataTable
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
    singletons,
)
from repro.stats.frequency import (
    distinct_count,
    frequency_table,
    normalized_entropy,
    relative_frequency_topk,
)
from repro.viz.charts import pareto_spec
from repro.viz.spec import VisualizationSpec


class HeterogeneousFrequenciesInsight(InsightClass):
    """A few values dominate the frequency distribution ("heavy hitters")."""

    name = "heterogeneous_frequencies"
    label = "Heterogeneous Frequencies"
    description = "A few values are highly frequent while the rest are rare"
    metric_name = "relfreq_topk"
    arity = 1
    visualization = "pareto"

    def __init__(self, k: int = 3, max_distinct_numeric: int = 20):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self.max_distinct_numeric = int(max_distinct_numeric)

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        yield from singletons(table.discrete_names(self.max_distinct_numeric))

    def candidate_domain(self) -> str | None:
        # Parameterised by max_distinct_numeric: two instances only share an
        # enumeration when their discreteness cut-off matches.
        return f"discrete-singletons-{self.max_distinct_numeric}"

    def _labels(self, name: str, context: EvaluationContext) -> list[object]:
        column = context.table.column(name)
        return column.to_list()

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]
        try:
            if context.use_sketches and context.store.has_column(name):
                store = context.store
                try:
                    relfreq = store.approx_relative_frequency_topk(name, self.k)
                    top = store.approx_top_values(name, self.k)
                    n_distinct = max(len(store.approx_top_values(name, 10**6)), 1)
                except Exception:  # pragma: no cover - fall back to exact path
                    return self._exact_score(attributes, context)
                if relfreq == 0.0:
                    return None
                return ScoredCandidate(
                    attributes=attributes,
                    score=float(relfreq),
                    details={
                        "k": self.k,
                        "top_values": [str(label) for label, _ in top],
                        "n_distinct_tracked": n_distinct,
                        "source": "sketch",
                    },
                )
            return self._exact_score(attributes, context)
        except EmptyColumnError:
            return None

    def _exact_score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]
        labels = self._labels(name, context)
        non_missing = [label for label in labels if label is not None]
        if not non_missing:
            return None
        relfreq = relative_frequency_topk(non_missing, self.k)
        table = frequency_table(non_missing)
        n_distinct = distinct_count(non_missing)
        # A column with <= k distinct values trivially has RelFreq = 1; such
        # candidates carry no heterogeneity information, so damp their score
        # by how much structure the frequency distribution actually has.
        if n_distinct <= self.k:
            adjusted = relfreq * (1.0 - normalized_entropy(non_missing))
        else:
            adjusted = relfreq
        return ScoredCandidate(
            attributes=attributes,
            score=float(adjusted),
            details={
                "k": self.k,
                "relfreq_topk_raw": float(relfreq),
                "top_values": [entry.label for entry in table[: self.k]],
                "top_frequencies": [round(entry.frequency, 6) for entry in table[: self.k]],
                "n_distinct": n_distinct,
                "source": "exact",
            },
        )

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        name = insight.attributes[0]
        labels = [label for label in self._labels(name, context) if label is not None]
        spec = pareto_spec(labels, name, title=f"{self.label}: {name}")
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        spec.metadata["k"] = self.k
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        top = candidate.details.get("top_values", [])
        top_text = ", ".join(map(str, top[:3])) if top else "a few values"
        return (
            f"{name}: top {self.k} values ({top_text}) cover "
            f"{candidate.score:.1%} of the rows"
        )
