"""Segmentation insight class.

The paper's introduction names "a strong clustering of (x, y)-values
according to z-values" as an example insight, and section 2.2 lists
segmentation among the additional insight classes.  A candidate tuple is
(x, y, z) with x, y numeric and z categorical; the ranking metric is the
between-group fraction of scatter of the standardised (x, y) points
(:func:`repro.stats.segmentation.segmentation_strength`), and the preferred
visualization is a scatter plot coloured by z.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EmptyColumnError
from repro.data.table import DataTable
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
    pairs,
)
from repro.stats import segmentation as segmentation_stats
from repro.viz.charts import grouped_scatter_spec
from repro.viz.spec import VisualizationSpec


class SegmentationInsight(InsightClass):
    """(x, y) points that cluster strongly when grouped by a categorical z."""

    name = "segmentation"
    label = "Segmentation"
    description = "Numeric attribute pairs that separate cleanly by a categorical attribute"
    metric_name = "segmentation_strength"
    arity = 3
    visualization = "grouped_scatter"

    def __init__(self, min_categories: int = 2, max_categories: int = 12):
        self.min_categories = int(min_categories)
        self.max_categories = int(max_categories)

    def _grouping_columns(self, table: DataTable) -> list[str]:
        names = []
        for name in table.categorical_names():
            column = table.categorical_column(name)
            if self.min_categories <= column.n_categories() <= self.max_categories:
                names.append(name)
        return names

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        groupings = self._grouping_columns(table)
        if not groupings:
            return
        for x_name, y_name in pairs(table.numeric_names()):
            for z_name in groupings:
                yield (x_name, y_name, z_name)

    def candidate_count(self, table: DataTable) -> int:
        d = len(table.numeric_names())
        return (d * (d - 1) // 2) * len(self._grouping_columns(table))

    def _table(self, context: EvaluationContext) -> DataTable:
        if context.use_sketches and context.store is not None:
            return context.store.sample_table()
        return context.table

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        x_name, y_name, z_name = attributes
        table = self._table(context)
        try:
            strength = segmentation_stats.segmentation_strength(
                table.numeric_column(x_name).values,
                table.numeric_column(y_name).values,
                table.categorical_column(z_name).labels(),
            )
        except EmptyColumnError:
            return None
        n_groups = table.categorical_column(z_name).n_categories()
        return ScoredCandidate(
            attributes=attributes,
            score=float(strength),
            details={"n_groups": n_groups},
        )

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        x_name, y_name, z_name = insight.attributes
        table = self._table(context)
        spec = grouped_scatter_spec(
            table.numeric_column(x_name).values,
            table.numeric_column(y_name).values,
            table.categorical_column(z_name).labels(),
            x_name,
            y_name,
            z_name,
            title=f"{self.label}: ({x_name}, {y_name}) by {z_name}",
        )
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        x_name, y_name, z_name = candidate.attributes
        return (
            f"({x_name}, {y_name}) separates into clusters by {z_name} "
            f"(separation {candidate.score:.2f})"
        )
