"""Bivariate insight classes.

* :class:`LinearRelationshipInsight` — paper section 2.2, insight 6: the
  strength of a linear relationship between two numeric columns, ranked by
  |Pearson ρ|, visualised with a scatter plot + best-fit line, with the
  Figure 2 correlation heat map as its overview visualization.
* :class:`MonotonicRelationshipInsight` — "nonlinear monotonic
  relationships" from the additional-insights list.
* :class:`DependenceInsight` — "general statistical dependencies" from the
  additional-insights list, covering categorical-categorical (Cramér's V)
  and categorical-numeric (correlation ratio η²) pairs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import EmptyColumnError
from repro.data.missing import pairwise_values
from repro.data.table import DataTable
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
    pairs,
)
from repro.stats import correlation as correlation_stats
from repro.stats import dependence as dependence_stats
from repro.stats import monotonic as monotonic_stats
from repro.viz.charts import grouped_scatter_spec, heatmap_spec, scatter_spec
from repro.viz.spec import VisualizationSpec


class LinearRelationshipInsight(InsightClass):
    """Strong linear relationship between two numeric attributes."""

    name = "linear_relationship"
    label = "Correlations"
    description = "Strong linear relationship between two numeric attributes"
    metric_name = "abs_pearson"
    arity = 2
    visualization = "scatter"
    has_overview = True

    def __init__(self, method: str = "pearson"):
        if method not in ("pearson", "spearman"):
            raise ValueError("method must be 'pearson' or 'spearman'")
        self.method = method

    # -- candidates --------------------------------------------------------------
    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        yield from pairs(table.numeric_names())

    def candidate_domain(self) -> str | None:
        return "numeric-pairs"

    def candidate_count(self, table: DataTable) -> int:
        d = len(table.numeric_names())
        return d * (d - 1) // 2

    # -- scoring -----------------------------------------------------------------
    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        x_name, y_name = attributes
        try:
            if (
                context.use_sketches
                and self.method == "pearson"
                and context.store.has_column(x_name)
                and context.store.has_column(y_name)
            ):
                rho = context.store.approx_correlation(x_name, y_name)
                source = "sketch"
            else:
                x, y = pairwise_values(
                    context.table.numeric_column(x_name),
                    context.table.numeric_column(y_name),
                )
                rho = (
                    correlation_stats.pearson(x, y)
                    if self.method == "pearson"
                    else correlation_stats.spearman(x, y)
                )
                source = "exact"
        except EmptyColumnError:
            return None
        return ScoredCandidate(
            attributes=attributes,
            score=float(abs(rho)),
            details={
                "correlation": float(rho),
                "method": self.method,
                "direction": "positive" if rho >= 0 else "negative",
                "source": source,
            },
        )

    def score_all(
        self, candidate_tuples: Sequence[tuple[str, ...]], context: EvaluationContext
    ) -> list[ScoredCandidate]:
        """Batched scoring.

        In approximate mode all pairwise correlations come from one sketch
        matrix product (O(d²·k)); in exact mode they come from one dense
        correlation-matrix computation (O(d²·n)).  This is the code path the
        latency benchmarks measure.
        """
        if self.method != "pearson":
            return super().score_all(candidate_tuples, context)
        names = sorted({name for attrs in candidate_tuples for name in attrs})
        try:
            if context.use_sketches and all(
                context.store.has_column(name) for name in names
            ):
                matrix, ordered = context.store.approx_correlation_matrix(names)
                source = "sketch"
            else:
                dense, ordered = context.table.numeric_matrix(names)
                matrix = correlation_stats.correlation_matrix(dense, method=self.method)
                source = "exact"
        except (EmptyColumnError, ValueError):
            return super().score_all(candidate_tuples, context)
        index = {name: i for i, name in enumerate(ordered)}
        results = []
        for attributes in candidate_tuples:
            x_name, y_name = attributes
            if x_name not in index or y_name not in index:
                continue
            rho = float(matrix[index[x_name], index[y_name]])
            results.append(
                ScoredCandidate(
                    attributes=attributes,
                    score=abs(rho),
                    details={
                        "correlation": rho,
                        "method": self.method,
                        "direction": "positive" if rho >= 0 else "negative",
                        "source": source,
                    },
                )
            )
        return results

    # -- presentation --------------------------------------------------------------
    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        x_name, y_name = insight.attributes
        table = context.table
        if context.use_sketches and context.store is not None:
            table = context.store.sample_table()
        x = table.numeric_column(x_name)
        y = table.numeric_column(y_name)
        x_values, y_values = pairwise_values(x, y)
        spec = scatter_spec(x_values, y_values, x_name, y_name,
                            title=f"{self.label}: {y_name} vs {x_name}")
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        spec.metadata["correlation"] = insight.details.get("correlation")
        return spec

    def overview(self, context: EvaluationContext) -> VisualizationSpec | None:
        """The Figure 2 overview: all pairwise correlations as a heat map."""
        names = context.table.numeric_names()
        if len(names) < 2:
            return None
        if context.use_sketches and all(
            context.store.has_column(name) for name in names
        ):
            matrix, ordered = context.store.approx_correlation_matrix(names)
        else:
            dense, ordered = context.table.numeric_matrix(names)
            matrix = correlation_stats.correlation_matrix(dense, method=self.method)
        spec = heatmap_spec(matrix, ordered, value_name="correlation",
                            title="Pairwise attribute correlations")
        spec.metadata["insight_class"] = self.name
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        x_name, y_name = candidate.attributes
        rho = candidate.details.get("correlation", candidate.score)
        direction = candidate.details.get("direction", "strong")
        return (
            f"{x_name} and {y_name} have a strong {direction} linear "
            f"relationship (ρ = {rho:+.2f})"
        )


class MonotonicRelationshipInsight(InsightClass):
    """Nonlinear but monotonic relationship between two numeric attributes."""

    name = "monotonic_relationship"
    label = "Nonlinear Monotonic Relationships"
    description = "Monotonic association that a linear fit underestimates"
    metric_name = "monotonic_strength"
    arity = 2
    visualization = "scatter"

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        yield from pairs(table.numeric_names())

    def candidate_domain(self) -> str | None:
        return "numeric-pairs"

    def candidate_count(self, table: DataTable) -> int:
        d = len(table.numeric_names())
        return d * (d - 1) // 2

    def _columns(self, attributes: tuple[str, ...], context: EvaluationContext):
        table = context.table
        if context.use_sketches and context.store is not None:
            table = context.store.sample_table()
        return (
            table.numeric_column(attributes[0]),
            table.numeric_column(attributes[1]),
        )

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        try:
            x_column, y_column = self._columns(attributes, context)
            x, y = pairwise_values(x_column, y_column, minimum=5)
        except EmptyColumnError:
            return None
        relation = monotonic_stats.monotonic_relation(x, y)
        strength = monotonic_stats.monotonic_strength(x, y)
        return ScoredCandidate(
            attributes=attributes,
            score=float(strength),
            details={
                "spearman": relation.spearman,
                "pearson": relation.pearson,
                "direction": relation.direction,
                "nonlinearity_gap": relation.nonlinearity_gap,
            },
        )

    def score_all(
        self, candidate_tuples: Sequence[tuple[str, ...]], context: EvaluationContext
    ) -> list[ScoredCandidate]:
        """Batched scoring via one Spearman matrix and one Pearson matrix.

        Rank-transforming every column once and computing two dense
        correlation matrices is O(d²·m) matrix algebra (m = sample size in
        approximate mode), instead of O(d²) separate rank correlations.
        """
        names = sorted({name for attrs in candidate_tuples for name in attrs})
        table = context.table
        if context.use_sketches and context.store is not None:
            table = context.store.sample_table()
        try:
            dense, ordered = table.numeric_matrix(names)
        except Exception:
            return super().score_all(candidate_tuples, context)
        if dense.shape[0] < 5 or np.isnan(dense).any():
            # Pairwise-complete handling differs per pair; fall back.
            return super().score_all(candidate_tuples, context)
        spearman_matrix = correlation_stats.correlation_matrix(dense, method="spearman")
        pearson_matrix = correlation_stats.correlation_matrix(dense, method="pearson")
        index = {name: i for i, name in enumerate(ordered)}
        results = []
        for attributes in candidate_tuples:
            x_name, y_name = attributes
            if x_name not in index or y_name not in index:
                continue
            spearman_value = float(spearman_matrix[index[x_name], index[y_name]])
            pearson_value = float(pearson_matrix[index[x_name], index[y_name]])
            relation = monotonic_stats.MonotonicRelation(
                spearman=spearman_value, pearson=pearson_value
            )
            if abs(spearman_value) < 1e-12:
                strength = 0.0
            else:
                strength = abs(spearman_value) * (
                    relation.nonlinearity_gap / abs(spearman_value)
                )
            results.append(
                ScoredCandidate(
                    attributes=attributes,
                    score=float(strength),
                    details={
                        "spearman": spearman_value,
                        "pearson": pearson_value,
                        "direction": relation.direction,
                        "nonlinearity_gap": relation.nonlinearity_gap,
                    },
                )
            )
        return results

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        x_name, y_name = insight.attributes
        x_column, y_column = self._columns(insight.attributes, context)
        x, y = pairwise_values(x_column, y_column)
        spec = scatter_spec(x, y, x_name, y_name,
                            title=f"{self.label}: {y_name} vs {x_name}")
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        spec.metadata.update(insight.details)
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        x_name, y_name = candidate.attributes
        spearman = candidate.details.get("spearman", 0.0)
        direction = candidate.details.get("direction", "monotonic")
        return (
            f"{x_name} and {y_name} have a nonlinear {direction} relationship "
            f"(Spearman {spearman:+.2f} vs Pearson "
            f"{candidate.details.get('pearson', 0.0):+.2f})"
        )


class DependenceInsight(InsightClass):
    """General statistical dependence between attributes of mixed kinds."""

    name = "dependence"
    label = "Statistical Dependencies"
    description = "General (not necessarily linear) dependence between attributes"
    metric_name = "dependence_strength"
    arity = 2
    visualization = "heatmap"

    def __init__(self, max_categories: int = 50):
        self.max_categories = int(max_categories)

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        # Identifier-like columns (almost one category per row) trivially
        # "explain" any numeric attribute; exclude them along with very
        # high-cardinality columns.
        identifier_threshold = max(2, table.n_rows // 2)
        categorical = [
            name
            for name in table.categorical_names()
            if table.categorical_column(name).n_categories()
            <= min(self.max_categories, identifier_threshold)
        ]
        numeric = table.numeric_names()
        # categorical-categorical pairs
        yield from pairs(categorical)
        # categorical-numeric pairs (categorical listed first)
        for cat_name in categorical:
            for num_name in numeric:
                yield (cat_name, num_name)

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        first, second = attributes
        table = context.table
        if context.use_sketches and context.store is not None:
            table = context.store.sample_table()
        try:
            first_kind = table.column(first).kind
            second_kind = table.column(second).kind
            if first_kind.is_categorical and second_kind.is_categorical:
                value = dependence_stats.cramers_v(
                    table.categorical_column(first).labels(),
                    table.categorical_column(second).labels(),
                )
                measure = "cramers_v"
            else:
                cat_name, num_name = (first, second) if first_kind.is_categorical else (second, first)
                value = dependence_stats.correlation_ratio(
                    table.categorical_column(cat_name).labels(),
                    table.numeric_column(num_name).values,
                )
                measure = "correlation_ratio"
        except EmptyColumnError:
            return None
        return ScoredCandidate(
            attributes=attributes,
            score=float(value),
            details={"measure": measure},
        )

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        first, second = insight.attributes
        table = context.table
        if context.use_sketches and context.store is not None:
            table = context.store.sample_table()
        first_kind = table.column(first).kind
        second_kind = table.column(second).kind
        if first_kind.is_categorical and second_kind.is_categorical:
            contingency = dependence_stats.contingency_table(
                table.categorical_column(first).labels(),
                table.categorical_column(second).labels(),
            )
            x_levels = sorted(set(table.categorical_column(first).valid_labels()))
            spec = heatmap_not_square(contingency, x_levels,
                                      sorted(set(table.categorical_column(second).valid_labels())),
                                      title=f"{self.label}: {first} x {second}")
        else:
            cat_name, num_name = (first, second) if first_kind.is_categorical else (second, first)
            labels = table.categorical_column(cat_name).labels()
            values = table.numeric_column(num_name).values
            index = np.arange(values.size, dtype=np.float64)
            spec = grouped_scatter_spec(
                index, values, labels, "row", num_name, cat_name,
                title=f"{self.label}: {num_name} by {cat_name}",
            )
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        spec.metadata.update(insight.details)
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        first, second = candidate.attributes
        measure = candidate.details.get("measure", "dependence")
        return (
            f"{first} and {second} are statistically dependent "
            f"({measure} = {candidate.score:.2f})"
        )


def heatmap_not_square(
    counts: np.ndarray, row_labels: Sequence[str], column_labels: Sequence[str],
    title: str,
) -> VisualizationSpec:
    """Rectangular count heat map for a contingency table."""
    from repro.viz.spec import VisualizationSpec, encoding_channel

    data = []
    max_count = float(counts.max()) if counts.size else 1.0
    for i, row_label in enumerate(row_labels[: counts.shape[0]]):
        for j, column_label in enumerate(column_labels[: counts.shape[1]]):
            count = float(counts[i, j])
            data.append(
                {
                    "row": row_label,
                    "column": column_label,
                    "count": count,
                    "correlation": count / max_count if max_count else 0.0,
                    "magnitude": count / max_count if max_count else 0.0,
                }
            )
    return VisualizationSpec(
        mark="rect",
        title=title,
        data=data,
        encoding={
            "x": encoding_channel("column", "nominal"),
            "y": encoding_channel("row", "nominal"),
            "color": encoding_channel("count", "quantitative"),
            "size": encoding_channel("magnitude", "quantitative"),
        },
        metadata={"kind": "contingency"},
    )
