"""Univariate insight classes over numeric columns.

These cover the first four insights of section 2.2 (dispersion, skew, heavy
tails, outliers — all ranked over single numeric attributes and visualised
with histograms or box plots), plus three univariate classes that round out
the twelve shipped with the demo:

* multimodality (named in the paper's "additional insights"),
* normality / distribution shape (needed by the section 4.1 scenario),
* missing values (section 2.1 notes insights may expose data problems).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import EmptyColumnError
from repro.data.table import DataTable
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
    singletons,
)
from repro.stats import moments as moment_stats
from repro.stats import multimodality as multimodality_stats
from repro.stats import normality as normality_stats
from repro.stats import outliers as outlier_stats
from repro.viz.charts import bar_spec, boxplot_spec, histogram_spec
from repro.viz.spec import VisualizationSpec


class _UnivariateNumericInsight(InsightClass):
    """Shared plumbing for insights ranked over single numeric columns."""

    arity = 1
    visualization = "histogram"

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        yield from singletons(table.numeric_names())

    def candidate_domain(self) -> str | None:
        return "numeric-singletons"

    # -- helpers ---------------------------------------------------------------
    def _values(self, name: str, context: EvaluationContext) -> np.ndarray:
        return context.table.numeric_column(name).valid_values()

    def _safe(self, attributes: tuple[str, ...], compute) -> ScoredCandidate | None:
        try:
            return compute()
        except EmptyColumnError:
            return None

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        name = insight.attributes[0]
        values = self._values(name, context)
        spec = histogram_spec(values, name,
                              title=f"{self.label}: {name}")
        spec.metadata.update(insight.details)
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        return spec


class DispersionInsight(_UnivariateNumericInsight):
    """Very high (or low) dispersion about the mean, measured by the variance.

    Paper section 2.2, insight 1.  Because raw variance is scale dependent,
    candidates are ranked by the variance of the standardised column's scale
    — concretely the squared coefficient of variation — while the raw
    variance is reported in the details; this keeps ranking meaningful
    across attributes measured in different units.
    """

    name = "dispersion"
    label = "Dispersion"
    description = "Very high or low spread of values around the mean"
    metric_name = "variance"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store.has_column(name):
                variance = context.store.approx_variance(name)
                mean = context.store.approx_mean(name)
            else:
                values = self._values(name, context)
                if values.size < 2:
                    return None
                variance = moment_stats.variance(values)
                mean = moment_stats.mean(values)
            if np.isnan(variance):
                return None
            cv2 = variance / (mean * mean) if mean != 0 else float(variance > 0)
            return ScoredCandidate(
                attributes=attributes,
                score=float(cv2),
                details={"variance": float(variance), "mean": float(mean),
                         "coefficient_of_variation_sq": float(cv2)},
            )

        return self._safe(attributes, compute)

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        variance = candidate.details.get("variance", candidate.score)
        return (
            f"{name} is highly dispersed around its mean "
            f"(variance {variance:.3g}, CV² {candidate.score:.3g})"
        )


class SkewInsight(_UnivariateNumericInsight):
    """Strong asymmetry, ranked by |standardised skewness coefficient γ₁|.

    Paper section 2.2, insight 2.  The signed skewness is kept in the
    details so summaries can say "left-skewed" / "right-skewed" (as the
    section 4.1 scenario does for Self Reported Health).
    """

    name = "skew"
    label = "Skew"
    description = "Strong asymmetry of a univariate distribution"
    metric_name = "abs_skewness"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store.has_column(name):
                skew = context.store.approx_skewness(name)
            else:
                values = self._values(name, context)
                if values.size < 3:
                    return None
                skew = moment_stats.skewness(values)
            if np.isnan(skew):
                return None
            direction = "left-skewed" if skew < 0 else "right-skewed"
            if abs(skew) < 0.25:
                direction = "approximately symmetric"
            return ScoredCandidate(
                attributes=attributes,
                score=float(abs(skew)),
                details={"skewness": float(skew), "direction": direction},
            )

        return self._safe(attributes, compute)

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        return (
            f"{name} is {candidate.details.get('direction', 'skewed')} "
            f"(γ₁ = {candidate.details.get('skewness', candidate.score):+.2f})"
        )


class HeavyTailsInsight(_UnivariateNumericInsight):
    """Propensity towards extreme values, ranked by kurtosis.

    Paper section 2.2, insight 3 (kurtosis of a normal distribution is 3;
    larger values indicate heavier tails).
    """

    name = "heavy_tails"
    label = "Heavy Tails"
    description = "Propensity of a distribution towards extreme values"
    metric_name = "kurtosis"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store.has_column(name):
                kurt = context.store.approx_kurtosis(name)
            else:
                values = self._values(name, context)
                if values.size < 4:
                    return None
                kurt = moment_stats.kurtosis(values)
            if np.isnan(kurt):
                return None
            return ScoredCandidate(
                attributes=attributes,
                score=float(kurt),
                details={"kurtosis": float(kurt),
                         "excess_kurtosis": float(kurt) - 3.0},
            )

        return self._safe(attributes, compute)

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        excess = candidate.details.get("excess_kurtosis", candidate.score - 3.0)
        flavour = "heavier" if excess > 0 else "lighter"
        return (
            f"{name} has {flavour} tails than a normal distribution "
            f"(kurtosis {candidate.score:.2f})"
        )


class OutlierInsight(_UnivariateNumericInsight):
    """Presence and significance of extreme outliers.

    Paper section 2.2, insight 4: a user-configurable detector finds the
    outliers and the metric is their average standardized distance from the
    mean (in standard deviations).  Visualised with a box-and-whisker plot.
    """

    name = "outliers"
    label = "Outliers"
    description = "Presence and significance of extreme outlier values"
    metric_name = "avg_standardized_outlier_distance"
    visualization = "boxplot"

    def __init__(self, detector: str = "iqr", **detector_kwargs):
        self.detector = detector
        self.detector_kwargs = dict(detector_kwargs)

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store.has_column(name):
                strength = context.store.approx_outlier_strength(name)
                details = {"detector": f"{self.detector} (sketch-approximated)"}
                if strength == 0.0:
                    return ScoredCandidate(attributes=attributes, score=0.0, details=details)
                return ScoredCandidate(attributes=attributes, score=float(strength),
                                       details=details)
            values = self._values(name, context)
            if values.size < 4:
                return None
            strength, result = outlier_stats.outlier_strength(
                values, self.detector, **self.detector_kwargs
            )
            return ScoredCandidate(
                attributes=attributes,
                score=float(strength),
                details={
                    "detector": result.detector,
                    "n_outliers": result.count,
                    "outlier_fraction": result.fraction,
                },
            )

        return self._safe(attributes, compute)

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        name = insight.attributes[0]
        values = self._values(name, context)
        spec = boxplot_spec(values, name, detector=self.detector,
                            title=f"{self.label}: {name}")
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        count = candidate.details.get("n_outliers")
        count_text = f"{count} outliers" if count is not None else "outliers"
        return (
            f"{name} has {count_text} at an average of "
            f"{candidate.score:.1f} standard deviations from the mean"
        )


class MultimodalityInsight(_UnivariateNumericInsight):
    """Multiple modes in a univariate distribution (additional insight)."""

    name = "multimodality"
    label = "Multimodality"
    description = "Distribution with two or more distinct modes"
    metric_name = "multimodality_strength"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store is not None:
                sample = context.store.sample_table()
                values = sample.numeric_column(name).valid_values()
            else:
                values = self._values(name, context)
            if values.size < 5:
                return None
            strength = multimodality_stats.multimodality_strength(values)
            modes = multimodality_stats.find_modes(values)
            return ScoredCandidate(
                attributes=attributes,
                score=float(strength),
                details={
                    "n_modes": len(modes),
                    "mode_locations": [round(m.location, 6) for m in modes[:4]],
                    "bimodality_coefficient": multimodality_stats.bimodality_coefficient(values),
                },
            )

        return self._safe(attributes, compute)

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        n_modes = candidate.details.get("n_modes", "multiple")
        return f"{name} shows {n_modes} modes (strength {candidate.score:.2f})"


class NormalityInsight(_UnivariateNumericInsight):
    """Distribution shape relative to the normal distribution.

    The section 4.1 scenario reports that "Time Devoted To Leisure has a
    Normal distribution while Self Reported Health has a left-skewed
    distribution"; this class provides those shape labels.  Ranking uses the
    *non*-normality score so the most interestingly-shaped columns surface
    first, while the details record the full shape diagnosis.
    """

    name = "normality"
    label = "Distribution Shape"
    description = "How far a univariate distribution departs from normal"
    metric_name = "non_normality"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]

        def compute() -> ScoredCandidate | None:
            if context.use_sketches and context.store is not None:
                sample = context.store.sample_table()
                values = sample.numeric_column(name).valid_values()
            else:
                values = self._values(name, context)
            if values.size < 8:
                return None
            result = normality_stats.normality_test(values)
            score = normality_stats.non_normality_score(values)
            return ScoredCandidate(
                attributes=attributes,
                score=float(score),
                details={
                    "shape": result.shape_label,
                    "skewness": result.skewness,
                    "excess_kurtosis": result.excess_kurtosis,
                    "ks_statistic": result.ks_statistic,
                    "normality_score": 1.0 - score,
                },
            )

        return self._safe(attributes, compute)

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        shape = candidate.details.get("shape", "non-normal")
        return f"{name} has a {shape} distribution"


class MissingValuesInsight(InsightClass):
    """Columns with substantial missing data (a data-quality insight).

    Section 2.1 notes that insights can "reveal additional, more subtle data
    problems that require further cleaning"; missing-value concentration is
    the most common such problem, so the demo ships it as a first-class
    insight over *all* columns (numeric and categorical).
    """

    name = "missing_values"
    label = "Missing Values"
    description = "Columns with a high fraction of missing entries"
    metric_name = "missing_fraction"
    arity = 1
    visualization = "bar"

    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        yield from singletons(table.column_names())

    def candidate_domain(self) -> str | None:
        return "all-singletons"

    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        name = attributes[0]
        column = context.table.column(name)
        if len(column) == 0:
            return None
        fraction = column.missing_fraction()
        return ScoredCandidate(
            attributes=attributes,
            score=float(fraction),
            details={"missing_count": column.missing_count(), "n_rows": len(column)},
        )

    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        name = insight.attributes[0]
        column = context.table.column(name)
        missing = column.missing_count()
        present = len(column) - missing
        spec = bar_spec(
            labels=["present", "missing"],
            values=[present, missing],
            name="status",
            value_name="rows",
            title=f"{self.label}: {name}",
        )
        spec.metadata["insight_class"] = self.name
        spec.metadata["score"] = insight.score
        return spec

    def summarize(self, candidate: ScoredCandidate) -> str:
        name = candidate.attributes[0]
        return f"{name} is missing in {candidate.score:.1%} of rows"
