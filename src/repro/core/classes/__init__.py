"""The twelve insight classes shipped with this reproduction."""

from repro.core.classes.univariate import (
    DispersionInsight,
    HeavyTailsInsight,
    MissingValuesInsight,
    MultimodalityInsight,
    NormalityInsight,
    OutlierInsight,
    SkewInsight,
)
from repro.core.classes.frequencies import HeterogeneousFrequenciesInsight
from repro.core.classes.bivariate import (
    DependenceInsight,
    LinearRelationshipInsight,
    MonotonicRelationshipInsight,
)
from repro.core.classes.segmentation import SegmentationInsight

__all__ = [
    "DependenceInsight",
    "DispersionInsight",
    "HeavyTailsInsight",
    "HeterogeneousFrequenciesInsight",
    "LinearRelationshipInsight",
    "MissingValuesInsight",
    "MonotonicRelationshipInsight",
    "MultimodalityInsight",
    "NormalityInsight",
    "OutlierInsight",
    "SegmentationInsight",
    "SkewInsight",
]
