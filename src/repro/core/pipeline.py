"""The staged query execution pipeline: plan → enumerate → score → rank.

Historically :meth:`RankingEngine.rank` and :meth:`Foresight.carousels`
each interleaved candidate enumeration, constraint filtering, scoring and
ranking, so a multi-class request re-enumerated the candidate tuples once
per class.  This module extracts those steps into four explicit stages
executed by :class:`QueryPipeline`:

1. **plan** — resolve each :class:`~repro.core.query.InsightQuery` against
   the registry, apply default candidate caps, and compute a *share key*
   from :meth:`~repro.core.insight.InsightClass.candidate_domain` so that
   classes enumerating the same domain can pool their enumeration;
2. **enumerate** — produce the admissible candidate tuples per query.  A
   domain shared by two or more planned queries is materialised **once**
   and re-filtered per query; unshared queries — and queries carrying a
   ``max_candidates`` cap, which must keep the lazy early-stop that avoids
   materialising a large domain to serve a few tuples — iterate privately;
3. **score** — evaluate the insight metric over the admissible candidates
   (batched / sketch-backed where the class supports it).  Two pieces of
   machinery live here:

   * **sharded scoring** — classes that score candidates one at a time
     (:meth:`~repro.core.insight.InsightClass.scores_elementwise`) have
     their admissible list split into deterministic contiguous chunks
     (:func:`repro.core.executor.shard`) and fanned out over the
     pipeline's :class:`~repro.core.executor.Executor`.  Because chunking
     is a pure function of the candidate count and ``score_all`` is
     order-preserving and element-independent, a parallel run produces
     byte-identical rankings to a serial one;
   * **cross-query score sharing** — queries over the same shared
     candidate domain whose constraints don't prune (their admissible
     list *is* the full domain) share scored candidates, not just
     enumerated tuples: the first query of each
     ``(class, mode, domain)`` group pays for scoring and the rest reuse
     its batch, so a batch of unpruned same-class queries scores each
     candidate once;

4. **rank** — apply the metric-range filter, sort (score descending, ties
   broken by attribute names for determinism) and take the top-k.

:class:`PipelineStats` counts raw enumerations, shared queries, actual
metric evaluations and score-batch reuse; the serving layer
(:mod:`repro.service.workspace`) surfaces those counters as response
provenance, and the pipeline tests use them to prove that a multi-class
request over same-arity classes enumerates only once and that unpruned
same-class queries score each candidate once, not twice.

The implementation lives in :mod:`repro.core` (it is execution-engine
machinery); :mod:`repro.service.pipeline` re-exports it as part of the
public serving namespace, keeping the import graph strictly
core ← service.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.executor import Executor, SerialExecutor, shard
from repro.obs.resources import record_candidates
from repro.obs.tracer import obs_span
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
)
from repro.core.query import InsightQuery
from repro.core.registry import InsightRegistry


@dataclass
class RankingResult:
    """Ranked insights plus bookkeeping about the search."""

    query: InsightQuery
    insights: list[Insight]
    n_candidates: int = 0
    n_scored: int = 0
    n_admitted: int = 0
    truncated: bool = False
    details: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)

    def top(self) -> Insight | None:
        return self.insights[0] if self.insights else None

    def attribute_sets(self) -> list[tuple[str, ...]]:
        return [insight.attributes for insight in self.insights]


@dataclass
class PipelineStats:
    """Counters accumulated over one pipeline execution."""

    #: How many times a class's ``candidates()`` iterator was actually run.
    enumerations: int = 0
    #: Queries answered from an enumeration another query already paid for.
    shared_queries: int = 0
    #: Total queries executed.
    n_queries: int = 0
    #: Total candidate tuples scored across all queries (reuse included).
    n_scored: int = 0
    #: Candidate tuples actually submitted to a metric evaluation.  When
    #: cross-query score sharing engages this stays below the sum of
    #: per-query admissible counts — the proof that a shared candidate
    #: was scored once, not once per query.
    score_evaluations: int = 0
    #: Queries whose scored batch was reused from an earlier query of the
    #: same (class, mode, domain) group.
    shared_score_queries: int = 0
    #: Chunks dispatched by the sharded score stage (0 = no sharding).
    score_shards: int = 0
    #: Wall-clock seconds for the whole execution.
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "enumerations": self.enumerations,
            "shared_queries": self.shared_queries,
            "n_queries": self.n_queries,
            "n_scored": self.n_scored,
            "score_evaluations": self.score_evaluations,
            "shared_score_queries": self.shared_score_queries,
            "score_shards": self.score_shards,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def merge(self, other: "PipelineStats") -> None:
        """Fold another execution's counters into this accumulator.

        The serving layer keeps one long-lived ``PipelineStats`` per
        workspace and merges every request's per-execution stats into it,
        so operational surfaces (``/metrics``) can report lifetime
        pipeline totals without the pipeline itself holding shared state.
        """
        self.enumerations += other.enumerations
        self.shared_queries += other.shared_queries
        self.n_queries += other.n_queries
        self.n_scored += other.n_scored
        self.score_evaluations += other.score_evaluations
        self.shared_score_queries += other.shared_score_queries
        self.score_shards += other.score_shards
        self.elapsed_seconds += other.elapsed_seconds


@dataclass(frozen=True)
class PlannedQuery:
    """Stage-1 output: a query bound to its insight class and share key."""

    query: InsightQuery
    insight_class: InsightClass
    #: (candidate_domain, arity) when the class opts into shared
    #: enumeration, else None.
    share_key: tuple[str, int] | None


@dataclass
class ExecutionPlan:
    """The full plan for one (possibly multi-class) request."""

    queries: list[PlannedQuery]

    def share_groups(self) -> dict[tuple[str, int], int]:
        """How many planned queries fall in each shareable domain."""
        groups: dict[tuple[str, int], int] = {}
        for planned in self.queries:
            if planned.share_key is not None:
                groups[planned.share_key] = groups.get(planned.share_key, 0) + 1
        return groups


@dataclass
class Enumeration:
    """Stage-2 output for one query."""

    admissible: list[tuple[str, ...]]
    truncated: bool = False
    n_candidates: int = 0
    #: Wall-clock spent enumerating/filtering for this query.  The one-off
    #: materialisation of a shared domain is charged to the first query of
    #: its group (whose ``candidates()`` call actually paid for it).
    elapsed_seconds: float = 0.0
    #: Set to the enumeration share key when the admissible list is the
    #: *unpruned* shared domain — the precondition for the score stage to
    #: share this query's scored batch with its domain-mates.
    score_share_key: tuple[str, int] | None = None


@dataclass
class ScoredBatch:
    """Stage-3 output for one query."""

    candidates: list[ScoredCandidate]
    elapsed_seconds: float = 0.0


class QueryPipeline:
    """Executes insight queries in explicit stages with shared enumeration.

    The optional ``executor`` fans the score stage out across workers;
    the default :class:`~repro.core.executor.SerialExecutor` preserves
    single-threaded behavior exactly.  One pipeline instance is safe to
    use from many threads concurrently: every per-execution structure is
    call-local, and the executor's thread pool supports concurrent
    submitters.
    """

    def __init__(self, registry: InsightRegistry, executor: Executor | None = None):
        self._registry = registry
        self._executor = executor or SerialExecutor()

    @property
    def registry(self) -> InsightRegistry:
        return self._registry

    @property
    def executor(self) -> Executor:
        """The executor the score stage fans out on."""
        return self._executor

    # ------------------------------------------------------------------
    # Stage 1: plan
    # ------------------------------------------------------------------
    def plan(
        self,
        queries: Sequence[InsightQuery],
        default_caps: Callable[[InsightQuery], InsightQuery] | None = None,
    ) -> ExecutionPlan:
        """Resolve classes, apply caps and compute enumeration share keys.

        Queries with a ``max_candidates`` cap never share: the lazy private
        iteration stops as soon as the cap is reached, whereas a shared
        domain must be fully materialised — for a capped query on a wide
        table that would trade a bounded walk for an unbounded one.
        """
        planned = []
        for query in queries:
            if default_caps is not None:
                query = default_caps(query)
            insight_class = self._registry.get(query.insight_class)
            domain = insight_class.candidate_domain()
            share_key = (
                (domain, insight_class.arity)
                if domain and query.max_candidates is None
                else None
            )
            planned.append(
                PlannedQuery(
                    query=query, insight_class=insight_class, share_key=share_key
                )
            )
        return ExecutionPlan(planned)

    # ------------------------------------------------------------------
    # Stage 2: enumerate
    # ------------------------------------------------------------------
    def enumerate(
        self,
        plan: ExecutionPlan,
        context: EvaluationContext,
        stats: PipelineStats | None = None,
    ) -> list[Enumeration]:
        """Admissible candidates per query, enumerating shared domains once."""
        stats = stats if stats is not None else PipelineStats()
        group_sizes = plan.share_groups()
        shared: dict[tuple[str, int], list[tuple[str, ...]]] = {}
        enumerations = []
        for planned in plan.queries:
            start = time.perf_counter()
            key = planned.share_key
            domain_size = None
            if key is not None and group_sizes.get(key, 0) >= 2:
                if key not in shared:
                    shared[key] = list(
                        planned.insight_class.candidates(context.table)
                    )
                    stats.enumerations += 1
                else:
                    stats.shared_queries += 1
                candidates = iter(shared[key])
                domain_size = len(shared[key])
            else:
                candidates = planned.insight_class.candidates(context.table)
                stats.enumerations += 1
            enumeration = self._filter_candidates(candidates, planned.query, context)
            record_candidates(
                enumeration.n_candidates,
                enumeration.n_candidates - len(enumeration.admissible),
            )
            if (
                domain_size is not None
                and not enumeration.truncated
                and len(enumeration.admissible) == domain_size
            ):
                # Constraints pruned nothing: the admissible list is the
                # whole shared domain, so scored batches are shareable too.
                enumeration.score_share_key = key
            enumeration.elapsed_seconds = time.perf_counter() - start
            enumerations.append(enumeration)
        return enumerations

    # ------------------------------------------------------------------
    # Stage 3: score
    # ------------------------------------------------------------------
    def score(
        self,
        plan: ExecutionPlan,
        enumerations: Sequence[Enumeration],
        context: EvaluationContext,
        stats: PipelineStats | None = None,
    ) -> list[ScoredBatch]:
        """Metric values for every admissible candidate of every query.

        Queries whose enumeration carries a ``score_share_key`` (same
        shared domain, nothing pruned) additionally share scoring per
        ``(class, mode, domain)`` group — the first query pays, the rest
        reuse its scored batch.  Scoring of element-wise classes is
        sharded across the executor's workers in deterministic chunks.
        """
        batches = []
        shared_scores: dict[tuple[str, str, tuple[str, int]], list[ScoredCandidate]] = {}
        for planned, enumeration in zip(plan.queries, enumerations):
            start = time.perf_counter()
            query_context = self._apply_mode(planned.query, context)
            share_key = (
                (
                    planned.insight_class.name,
                    query_context.mode,
                    enumeration.score_share_key,
                )
                if enumeration.score_share_key is not None
                else None
            )
            if share_key is not None and share_key in shared_scores:
                scored = shared_scores[share_key]
                if stats is not None:
                    stats.shared_score_queries += 1
            else:
                scored = self._score_one(
                    planned.insight_class,
                    enumeration.admissible,
                    query_context,
                    stats,
                )
                if share_key is not None:
                    shared_scores[share_key] = scored
            if stats is not None:
                stats.n_scored += len(scored)
            batches.append(
                ScoredBatch(
                    candidates=scored,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        return batches

    def _score_one(
        self,
        insight_class: InsightClass,
        admissible: list[tuple[str, ...]],
        query_context: EvaluationContext,
        stats: PipelineStats | None,
    ) -> list[ScoredCandidate]:
        """Score one query's admissible candidates, sharding when worthwhile.

        Only element-wise classes shard: a batched ``score_all`` override
        computes shared intermediates (one correlation matrix beats four
        chunked ones), so it runs as a single batch.  Chunk boundaries are
        a pure function of the candidate count, and ``score_all`` is
        order-preserving and element-independent, so concatenating the
        chunk results is bit-identical to one serial pass.
        """
        if not admissible:
            return []
        if stats is not None:
            stats.score_evaluations += len(admissible)
        if (
            self._executor.max_workers > 1
            and insight_class.scores_elementwise()
        ):
            chunks = shard(
                admissible,
                self._executor.max_workers,
                self._executor.config.min_chunk_size,
            )
            if len(chunks) > 1:
                if stats is not None:
                    stats.score_shards += len(chunks)
                parts = self._executor.map(
                    lambda chunk: insight_class.score_all(chunk, query_context),
                    chunks,
                )
                return [scored for part in parts for scored in part]
        return insight_class.score_all(admissible, query_context)

    # ------------------------------------------------------------------
    # Stage 4: rank
    # ------------------------------------------------------------------
    def rank(
        self,
        plan: ExecutionPlan,
        enumerations: Sequence[Enumeration],
        batches: Sequence[ScoredBatch],
        context: EvaluationContext,
    ) -> list[RankingResult]:
        """Metric-range filter, deterministic sort, top-k, packaging.

        Each result's ``details["elapsed_seconds"]`` is the measured time
        this query spent across the enumerate, score and rank stages.
        """
        results = []
        for planned, enumeration, batch in zip(plan.queries, enumerations, batches):
            start = time.perf_counter()
            query = planned.query
            scored = batch.candidates
            admitted = [c for c in scored if query.admits_score(c.score)]
            ranked = self._sort(admitted)[: query.top_k]
            insights = [planned.insight_class.to_insight(c) for c in ranked]
            rank_seconds = time.perf_counter() - start
            results.append(
                RankingResult(
                    query=query,
                    insights=insights,
                    n_candidates=enumeration.n_candidates,
                    n_scored=len(scored),
                    n_admitted=len(admitted),
                    truncated=enumeration.truncated,
                    details={
                        "mode": self._apply_mode(query, context).mode,
                        "elapsed_seconds": (
                            enumeration.elapsed_seconds
                            + batch.elapsed_seconds
                            + rank_seconds
                        ),
                    },
                )
            )
        return results

    # ------------------------------------------------------------------
    # All stages in one call
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[InsightQuery],
        context: EvaluationContext,
        default_caps: Callable[[InsightQuery], InsightQuery] | None = None,
        stats: PipelineStats | None = None,
    ) -> list[RankingResult]:
        """Run plan → enumerate → score → rank and return one result per query."""
        stats = stats if stats is not None else PipelineStats()
        start = time.perf_counter()
        with obs_span("pipeline.execute") as execute_span:
            with obs_span("pipeline.plan"):
                plan = self.plan(queries, default_caps=default_caps)
            with obs_span("pipeline.enumerate") as enumerate_span:
                enumerations = self.enumerate(plan, context, stats=stats)
                enumerate_span.set_attribute("enumerations", stats.enumerations)
            with obs_span("pipeline.score") as score_span:
                batches = self.score(plan, enumerations, context, stats=stats)
                score_span.set_attribute("score_shards", stats.score_shards)
                score_span.set_attribute(
                    "score_evaluations", stats.score_evaluations
                )
            with obs_span("pipeline.rank"):
                results = self.rank(plan, enumerations, batches, context)
            stats.n_queries += len(queries)
            stats.elapsed_seconds += time.perf_counter() - start
            execute_span.set_attribute("n_queries", stats.n_queries)
            execute_span.set_attribute("n_scored", stats.n_scored)
            execute_span.set_attribute("shared_queries", stats.shared_queries)
            execute_span.set_attribute(
                "shared_score_queries", stats.shared_score_queries
            )
        return results

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_mode(query: InsightQuery, context: EvaluationContext) -> EvaluationContext:
        if query.mode == context.mode:
            return context
        return EvaluationContext(table=context.table, store=context.store, mode=query.mode)

    @staticmethod
    def _sort(candidates: list[ScoredCandidate]) -> list[ScoredCandidate]:
        return sorted(candidates, key=lambda c: (-c.score, c.attributes))

    @staticmethod
    def _filter_candidates(
        candidates, query: InsightQuery, context: EvaluationContext
    ) -> Enumeration:
        """Apply fixed/excluded/tag constraints, stopping at ``max_candidates``."""
        admissible: list[tuple[str, ...]] = []
        truncated = False
        n_candidates = 0
        attribute_tags = (
            {field.name: field.tags for field in context.table.schema}
            if query.required_tags
            else {}
        )
        for attributes in candidates:
            n_candidates += 1
            if not query.admits_attributes(attributes):
                continue
            if not query.admits_tags(attribute_tags, attributes):
                continue
            admissible.append(attributes)
            if (
                query.max_candidates is not None
                and len(admissible) >= query.max_candidates
            ):
                truncated = True
                break
        return Enumeration(
            admissible=admissible, truncated=truncated, n_candidates=n_candidates
        )
