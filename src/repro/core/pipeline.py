"""The staged query execution pipeline: plan → enumerate → score → rank.

Historically :meth:`RankingEngine.rank` and :meth:`Foresight.carousels`
each interleaved candidate enumeration, constraint filtering, scoring and
ranking, so a multi-class request re-enumerated the candidate tuples once
per class.  This module extracts those steps into four explicit stages
executed by :class:`QueryPipeline`:

1. **plan** — resolve each :class:`~repro.core.query.InsightQuery` against
   the registry, apply default candidate caps, and compute a *share key*
   from :meth:`~repro.core.insight.InsightClass.candidate_domain` so that
   classes enumerating the same domain can pool their enumeration;
2. **enumerate** — produce the admissible candidate tuples per query.  A
   domain shared by two or more planned queries is materialised **once**
   and re-filtered per query; unshared queries — and queries carrying a
   ``max_candidates`` cap, which must keep the lazy early-stop that avoids
   materialising a large domain to serve a few tuples — iterate privately;
3. **score** — evaluate the insight metric over the admissible candidates
   (batched / sketch-backed where the class supports it);
4. **rank** — apply the metric-range filter, sort (score descending, ties
   broken by attribute names for determinism) and take the top-k.

:class:`PipelineStats` counts raw enumerations and shared queries; the
serving layer (:mod:`repro.service.workspace`) surfaces those counters as
response provenance, and the pipeline tests use them to prove that a
multi-class request over same-arity classes enumerates only once.

The implementation lives in :mod:`repro.core` (it is execution-engine
machinery); :mod:`repro.service.pipeline` re-exports it as part of the
public serving namespace, keeping the import graph strictly
core ← service.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    ScoredCandidate,
)
from repro.core.query import InsightQuery
from repro.core.registry import InsightRegistry


@dataclass
class RankingResult:
    """Ranked insights plus bookkeeping about the search."""

    query: InsightQuery
    insights: list[Insight]
    n_candidates: int = 0
    n_scored: int = 0
    n_admitted: int = 0
    truncated: bool = False
    details: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)

    def top(self) -> Insight | None:
        return self.insights[0] if self.insights else None

    def attribute_sets(self) -> list[tuple[str, ...]]:
        return [insight.attributes for insight in self.insights]


@dataclass
class PipelineStats:
    """Counters accumulated over one pipeline execution."""

    #: How many times a class's ``candidates()`` iterator was actually run.
    enumerations: int = 0
    #: Queries answered from an enumeration another query already paid for.
    shared_queries: int = 0
    #: Total queries executed.
    n_queries: int = 0
    #: Total candidate tuples scored across all queries.
    n_scored: int = 0
    #: Wall-clock seconds for the whole execution.
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "enumerations": self.enumerations,
            "shared_queries": self.shared_queries,
            "n_queries": self.n_queries,
            "n_scored": self.n_scored,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class PlannedQuery:
    """Stage-1 output: a query bound to its insight class and share key."""

    query: InsightQuery
    insight_class: InsightClass
    #: (candidate_domain, arity) when the class opts into shared
    #: enumeration, else None.
    share_key: tuple[str, int] | None


@dataclass
class ExecutionPlan:
    """The full plan for one (possibly multi-class) request."""

    queries: list[PlannedQuery]

    def share_groups(self) -> dict[tuple[str, int], int]:
        """How many planned queries fall in each shareable domain."""
        groups: dict[tuple[str, int], int] = {}
        for planned in self.queries:
            if planned.share_key is not None:
                groups[planned.share_key] = groups.get(planned.share_key, 0) + 1
        return groups


@dataclass
class Enumeration:
    """Stage-2 output for one query."""

    admissible: list[tuple[str, ...]]
    truncated: bool = False
    n_candidates: int = 0
    #: Wall-clock spent enumerating/filtering for this query.  The one-off
    #: materialisation of a shared domain is charged to the first query of
    #: its group (whose ``candidates()`` call actually paid for it).
    elapsed_seconds: float = 0.0


@dataclass
class ScoredBatch:
    """Stage-3 output for one query."""

    candidates: list[ScoredCandidate]
    elapsed_seconds: float = 0.0


class QueryPipeline:
    """Executes insight queries in explicit stages with shared enumeration."""

    def __init__(self, registry: InsightRegistry):
        self._registry = registry

    @property
    def registry(self) -> InsightRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # Stage 1: plan
    # ------------------------------------------------------------------
    def plan(
        self,
        queries: Sequence[InsightQuery],
        default_caps: Callable[[InsightQuery], InsightQuery] | None = None,
    ) -> ExecutionPlan:
        """Resolve classes, apply caps and compute enumeration share keys.

        Queries with a ``max_candidates`` cap never share: the lazy private
        iteration stops as soon as the cap is reached, whereas a shared
        domain must be fully materialised — for a capped query on a wide
        table that would trade a bounded walk for an unbounded one.
        """
        planned = []
        for query in queries:
            if default_caps is not None:
                query = default_caps(query)
            insight_class = self._registry.get(query.insight_class)
            domain = insight_class.candidate_domain()
            share_key = (
                (domain, insight_class.arity)
                if domain and query.max_candidates is None
                else None
            )
            planned.append(
                PlannedQuery(
                    query=query, insight_class=insight_class, share_key=share_key
                )
            )
        return ExecutionPlan(planned)

    # ------------------------------------------------------------------
    # Stage 2: enumerate
    # ------------------------------------------------------------------
    def enumerate(
        self,
        plan: ExecutionPlan,
        context: EvaluationContext,
        stats: PipelineStats | None = None,
    ) -> list[Enumeration]:
        """Admissible candidates per query, enumerating shared domains once."""
        stats = stats if stats is not None else PipelineStats()
        group_sizes = plan.share_groups()
        shared: dict[tuple[str, int], list[tuple[str, ...]]] = {}
        enumerations = []
        for planned in plan.queries:
            start = time.perf_counter()
            key = planned.share_key
            if key is not None and group_sizes.get(key, 0) >= 2:
                if key not in shared:
                    shared[key] = list(
                        planned.insight_class.candidates(context.table)
                    )
                    stats.enumerations += 1
                else:
                    stats.shared_queries += 1
                candidates = iter(shared[key])
            else:
                candidates = planned.insight_class.candidates(context.table)
                stats.enumerations += 1
            enumeration = self._filter_candidates(candidates, planned.query, context)
            enumeration.elapsed_seconds = time.perf_counter() - start
            enumerations.append(enumeration)
        return enumerations

    # ------------------------------------------------------------------
    # Stage 3: score
    # ------------------------------------------------------------------
    def score(
        self,
        plan: ExecutionPlan,
        enumerations: Sequence[Enumeration],
        context: EvaluationContext,
        stats: PipelineStats | None = None,
    ) -> list[ScoredBatch]:
        """Metric values for every admissible candidate of every query."""
        batches = []
        for planned, enumeration in zip(plan.queries, enumerations):
            start = time.perf_counter()
            query_context = self._apply_mode(planned.query, context)
            scored = (
                planned.insight_class.score_all(enumeration.admissible, query_context)
                if enumeration.admissible
                else []
            )
            if stats is not None:
                stats.n_scored += len(scored)
            batches.append(
                ScoredBatch(
                    candidates=scored,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        return batches

    # ------------------------------------------------------------------
    # Stage 4: rank
    # ------------------------------------------------------------------
    def rank(
        self,
        plan: ExecutionPlan,
        enumerations: Sequence[Enumeration],
        batches: Sequence[ScoredBatch],
        context: EvaluationContext,
    ) -> list[RankingResult]:
        """Metric-range filter, deterministic sort, top-k, packaging.

        Each result's ``details["elapsed_seconds"]`` is the measured time
        this query spent across the enumerate, score and rank stages.
        """
        results = []
        for planned, enumeration, batch in zip(plan.queries, enumerations, batches):
            start = time.perf_counter()
            query = planned.query
            scored = batch.candidates
            admitted = [c for c in scored if query.admits_score(c.score)]
            ranked = self._sort(admitted)[: query.top_k]
            insights = [planned.insight_class.to_insight(c) for c in ranked]
            rank_seconds = time.perf_counter() - start
            results.append(
                RankingResult(
                    query=query,
                    insights=insights,
                    n_candidates=enumeration.n_candidates,
                    n_scored=len(scored),
                    n_admitted=len(admitted),
                    truncated=enumeration.truncated,
                    details={
                        "mode": self._apply_mode(query, context).mode,
                        "elapsed_seconds": (
                            enumeration.elapsed_seconds
                            + batch.elapsed_seconds
                            + rank_seconds
                        ),
                    },
                )
            )
        return results

    # ------------------------------------------------------------------
    # All stages in one call
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[InsightQuery],
        context: EvaluationContext,
        default_caps: Callable[[InsightQuery], InsightQuery] | None = None,
        stats: PipelineStats | None = None,
    ) -> list[RankingResult]:
        """Run plan → enumerate → score → rank and return one result per query."""
        stats = stats if stats is not None else PipelineStats()
        start = time.perf_counter()
        plan = self.plan(queries, default_caps=default_caps)
        enumerations = self.enumerate(plan, context, stats=stats)
        batches = self.score(plan, enumerations, context, stats=stats)
        results = self.rank(plan, enumerations, batches, context)
        stats.n_queries += len(queries)
        stats.elapsed_seconds += time.perf_counter() - start
        return results

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_mode(query: InsightQuery, context: EvaluationContext) -> EvaluationContext:
        if query.mode == context.mode:
            return context
        return EvaluationContext(table=context.table, store=context.store, mode=query.mode)

    @staticmethod
    def _sort(candidates: list[ScoredCandidate]) -> list[ScoredCandidate]:
        return sorted(candidates, key=lambda c: (-c.score, c.attributes))

    @staticmethod
    def _filter_candidates(
        candidates, query: InsightQuery, context: EvaluationContext
    ) -> Enumeration:
        """Apply fixed/excluded/tag constraints, stopping at ``max_candidates``."""
        admissible: list[tuple[str, ...]] = []
        truncated = False
        n_candidates = 0
        attribute_tags = (
            {field.name: field.tags for field in context.table.schema}
            if query.required_tags
            else {}
        )
        for attributes in candidates:
            n_candidates += 1
            if not query.admits_attributes(attributes):
                continue
            if not query.admits_tags(attribute_tags, attributes):
                continue
            admissible.append(attributes)
            if (
                query.max_candidates is not None
                and len(admissible) >= query.max_candidates
            ):
                truncated = True
                break
        return Enumeration(
            admissible=admissible, truncated=truncated, n_candidates=n_candidates
        )
