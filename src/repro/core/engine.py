"""The Foresight engine: the library's public façade.

A :class:`Foresight` instance owns a table, its preprocessing products
(the sketch store), the registry of insight classes and the ranking /
neighborhood machinery.  Typical use::

    from repro import Foresight
    from repro.data.datasets import load_oecd

    engine = Foresight(load_oecd())
    for carousel in engine.carousels(top_k=3):
        print(carousel.insight_class, [str(i) for i in carousel.insights])

    result = engine.query("linear_relationship", fixed=("LifeSatisfaction",))
    spec = engine.visualize(result.top())
    overview = engine.overview("linear_relationship")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InsightError
from repro.data.table import DataTable
from repro.core.executor import Executor, ExecutorConfig, create_executor
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    MODE_APPROXIMATE,
    MODE_EXACT,
)
from repro.core.neighborhood import NeighborhoodConfig, NeighborhoodRecommender
from repro.core.query import InsightQuery, query as build_query
from repro.core.ranking import RankingEngine, RankingResult
from repro.core.pipeline import PipelineStats
from repro.core.registry import InsightRegistry, default_registry
from repro.sketch.store import SketchStore, SketchStoreConfig
from repro.viz.spec import VisualizationSpec


@dataclass
class Carousel:
    """One row of the Foresight UI: the top insights of one class (Figure 1)."""

    insight_class: str
    label: str
    insights: list[Insight]
    result: RankingResult
    elapsed_seconds: float = 0.0

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)


@dataclass
class EngineConfig:
    """Engine-level configuration."""

    mode: str = MODE_APPROXIMATE
    default_top_k: int = 5
    sketch: SketchStoreConfig = field(default_factory=SketchStoreConfig)
    neighborhood: NeighborhoodConfig = field(default_factory=NeighborhoodConfig)
    #: Execution-layer knobs: ``max_workers=1`` (the default) runs
    #: everything serially on the caller's thread; higher values
    #: parallelise preprocessing and the score stage without changing
    #: any output byte.
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: Cap on scored candidates for 3-attribute classes to stay interactive.
    max_candidates_triples: int = 5000


class Foresight:
    """Recommends visual insights for a table (the paper's system)."""

    def __init__(
        self,
        table: DataTable,
        registry: InsightRegistry | None = None,
        config: EngineConfig | None = None,
        preprocess: bool = True,
        store: SketchStore | None = None,
        executor: Executor | None = None,
    ):
        """Build an engine for ``table``.

        ``store`` injects an already-built sketch store (the live-ingest
        path merges delta sketches into a copy of the previous store and
        swaps in a new engine without re-preprocessing); ``executor``
        likewise shares an existing execution pool instead of creating
        one per engine.  Both default to being built from ``config``.
        """
        self._table = table
        self._registry = registry or default_registry()
        self._config = config or EngineConfig()
        self._executor = executor or create_executor(self._config.executor)
        self._store: SketchStore | None = store
        if (store is None and preprocess
                and self._config.mode == MODE_APPROXIMATE):
            self._store = SketchStore(
                table, config=self._config.sketch, executor=self._executor
            )
        self._ranking = RankingEngine(self._registry, executor=self._executor)
        self._neighborhood = NeighborhoodRecommender(
            self._ranking, config=self._config.neighborhood
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table(self) -> DataTable:
        return self._table

    @property
    def registry(self) -> InsightRegistry:
        return self._registry

    @property
    def store(self) -> SketchStore | None:
        """The sketch store built at preprocessing time (None in exact mode)."""
        return self._store

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def executor(self) -> Executor:
        """The execution layer shared by preprocessing and the pipeline."""
        return self._executor

    def insight_classes(self) -> list[dict[str, object]]:
        """Catalogue of the registered insight classes."""
        return self._registry.describe()

    def context(self, mode: str | None = None) -> EvaluationContext:
        """Build an evaluation context (exposed for power users and tests)."""
        return EvaluationContext(
            table=self._table,
            store=self._store,
            mode=mode or self._config.mode,
        )

    def register(self, insight_class: InsightClass, replace: bool = False) -> None:
        """Plug in a new insight class (the paper's extensibility hook)."""
        self._registry.register(insight_class, replace=replace)

    # ------------------------------------------------------------------
    # Recommendation entry points
    # ------------------------------------------------------------------
    def query(self, insight_class: str | InsightQuery, **kwargs) -> RankingResult:
        """Run an insight query.

        Accepts either a pre-built :class:`InsightQuery` or an insight class
        name plus keyword arguments forwarded to
        :func:`repro.core.query.query` (``top_k``, ``fixed``, ``excluded``,
        ``metric_min``, ``metric_max``, ``mode``, ``max_candidates``).
        """
        if isinstance(insight_class, InsightQuery):
            if kwargs:
                raise InsightError(
                    "pass either an InsightQuery or keyword arguments, not both"
                )
            insight_query = insight_class
        else:
            kwargs.setdefault("top_k", self._config.default_top_k)
            kwargs.setdefault("mode", self._config.mode)
            insight_query = build_query(insight_class, **kwargs)
            insight_query = self._apply_default_caps(insight_query)
        return self._ranking.rank(insight_query, self.context(insight_query.mode))

    def rank_many(
        self,
        queries: Sequence[InsightQuery],
        stats: PipelineStats | None = None,
        apply_caps: bool = True,
    ) -> list[RankingResult]:
        """Execute several queries on the staged pipeline, in query order.

        Classes that enumerate the same candidate domain (see
        :meth:`~repro.core.insight.InsightClass.candidate_domain`) share a
        single enumeration pass, so a multi-class request does not pay the
        candidate walk once per class.  ``stats`` (when given) accumulates
        the pipeline's enumeration/sharing counters.
        """
        return self._ranking.pipeline.execute(
            queries,
            self.context(),
            default_caps=self._apply_default_caps if apply_caps else None,
            stats=stats,
        )

    def carousels(
        self,
        top_k: int | None = None,
        insight_classes: Sequence[str] | None = None,
        mode: str | None = None,
    ) -> list[Carousel]:
        """The Figure 1 view: top-k insights for every (requested) class."""
        top_k = top_k or self._config.default_top_k
        names = list(insight_classes) if insight_classes else self._registry.names()
        queries = [
            InsightQuery(
                insight_class=name,
                top_k=top_k,
                mode=mode or self._config.mode,
            )
            for name in names
        ]
        results = self.rank_many(queries)
        return [
            Carousel(
                insight_class=name,
                label=self._registry.get(name).label or name,
                insights=result.insights,
                result=result,
                elapsed_seconds=float(result.details.get("elapsed_seconds", 0.0)),
            )
            for name, result in zip(names, results)
        ]

    def recommend_near(
        self,
        focus: Insight | Iterable[Insight],
        insight_class: str,
        top_k: int | None = None,
        mode: str | None = None,
        base_query: InsightQuery | None = None,
    ) -> RankingResult:
        """Insights of ``insight_class`` near the focused insight(s) (section 4.1)."""
        focus_list = [focus] if isinstance(focus, Insight) else list(focus)
        return self._neighborhood.nearby(
            focus_list,
            insight_class,
            self.context(mode),
            top_k=top_k or self._config.default_top_k,
            base_query=base_query,
        )

    # ------------------------------------------------------------------
    # Visualization
    # ------------------------------------------------------------------
    def visualize(self, insight: Insight, mode: str | None = None) -> VisualizationSpec:
        """Build the preferred visualization spec for a ranked insight."""
        insight_class = self._registry.get(insight.insight_class)
        return insight_class.visualize(insight, self.context(mode))

    def overview(self, insight_class: str, mode: str | None = None) -> VisualizationSpec | None:
        """The class's overview ("global") visualization, e.g. Figure 2."""
        return self._registry.get(insight_class).overview(self.context(mode))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _apply_default_caps(self, insight_query: InsightQuery) -> InsightQuery:
        """Cap candidate enumeration for expensive (3-attribute) classes."""
        if insight_query.max_candidates is not None:
            return insight_query
        insight_class = self._registry.get(insight_query.insight_class)
        if insight_class.arity >= 3:
            from dataclasses import replace

            return replace(
                insight_query, max_candidates=self._config.max_candidates_triples
            )
        return insight_query

    def exact(self) -> "Foresight":
        """A view of this engine that evaluates everything exactly."""
        clone = Foresight.__new__(Foresight)
        clone._table = self._table
        clone._registry = self._registry
        clone._config = EngineConfig(
            mode=MODE_EXACT,
            default_top_k=self._config.default_top_k,
            sketch=self._config.sketch,
            neighborhood=self._config.neighborhood,
            executor=self._config.executor,
            max_candidates_triples=self._config.max_candidates_triples,
        )
        clone._executor = self._executor
        clone._store = self._store
        clone._ranking = self._ranking
        clone._neighborhood = self._neighborhood
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Foresight(table={self._table.name!r}, shape={self._table.shape}, "
            f"classes={len(self._registry)}, mode={self._config.mode!r})"
        )
