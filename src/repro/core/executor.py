"""The pluggable execution layer: serial and thread-pool executors.

Every stage of the system that fans out over independent work items —
the query pipeline's score stage, per-column sketch preprocessing, and
the workspace's request batching — runs through an :class:`Executor`
rather than a bare loop or an ad-hoc thread pool.  Two implementations
exist:

* :class:`SerialExecutor` runs everything inline on the calling thread.
  It is the default (``max_workers=1``) and keeps the historical
  single-threaded execution path (one deliberate delta when this layer
  was introduced: quantile-sketch sampling draws from per-column RNG
  streams rather than one sequential stream — see
  :meth:`repro.sketch.store.SketchStore._build_numeric_column`);
* :class:`ParallelExecutor` fans work out over a shared
  :class:`concurrent.futures.ThreadPoolExecutor`.  Threads (not
  processes) are the right grain here: the hot loops are numpy/scipy
  calls that release the GIL, and every work item reads shared,
  immutable table/sketch state that would be expensive to pickle.

A third backend, :class:`ProcessExecutor`
(``ExecutorConfig(backend="process")``), exists for the workloads where
the GIL *does* bind — pure-Python scoring functions, CPU-bound
replication replay in tests.  It keeps the same order-preserving,
first-exception contract, and degrades gracefully: work that cannot be
pickled (closures over engines, lambdas) runs inline on the calling
thread instead of failing, with the fallback counted on
``ProcessExecutor.pickle_fallbacks``.

Determinism is a hard requirement, not an aspiration: ``Executor.map``
always returns results **in submission order**, and callers only submit
work whose items are evaluated independently of each other (see
:meth:`repro.core.insight.InsightClass.scores_elementwise`).  Under that
contract a parallel run is byte-identical to a serial run — the
concurrency tests assert exactly this across every bundled dataset.

Configuration rides on :class:`ExecutorConfig`, which
:class:`repro.core.engine.EngineConfig` embeds.  The default worker
count honors the ``REPRO_MAX_WORKERS`` environment variable so CI can
run the whole test suite under parallel execution without code changes.
"""

from __future__ import annotations

import abc
import os
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.tracer import carry_current

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted for the default worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_max_workers() -> int:
    """The default worker count: ``REPRO_MAX_WORKERS`` if set, else 1.

    Defaulting to 1 (serial) keeps library behavior identical to the
    pre-executor code path unless a caller — or CI, via the environment —
    explicitly opts into parallelism.
    """
    raw = os.environ.get(MAX_WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


@dataclass(frozen=True)
class ExecutorConfig:
    """Tuning knobs for the execution layer.

    Parameters
    ----------
    max_workers:
        Worker threads for fan-out stages.  1 selects the serial
        executor (exact historical behavior); defaults to the
        ``REPRO_MAX_WORKERS`` environment variable when set.
    min_chunk_size:
        Smallest number of candidates worth handing to a worker in the
        sharded score stage.  Prevents over-sharding cheap workloads
        where task overhead would dominate.  The default is small
        because sharded candidates are scored one metric evaluation at
        a time — tens of microseconds each at minimum, against a
        sub-microsecond per-chunk dispatch cost.
    thread_name_prefix:
        Prefix for worker thread names (visible in profilers and
        stack dumps).
    backend:
        ``"thread"`` (the default) or ``"process"``.  Threads suit the
        numpy-heavy, GIL-releasing workloads; processes suit pure-Python
        CPU-bound work whose functions and items pickle cleanly.  With
        ``max_workers == 1`` either backend resolves to the serial
        executor.
    """

    max_workers: int = field(default_factory=default_max_workers)
    min_chunk_size: int = 4
    thread_name_prefix: str = "repro-exec"
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.min_chunk_size < 1:
            raise ValueError(
                f"min_chunk_size must be >= 1, got {self.min_chunk_size}"
            )
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f'backend must be "thread" or "process", got {self.backend!r}'
            )


class Executor(abc.ABC):
    """Order-preserving map over independent work items."""

    #: Degree of parallelism callers may shard for.
    max_workers: int = 1
    #: The configuration this executor was built from.
    config: ExecutorConfig

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in item order.

        The first exception raised by ``fn`` propagates to the caller.
        ``fn`` must not depend on evaluation order or on sharing state
        with other items — that contract is what makes serial and
        parallel execution indistinguishable.
        """

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Schedule one call and return its :class:`~concurrent.futures.Future`.

        The fire-and-forget complement to :meth:`map`, used for work
        that must not block the caller — the workspace's background
        sketch rebuilds ride on it.  The base implementation (and
        :class:`SerialExecutor`) runs the call inline, so the future is
        already resolved on return; :class:`ParallelExecutor` hands the
        call to its pool.
        """
        future: Future[R] = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - captured in the future
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release worker resources (idempotent; a closed serial executor
        keeps working, a closed parallel executor refuses new work)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every work item inline on the calling thread."""

    def __init__(self, config: ExecutorConfig | None = None):
        self.config = config or ExecutorConfig(max_workers=1)
        self.max_workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fans work out over a lazily created, reusable thread pool.

    The pool is created on first use (so merely configuring
    ``max_workers > 1`` costs nothing until work actually fans out) and
    shared across calls, including calls from multiple threads — the
    serving layer's ``handle_many`` hits one engine-level executor from
    many request threads concurrently, which
    :class:`~concurrent.futures.ThreadPoolExecutor` supports natively.
    """

    def __init__(self, config: ExecutorConfig | None = None):
        self.config = config or ExecutorConfig(max_workers=2)
        if self.config.max_workers < 2:
            raise ValueError(
                "ParallelExecutor needs max_workers >= 2; "
                "use SerialExecutor (or create_executor) for serial runs"
            )
        self.max_workers = self.config.max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self.config.thread_name_prefix,
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            # Not worth a thread hop; also keeps single-item maps usable
            # even before the pool exists.  Still honor close().
            if self._closed:
                raise RuntimeError("executor is closed")
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        # ThreadPoolExecutor.map preserves submission order and re-raises
        # the first worker exception on iteration.  carry_current hands
        # the submitting thread's ambient trace span to the workers, so
        # spans opened inside them re-parent to the request that sharded
        # this work (a no-op wrapper when no span is active).  submit()
        # is deliberately not wrapped: background work (rebuilds) roots
        # its own traces.
        return list(pool.map(carry_current(fn), items))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        return self._ensure_pool().submit(fn, *args)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"ParallelExecutor(max_workers={self.max_workers}, {state})"


class ProcessExecutor(Executor):
    """Fans picklable work out over a lazily created process pool.

    The contract is the same as every executor's — results in submission
    order, first worker exception propagates — but workers are separate
    interpreters, so ``fn`` and the items must pickle.  Much of this
    codebase's hot state deliberately does *not* pickle (engines close
    over tables, sketches hold locks); rather than make those callers
    crash, unpicklable work runs inline on the calling thread and the
    miss is counted on :attr:`pickle_fallbacks` — an observable
    degradation, not a silent one.  The pickle probe covers ``fn`` and
    the items, which in practice covers the results too (this codebase's
    work functions return data of the same shape they consume).
    """

    def __init__(self, config: ExecutorConfig | None = None):
        self.config = config or ExecutorConfig(max_workers=2,
                                               backend="process")
        if self.config.max_workers < 2:
            raise ValueError(
                "ProcessExecutor needs max_workers >= 2; "
                "use SerialExecutor (or create_executor) for serial runs"
            )
        self.max_workers = self.config.max_workers
        #: Times map()/submit() ran inline because the work didn't pickle.
        self.pickle_fallbacks = 0
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            return self._pool

    def _picklable(self, *objects) -> bool:
        try:
            for obj in objects:
                pickle.dumps(obj)
        except Exception:  # noqa: BLE001 - any pickle failure means inline
            with self._lock:
                self.pickle_fallbacks += 1
            return False
        return True

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if self._closed:
            raise RuntimeError("executor is closed")
        if len(items) <= 1:
            # Same single-item shortcut as the thread pool: a process
            # hop costs far more than it could save.
            return [fn(item) for item in items]
        if not self._picklable(fn, items):
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        if not self._closed and self._picklable(fn, args):
            return self._ensure_pool().submit(fn, *args)
        return super().submit(fn, *args)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (f"ProcessExecutor(max_workers={self.max_workers}, {state}, "
                f"pickle_fallbacks={self.pickle_fallbacks})")


def create_executor(config: ExecutorConfig | None = None) -> Executor:
    """Build the executor selected by ``config`` (serial for 1 worker)."""
    config = config or ExecutorConfig()
    if config.max_workers <= 1:
        return SerialExecutor(config)
    if config.backend == "process":
        return ProcessExecutor(config)
    return ParallelExecutor(config)


def shard(
    items: Sequence[T], n_shards: int, min_chunk_size: int = 1
) -> list[Sequence[T]]:
    """Split ``items`` into at most ``n_shards`` contiguous chunks.

    The split is a pure function of ``(len(items), n_shards,
    min_chunk_size)`` — never of timing or worker identity — and
    concatenating the chunks reproduces ``items`` exactly.  Chunk sizes
    differ by at most one, and no chunk is smaller than
    ``min_chunk_size`` unless the input itself is.
    """
    n_items = len(items)
    if n_items == 0:
        return []
    if min_chunk_size > 1:
        n_shards = min(n_shards, max(1, n_items // min_chunk_size))
    n_shards = max(1, min(n_shards, n_items))
    if n_shards == 1:
        return [items]
    base, extra = divmod(n_items, n_shards)
    chunks: list[Sequence[T]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


__all__ = [
    "Executor",
    "ExecutorConfig",
    "MAX_WORKERS_ENV",
    "ParallelExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "create_executor",
    "default_max_workers",
    "shard",
]
