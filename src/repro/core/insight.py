"""Insight, InsightClass and the evaluation context.

The paper (section 2) defines:

* an **insight** — a strong manifestation of a distributional property of
  the data over a tuple of attributes (here :class:`Insight`: the attribute
  tuple, the metric value, and enough detail to summarise and visualise it);
* an **insight metric** — a function that ranks attribute tuples by the
  strength of the property;
* an **insight class** — all attribute tuples whose joint distributions are
  compatible with the insight's metric and visualization (here
  :class:`InsightClass`: candidate enumeration + metric + visualization +
  optional overview visualization).

Foresight is extensible: "a data scientist can plug in new insight classes
along with their corresponding ranking measures and visualizations", which
is exactly what subclassing :class:`InsightClass` and registering it in
:class:`repro.core.registry.InsightRegistry` does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.data.table import DataTable
from repro.sketch.store import SketchStore
from repro.viz.spec import VisualizationSpec

#: Evaluation modes.  ``approximate`` uses sketches where available;
#: ``exact`` always recomputes from the raw columns.
MODE_EXACT = "exact"
MODE_APPROXIMATE = "approximate"


@dataclass
class EvaluationContext:
    """Everything an insight class needs to score and visualise candidates.

    Parameters
    ----------
    table:
        The raw data table.
    store:
        The sketch store produced by preprocessing, or None when the caller
        wants purely exact evaluation without preprocessing.
    mode:
        ``"approximate"`` (use sketches when available) or ``"exact"``.
    """

    table: DataTable
    store: SketchStore | None = None
    mode: str = MODE_APPROXIMATE

    @property
    def use_sketches(self) -> bool:
        return self.mode == MODE_APPROXIMATE and self.store is not None

    def exact(self) -> "EvaluationContext":
        """A copy of this context forced to exact evaluation."""
        return EvaluationContext(table=self.table, store=self.store, mode=MODE_EXACT)


@dataclass(frozen=True)
class Insight:
    """A scored attribute tuple: one recommendation shown in a carousel."""

    insight_class: str
    attributes: tuple[str, ...]
    score: float
    metric_name: str
    summary: str = ""
    details: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        """Identity of the insight (class + attribute tuple), ignoring score."""
        return (self.insight_class, self.attributes)

    def involves(self, attribute: str) -> bool:
        """True if the insight mentions the given attribute."""
        return attribute in self.attributes

    def shares_attributes(self, other: "Insight") -> int:
        """Number of attributes shared with another insight."""
        return len(set(self.attributes) & set(other.attributes))

    def as_dict(self) -> dict[str, Any]:
        return {
            "insight_class": self.insight_class,
            "attributes": list(self.attributes),
            "score": self.score,
            "metric": self.metric_name,
            "summary": self.summary,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Insight":
        """Exact inverse of :meth:`as_dict` (used by sessions and the DTO layer)."""
        return cls(
            insight_class=str(payload["insight_class"]),
            attributes=tuple(payload["attributes"]),
            score=float(payload["score"]),
            metric_name=str(payload.get("metric", "")),
            summary=str(payload.get("summary", "")),
            details=dict(payload.get("details", {})),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(self.attributes)
        return f"[{self.insight_class}] ({attrs}) {self.metric_name}={self.score:.3f}"


@dataclass(frozen=True)
class ScoredCandidate:
    """Internal scoring result before packaging into an :class:`Insight`."""

    attributes: tuple[str, ...]
    score: float
    details: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)


class InsightClass(abc.ABC):
    """Base class for all insight classes.

    Subclasses define the paper's triple (candidate enumeration, ranking
    metric, visualization) and may optionally provide an overview
    visualization of the whole class (like the correlation heat map of
    Figure 2).
    """

    #: Unique registry name, e.g. ``"linear_relationship"``.
    name: str = ""
    #: Human-readable label used in carousel headers.
    label: str = ""
    #: One-line description of what the insight captures.
    description: str = ""
    #: Name of the ranking metric (e.g. ``"abs_pearson"``).
    metric_name: str = ""
    #: Number of attributes in a candidate tuple (1, 2 or 3).
    arity: int = 1
    #: Name of the preferred visualization method (informational).
    visualization: str = ""
    #: Whether an overview visualization is available.
    has_overview: bool = False

    # -- candidate enumeration -------------------------------------------------
    @abc.abstractmethod
    def candidates(self, table: DataTable) -> Iterator[tuple[str, ...]]:
        """Yield every attribute tuple belonging to this insight class."""

    def candidate_count(self, table: DataTable) -> int:
        """Number of candidate tuples (default: exhausts the iterator)."""
        return sum(1 for _ in self.candidates(table))

    def candidate_domain(self) -> str | None:
        """Key identifying the candidate enumeration domain, or None.

        Two classes that return the same non-None key (and have equal
        ``arity``) promise to yield *identical* candidate sequences for any
        table.  The staged query pipeline
        (:mod:`repro.service.pipeline`) uses this to enumerate a shared
        domain once per multi-class request instead of once per class.
        Returning None (the default) opts the class out of sharing.
        """
        return None

    # -- scoring ------------------------------------------------------------------
    @abc.abstractmethod
    def score(self, attributes: tuple[str, ...], context: EvaluationContext) -> ScoredCandidate | None:
        """Score one candidate tuple; None when the metric is undefined for it."""

    def score_all(
        self, candidate_tuples: Sequence[tuple[str, ...]], context: EvaluationContext
    ) -> list[ScoredCandidate]:
        """Score many candidates (subclasses may override with batched code).

        Contract: results preserve candidate order, and each candidate's
        value must not depend on which *other* candidates share the batch
        (``score_all(a + b) == score_all(a) + score_all(b)``, bit for
        bit).  The default implementation satisfies this trivially; a
        batched override that computes shared intermediates (e.g. a
        correlation matrix) must derive each pair's value from that
        pair's columns only.
        """
        results = []
        for attributes in candidate_tuples:
            scored = self.score(attributes, context)
            if scored is not None:
                results.append(scored)
        return results

    def scores_elementwise(self) -> bool:
        """Whether scoring is a plain per-candidate loop (no batched override).

        The query pipeline shards the score stage of such classes across
        executor workers; classes overriding :meth:`score_all` vectorise
        internally (one matrix product beats four chunked ones), so they
        are scored in a single batch instead.
        """
        return type(self).score_all is InsightClass.score_all

    # -- presentation ----------------------------------------------------------------
    @abc.abstractmethod
    def visualize(self, insight: Insight, context: EvaluationContext) -> VisualizationSpec:
        """Build the preferred visualization for a ranked insight."""

    def summarize(self, candidate: ScoredCandidate) -> str:
        """One-line, human-readable description of the insight."""
        attrs = ", ".join(candidate.attributes)
        return f"{self.label or self.name}: {attrs} ({self.metric_name}={candidate.score:.3f})"

    def overview(self, context: EvaluationContext) -> VisualizationSpec | None:
        """Optional overview ("global") visualization of the whole class."""
        return None

    # -- packaging ---------------------------------------------------------------------
    def to_insight(self, candidate: ScoredCandidate) -> Insight:
        """Package a scored candidate as a public :class:`Insight`."""
        return Insight(
            insight_class=self.name,
            attributes=candidate.attributes,
            score=candidate.score,
            metric_name=self.metric_name,
            summary=self.summarize(candidate),
            details=dict(candidate.details),
        )

    def describe(self) -> dict[str, Any]:
        """Metadata describing the class (used by the engine's catalogue)."""
        return {
            "name": self.name,
            "label": self.label,
            "description": self.description,
            "metric": self.metric_name,
            "arity": self.arity,
            "visualization": self.visualization,
            "has_overview": self.has_overview,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InsightClass {self.name!r} metric={self.metric_name!r}>"


def pairs(names: Sequence[str]) -> Iterator[tuple[str, str]]:
    """All unordered pairs (i < j) of attribute names, in a stable order."""
    names = list(names)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            yield (names[i], names[j])


def singletons(names: Iterable[str]) -> Iterator[tuple[str]]:
    """All single-attribute tuples."""
    for name in names:
        yield (name,)
