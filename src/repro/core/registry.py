"""Registry of insight classes.

Foresight "is designed to be an extensible system where a data scientist can
plug in new insight classes along with their corresponding ranking measures
and visualizations" (paper section 2.2).  The registry is the plug-in point:
library users register :class:`~repro.core.insight.InsightClass` instances
under unique names, and :func:`default_registry` assembles the twelve
classes shipped with this reproduction (the six described in detail in the
paper, the four named as "additional insights", and two completing the
"12 insight classes" visible in Figure 1's caption).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InsightError, UnknownInsightClassError
from repro.core.insight import InsightClass


class InsightRegistry:
    """A named collection of insight classes."""

    def __init__(self) -> None:
        self._classes: dict[str, InsightClass] = {}

    def register(self, insight_class: InsightClass, replace: bool = False) -> None:
        """Register an insight class under its ``name``."""
        name = insight_class.name
        if not name:
            raise InsightError("insight class must define a non-empty name")
        if name in self._classes and not replace:
            raise InsightError(
                f"insight class {name!r} is already registered; pass replace=True "
                "to override it"
            )
        self._classes[name] = insight_class

    def unregister(self, name: str) -> None:
        """Remove a registered class."""
        if name not in self._classes:
            raise UnknownInsightClassError(name, sorted(self._classes))
        del self._classes[name]

    def get(self, name: str) -> InsightClass:
        """Look up a class by name."""
        if name not in self._classes:
            raise UnknownInsightClassError(name, sorted(self._classes))
        return self._classes[name]

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[InsightClass]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def names(self) -> list[str]:
        """All registered class names, in registration order."""
        return list(self._classes)

    def describe(self) -> list[dict[str, object]]:
        """Metadata for every registered class (the engine's catalogue)."""
        return [insight_class.describe() for insight_class in self._classes.values()]


def default_registry() -> InsightRegistry:
    """The twelve insight classes shipped with this reproduction.

    Six from the paper's detailed list (dispersion, skew, heavy tails,
    outliers, heterogeneous frequencies, linear relationship), four from its
    "additional insights" sentence (multimodality, nonlinear monotonic
    relationship, general statistical dependence, segmentation), plus
    normality (needed by the section 4.1 usage scenario, which reports
    normal / left-skewed distribution shapes) and missing values (section
    2.1 notes that insights may reveal data problems needing further
    cleaning).
    """
    # Imported here to avoid a circular import at module load time.
    from repro.core.classes import (
        DependenceInsight,
        DispersionInsight,
        HeavyTailsInsight,
        HeterogeneousFrequenciesInsight,
        LinearRelationshipInsight,
        MissingValuesInsight,
        MonotonicRelationshipInsight,
        MultimodalityInsight,
        NormalityInsight,
        OutlierInsight,
        SegmentationInsight,
        SkewInsight,
    )

    registry = InsightRegistry()
    for insight_class in (
        LinearRelationshipInsight(),
        OutlierInsight(),
        HeavyTailsInsight(),
        DispersionInsight(),
        SkewInsight(),
        HeterogeneousFrequenciesInsight(),
        MonotonicRelationshipInsight(),
        MultimodalityInsight(),
        DependenceInsight(),
        SegmentationInsight(),
        NormalityInsight(),
        MissingValuesInsight(),
    ):
        registry.register(insight_class)
    return registry
