"""Insight queries.

"A basic insight query returns the visualizations for the highest-ranked
feature tuples according to the insight metric selected" (paper section
2.1).  Queries may additionally:

* fix one or more attributes (e.g. rank only pairs of the form (x̄, y) —
  "searching for the attributes most correlated with x̄");
* constrain the metric value to a range (e.g. correlations in [0.5, 0.8]
  "to filter out trivially very high correlations");
* exclude attributes, limit the number of candidates considered, and choose
  exact vs approximate (sketch-backed) evaluation.

:class:`InsightQuery` is a declarative description of such a query; the
ranking engine (:mod:`repro.core.ranking`) executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import QueryError
from repro.core.insight import MODE_APPROXIMATE, MODE_EXACT


@dataclass(frozen=True)
class MetricRange:
    """A closed interval constraint on the insight metric value."""

    minimum: float = float("-inf")
    maximum: float = float("inf")

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise QueryError(
                f"metric range is empty: [{self.minimum}, {self.maximum}]"
            )

    def contains(self, value: float) -> bool:
        return self.minimum <= value <= self.maximum

    def as_dict(self) -> dict[str, float]:
        return {"min": self.minimum, "max": self.maximum}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricRange":
        """Exact inverse of :meth:`as_dict` (missing/None bounds = unbounded)."""
        minimum = payload.get("min")
        maximum = payload.get("max")
        return cls(
            minimum=float("-inf") if minimum is None else float(minimum),
            maximum=float("inf") if maximum is None else float(maximum),
        )


@dataclass(frozen=True)
class InsightQuery:
    """A declarative query over one insight class.

    Parameters
    ----------
    insight_class:
        Name of the insight class to query (must exist in the registry).
    top_k:
        Number of insights to return (the carousel length).
    fixed_attributes:
        Attributes that every returned tuple must contain.  Fixing ``x̄``
        turns "rank all (x, y) pairs" into "rank pairs of the form (x̄, y)".
    excluded_attributes:
        Attributes that no returned tuple may contain.
    metric_range:
        Constraint on the metric value (e.g. correlations in [0.5, 0.8]).
    mode:
        ``"approximate"`` (sketch-backed, default) or ``"exact"``.
    max_candidates:
        Upper bound on how many candidate tuples are scored; None = all.
        Large 3-attribute classes use this to stay interactive.
    required_tags:
        Metadata constraint (the paper's future-work item in section 2.1:
        "queries will also allow inclusion of constraints involving metadata
        about attributes, e.g., to search for attributes that represent
        currency or dates").  When non-empty, every attribute in a returned
        tuple must carry at least one of these tags in its
        :class:`~repro.data.schema.Field` metadata.
    """

    insight_class: str
    top_k: int = 5
    fixed_attributes: tuple[str, ...] = ()
    excluded_attributes: tuple[str, ...] = ()
    metric_range: MetricRange = field(default_factory=MetricRange)
    mode: str = MODE_APPROXIMATE
    max_candidates: int | None = None
    required_tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.insight_class:
            raise QueryError("insight_class must be a non-empty string")
        if self.top_k < 1:
            raise QueryError("top_k must be >= 1")
        if self.mode not in (MODE_APPROXIMATE, MODE_EXACT):
            raise QueryError(
                f"mode must be {MODE_APPROXIMATE!r} or {MODE_EXACT!r}, got {self.mode!r}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise QueryError("max_candidates must be >= 1 when given")
        overlap = set(self.fixed_attributes) & set(self.excluded_attributes)
        if overlap:
            raise QueryError(
                f"attributes cannot be both fixed and excluded: {sorted(overlap)}"
            )

    # -- convenience builders -----------------------------------------------------
    def with_fixed(self, *attributes: str) -> "InsightQuery":
        """A copy with additional fixed attributes."""
        return replace(
            self, fixed_attributes=tuple(dict.fromkeys(self.fixed_attributes + attributes))
        )

    def with_excluded(self, *attributes: str) -> "InsightQuery":
        """A copy with additional excluded attributes."""
        return replace(
            self,
            excluded_attributes=tuple(
                dict.fromkeys(self.excluded_attributes + attributes)
            ),
        )

    def with_metric_range(self, minimum: float = float("-inf"),
                          maximum: float = float("inf")) -> "InsightQuery":
        """A copy with a metric-range filter."""
        return replace(self, metric_range=MetricRange(minimum, maximum))

    def with_top_k(self, top_k: int) -> "InsightQuery":
        return replace(self, top_k=top_k)

    def with_required_tags(self, *tags: str) -> "InsightQuery":
        """A copy that only admits attributes carrying one of ``tags``."""
        return replace(
            self, required_tags=tuple(dict.fromkeys(self.required_tags + tags))
        )

    def exact(self) -> "InsightQuery":
        """A copy forced to exact evaluation."""
        return replace(self, mode=MODE_EXACT)

    def approximate(self) -> "InsightQuery":
        """A copy using sketch-backed evaluation."""
        return replace(self, mode=MODE_APPROXIMATE)

    # -- filters used by the ranking engine -------------------------------------------
    def admits_attributes(self, attributes: Sequence[str]) -> bool:
        """Does a candidate tuple satisfy the fixed/excluded constraints?"""
        attribute_set = set(attributes)
        if any(fixed not in attribute_set for fixed in self.fixed_attributes):
            return False
        if attribute_set & set(self.excluded_attributes):
            return False
        return True

    def admits_score(self, score: float) -> bool:
        """Does a metric value satisfy the range constraint?"""
        return self.metric_range.contains(score)

    def admits_tags(self, attribute_tags: Mapping[str, Sequence[str]],
                    attributes: Sequence[str]) -> bool:
        """Does a candidate tuple satisfy the metadata-tag constraint?

        ``attribute_tags`` maps attribute name -> tags from its schema field.
        Attributes explicitly fixed by the query are exempt (fixing an
        untagged attribute and asking for tagged partners is the natural way
        to phrase "which currency attributes correlate with x").
        """
        if not self.required_tags:
            return True
        required = set(self.required_tags)
        for attribute in attributes:
            if attribute in self.fixed_attributes:
                continue
            tags = set(attribute_tags.get(attribute, ()))
            if not tags & required:
                return False
        return True

    def as_dict(self) -> dict[str, Any]:
        return {
            "insight_class": self.insight_class,
            "top_k": self.top_k,
            "fixed_attributes": list(self.fixed_attributes),
            "excluded_attributes": list(self.excluded_attributes),
            "metric_range": self.metric_range.as_dict(),
            "mode": self.mode,
            "max_candidates": self.max_candidates,
            "required_tags": list(self.required_tags),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InsightQuery":
        """Exact inverse of :meth:`as_dict`.

        Accepts any mapping with the keys :meth:`as_dict` produces; optional
        keys may be omitted and fall back to the dataclass defaults, so the
        method also deserialises hand-written or truncated payloads.
        """
        max_candidates = payload.get("max_candidates")
        return cls(
            insight_class=str(payload["insight_class"]),
            top_k=int(payload.get("top_k", 5)),
            fixed_attributes=tuple(payload.get("fixed_attributes", ())),
            excluded_attributes=tuple(payload.get("excluded_attributes", ())),
            metric_range=MetricRange.from_dict(payload.get("metric_range", {}) or {}),
            mode=str(payload.get("mode", MODE_APPROXIMATE)),
            max_candidates=None if max_candidates is None else int(max_candidates),
            required_tags=tuple(payload.get("required_tags", ())),
        )


def query(insight_class: str, **kwargs) -> InsightQuery:
    """Shorthand constructor: ``query("linear_relationship", top_k=3)``."""
    metric_min = kwargs.pop("metric_min", None)
    metric_max = kwargs.pop("metric_max", None)
    if metric_min is not None or metric_max is not None:
        kwargs["metric_range"] = MetricRange(
            minimum=metric_min if metric_min is not None else float("-inf"),
            maximum=metric_max if metric_max is not None else float("inf"),
        )
    fixed = kwargs.pop("fixed", None)
    if fixed is not None:
        kwargs["fixed_attributes"] = tuple(fixed) if not isinstance(fixed, str) else (fixed,)
    excluded = kwargs.pop("excluded", None)
    if excluded is not None:
        kwargs["excluded_attributes"] = (
            tuple(excluded) if not isinstance(excluded, str) else (excluded,)
        )
    tags = kwargs.pop("tags", None)
    if tags is not None:
        kwargs["required_tags"] = tuple(tags) if not isinstance(tags, str) else (tags,)
    return InsightQuery(insight_class=insight_class, **kwargs)
