"""Exploration sessions.

Section 4.1 describes the interaction loop: the analyst eyeballs the
carousels, clicks an insight to bring it *into focus*, Foresight updates its
recommendations to the neighborhood of the focused insight(s), the analyst
keeps exploring, and finally "saves the current Foresight state to revisit
later and to share with her colleagues".

:class:`ExplorationSession` models that loop on top of the engine:

* ``carousels()`` — current recommendations for every insight class, biased
  towards the focus set when one exists;
* ``focus(insight)`` / ``unfocus(insight)`` — manage the focus set;
* a history log of every action;
* ``save()`` / ``restore()`` — session state round-tripped through the
  :class:`~repro.service.dto.SessionState` DTO.  Restoring carries the
  original event log forward verbatim (no re-logging, no fresh
  timestamps), so save → restore → save is byte-identical and sessions
  can be re-shared losslessly.  Sessions are workspace-addressable: the
  saved state embeds the dataset name, and
  :meth:`repro.service.workspace.Workspace.restore_session` resolves the
  engine from it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import InsightError, ProtocolError
from repro.core.engine import Carousel, Foresight
from repro.core.insight import Insight
from repro.core.query import InsightQuery
from repro.core.ranking import RankingResult


@dataclass
class SessionState:
    """Persistent form of an exploration session (save/restore payload).

    This is the session's DTO (re-exported by :mod:`repro.service.dto`):
    ``focused_insights`` and ``history`` are stored as the plain dicts the
    session produces (``Insight.as_dict`` / ``SessionEvent.as_dict``), so
    a save → restore → save cycle is byte-identical: nothing is re-logged
    or re-stamped on the way through.
    """

    name: str
    dataset: str
    focused_insights: list[dict[str, Any]] = field(default_factory=list)
    history: list[dict[str, Any]] = field(default_factory=list)

    def focused(self) -> list[Insight]:
        """The focused insights as :class:`Insight` objects."""
        return [Insight.from_dict(payload) for payload in self.focused_insights]

    # -- wire format -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "focused_insights": [dict(p) for p in self.focused_insights],
            "history": [dict(p) for p in self.history],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionState":
        return cls(
            name=str(payload.get("name", "session")),
            dataset=str(payload.get("dataset", "")),
            focused_insights=[dict(p) for p in payload.get("focused_insights", [])],
            history=[dict(p) for p in payload.get("history", [])],
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=float)

    @classmethod
    def from_json(cls, text: str) -> "SessionState":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProtocolError(f"session state is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("session state JSON must be an object")
        return cls.from_dict(payload)


@dataclass
class SessionEvent:
    """One entry in the session history."""

    action: str
    timestamp: float
    payload: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"action": self.action, "timestamp": self.timestamp,
                "payload": dict(self.payload)}


class ExplorationSession:
    """Stateful exploration of a dataset through the Foresight engine."""

    def __init__(self, engine: Foresight, name: str = "session",
                 dataset: str | None = None,
                 clock: Callable[[], float] | None = None):
        self._engine = engine
        self._name = name
        self._dataset = dataset or engine.table.name
        self._focus: list[Insight] = []
        self._history: list[SessionEvent] = []
        # Event timestamps come from an injectable clock so the core
        # stays replayable: two sessions driven with the same clock and
        # the same actions produce byte-identical histories.  The
        # default is wall time, read through the injection point.
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        self._log("session_started", dataset=self._dataset,
                  shape=list(engine.table.shape))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Foresight:
        return self._engine

    @property
    def name(self) -> str:
        return self._name

    @property
    def dataset(self) -> str:
        """Name of the dataset this session explores (workspace address)."""
        return self._dataset

    @property
    def focused_insights(self) -> list[Insight]:
        return list(self._focus)

    @property
    def history(self) -> list[SessionEvent]:
        return list(self._history)

    # ------------------------------------------------------------------
    # Focus management (the "click on an insight" interaction)
    # ------------------------------------------------------------------
    def focus(self, insight: Insight) -> None:
        """Bring an insight into focus; recommendations will update around it."""
        if any(existing.key == insight.key for existing in self._focus):
            return
        self._focus.append(insight)
        self._log("focus", insight=insight.as_dict())

    def unfocus(self, insight: Insight) -> None:
        """Remove an insight from the focus set."""
        before = len(self._focus)
        self._focus = [i for i in self._focus if i.key != insight.key]
        if len(self._focus) != before:
            self._log("unfocus", insight=insight.as_dict())

    def clear_focus(self) -> None:
        """Drop all focused insights (back to open-ended exploration)."""
        if self._focus:
            self._log("clear_focus", n_cleared=len(self._focus))
        self._focus = []

    # ------------------------------------------------------------------
    # Recommendations
    # ------------------------------------------------------------------
    def carousels(
        self, top_k: int | None = None, insight_classes: Sequence[str] | None = None
    ) -> list[Carousel]:
        """Current recommendations for every insight class.

        With no focus this is the engine's open-ended first stage (strongest
        insights of every class).  With focused insights, each carousel is
        re-computed in the neighborhood of the focus set (second stage).
        """
        names = (
            list(insight_classes)
            if insight_classes
            else self._engine.registry.names()
        )
        top_k = top_k or self._engine.config.default_top_k
        carousels = []
        if self._focus:
            for name in names:
                start = time.perf_counter()
                result = self._engine.recommend_near(self._focus, name, top_k=top_k)
                elapsed = time.perf_counter() - start
                carousels.append(self._carousel(name, result, elapsed))
        else:
            # Open-ended first stage: one pipeline execution for all classes,
            # sharing candidate enumeration across same-domain classes.
            carousels = self._engine.carousels(top_k=top_k, insight_classes=names)
        self._log(
            "carousels",
            top_k=top_k,
            classes=names,
            focused=[list(i.attributes) for i in self._focus],
        )
        return carousels

    def query(self, insight_class: str | InsightQuery, **kwargs) -> RankingResult:
        """Run an explicit insight query (third stage / power use)."""
        result = self._engine.query(insight_class, **kwargs)
        self._log("query", query=result.query.as_dict(),
                  n_results=len(result.insights))
        return result

    def recommend_near_focus(self, insight_class: str, top_k: int | None = None) -> RankingResult:
        """Neighborhood recommendations for one class around the focus set."""
        if not self._focus:
            raise InsightError("no focused insights; call focus() first")
        result = self._engine.recommend_near(self._focus, insight_class, top_k=top_k)
        self._log("recommend_near_focus", insight_class=insight_class,
                  n_results=len(result.insights))
        return result

    # ------------------------------------------------------------------
    # Persistence ("saves the current Foresight state to revisit later")
    # ------------------------------------------------------------------
    def save_state(self) -> SessionState:
        """The session state as a :class:`~repro.service.dto.SessionState`."""
        return SessionState(
            name=self._name,
            dataset=self.dataset,
            focused_insights=[insight.as_dict() for insight in self._focus],
            history=[event.as_dict() for event in self._history],
        )

    def save(self) -> dict[str, Any]:
        """The session state as a JSON-serialisable dictionary."""
        return self.save_state().to_dict()

    def save_json(self, indent: int = 2) -> str:
        return self.save_state().to_json(indent=indent)

    @classmethod
    def restore(
        cls, engine: Foresight, state: SessionState | dict[str, Any],
        clock: Callable[[], float] | None = None,
    ) -> "ExplorationSession":
        """Rebuild a session from saved state.

        The original event log is carried forward verbatim — nothing is
        re-logged and no timestamps are refreshed — so
        ``restore(save()).save()`` reproduces the saved state exactly.
        Events logged *after* the restore use ``clock`` (wall time by
        default), mirroring the constructor's injection point.
        """
        if not isinstance(state, SessionState):
            state = SessionState.from_dict(state)
        session = cls.__new__(cls)
        session._engine = engine
        session._clock = clock if clock is not None else time.time
        session._name = state.name
        session._dataset = state.dataset or engine.table.name
        session._focus = state.focused()
        session._history = [
            SessionEvent(
                action=str(payload.get("action", "")),
                timestamp=float(payload.get("timestamp", 0.0)),
                payload=dict(payload.get("payload", {})),
            )
            for payload in state.history
        ]
        return session

    @classmethod
    def restore_json(cls, engine: Foresight, text: str) -> "ExplorationSession":
        return cls.restore(engine, SessionState.from_json(text))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _carousel(self, name: str, result: RankingResult, elapsed: float) -> Carousel:
        insight_class = self._engine.registry.get(name)
        return Carousel(
            insight_class=name,
            label=insight_class.label or name,
            insights=result.insights,
            result=result,
            elapsed_seconds=elapsed,
        )

    def _log(self, action: str, **payload: Any) -> None:
        self._history.append(
            SessionEvent(action=action, timestamp=self._clock(), payload=payload)
        )
