"""Exploration sessions.

Section 4.1 describes the interaction loop: the analyst eyeballs the
carousels, clicks an insight to bring it *into focus*, Foresight updates its
recommendations to the neighborhood of the focused insight(s), the analyst
keeps exploring, and finally "saves the current Foresight state to revisit
later and to share with her colleagues".

:class:`ExplorationSession` models that loop on top of the engine:

* ``carousels()`` — current recommendations for every insight class, biased
  towards the focus set when one exists;
* ``focus(insight)`` / ``unfocus(insight)`` — manage the focus set;
* a history log of every action;
* ``save()`` / ``restore()`` — JSON-serialisable session state.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import InsightError
from repro.core.engine import Carousel, Foresight
from repro.core.insight import Insight
from repro.core.query import InsightQuery
from repro.core.ranking import RankingResult


@dataclass
class SessionEvent:
    """One entry in the session history."""

    action: str
    timestamp: float
    payload: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"action": self.action, "timestamp": self.timestamp,
                "payload": dict(self.payload)}


class ExplorationSession:
    """Stateful exploration of a dataset through the Foresight engine."""

    def __init__(self, engine: Foresight, name: str = "session"):
        self._engine = engine
        self._name = name
        self._focus: list[Insight] = []
        self._history: list[SessionEvent] = []
        self._log("session_started", dataset=engine.table.name,
                  shape=list(engine.table.shape))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Foresight:
        return self._engine

    @property
    def name(self) -> str:
        return self._name

    @property
    def focused_insights(self) -> list[Insight]:
        return list(self._focus)

    @property
    def history(self) -> list[SessionEvent]:
        return list(self._history)

    # ------------------------------------------------------------------
    # Focus management (the "click on an insight" interaction)
    # ------------------------------------------------------------------
    def focus(self, insight: Insight) -> None:
        """Bring an insight into focus; recommendations will update around it."""
        if any(existing.key == insight.key for existing in self._focus):
            return
        self._focus.append(insight)
        self._log("focus", insight=insight.as_dict())

    def unfocus(self, insight: Insight) -> None:
        """Remove an insight from the focus set."""
        before = len(self._focus)
        self._focus = [i for i in self._focus if i.key != insight.key]
        if len(self._focus) != before:
            self._log("unfocus", insight=insight.as_dict())

    def clear_focus(self) -> None:
        """Drop all focused insights (back to open-ended exploration)."""
        if self._focus:
            self._log("clear_focus", n_cleared=len(self._focus))
        self._focus = []

    # ------------------------------------------------------------------
    # Recommendations
    # ------------------------------------------------------------------
    def carousels(
        self, top_k: int | None = None, insight_classes: Sequence[str] | None = None
    ) -> list[Carousel]:
        """Current recommendations for every insight class.

        With no focus this is the engine's open-ended first stage (strongest
        insights of every class).  With focused insights, each carousel is
        re-computed in the neighborhood of the focus set (second stage).
        """
        names = (
            list(insight_classes)
            if insight_classes
            else self._engine.registry.names()
        )
        top_k = top_k or self._engine.config.default_top_k
        carousels = []
        for name in names:
            start = time.perf_counter()
            if self._focus:
                result = self._engine.recommend_near(self._focus, name, top_k=top_k)
            else:
                result = self._engine.query(name, top_k=top_k)
            elapsed = time.perf_counter() - start
            insight_class = self._engine.registry.get(name)
            carousels.append(
                Carousel(
                    insight_class=name,
                    label=insight_class.label or name,
                    insights=result.insights,
                    result=result,
                    elapsed_seconds=elapsed,
                )
            )
        self._log(
            "carousels",
            top_k=top_k,
            classes=names,
            focused=[list(i.attributes) for i in self._focus],
        )
        return carousels

    def query(self, insight_class: str | InsightQuery, **kwargs) -> RankingResult:
        """Run an explicit insight query (third stage / power use)."""
        result = self._engine.query(insight_class, **kwargs)
        self._log("query", query=result.query.as_dict(),
                  n_results=len(result.insights))
        return result

    def recommend_near_focus(self, insight_class: str, top_k: int | None = None) -> RankingResult:
        """Neighborhood recommendations for one class around the focus set."""
        if not self._focus:
            raise InsightError("no focused insights; call focus() first")
        result = self._engine.recommend_near(self._focus, insight_class, top_k=top_k)
        self._log("recommend_near_focus", insight_class=insight_class,
                  n_results=len(result.insights))
        return result

    # ------------------------------------------------------------------
    # Persistence ("saves the current Foresight state to revisit later")
    # ------------------------------------------------------------------
    def save(self) -> dict[str, Any]:
        """The session state as a JSON-serialisable dictionary."""
        return {
            "name": self._name,
            "dataset": self._engine.table.name,
            "focused_insights": [insight.as_dict() for insight in self._focus],
            "history": [event.as_dict() for event in self._history],
        }

    def save_json(self, indent: int = 2) -> str:
        return json.dumps(self.save(), indent=indent, default=float)

    @classmethod
    def restore(cls, engine: Foresight, state: dict[str, Any]) -> "ExplorationSession":
        """Rebuild a session from a saved state dictionary."""
        session = cls(engine, name=str(state.get("name", "session")))
        for payload in state.get("focused_insights", []):
            session.focus(
                Insight(
                    insight_class=payload["insight_class"],
                    attributes=tuple(payload["attributes"]),
                    score=float(payload["score"]),
                    metric_name=payload.get("metric", ""),
                    summary=payload.get("summary", ""),
                    details=dict(payload.get("details", {})),
                )
            )
        session._log("session_restored", n_focused=len(session._focus))
        return session

    @classmethod
    def restore_json(cls, engine: Foresight, text: str) -> "ExplorationSession":
        return cls.restore(engine, json.loads(text))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _log(self, action: str, **payload: Any) -> None:
        self._history.append(
            SessionEvent(action=action, timestamp=time.time(), payload=payload)
        )
