"""Insight similarity and "nearby" insight recommendation.

"Two insights can be considered similar if their metric scores are similar
or if the sets of fixed attributes are similar" (paper section 2.1).  When
the user focuses an insight, "Foresight updates its recommendations by
choosing a subset of insights within the neighborhood of the focused
insight" (section 4.1).  This module implements both pieces:

* :func:`insight_similarity` — a [0, 1] similarity combining attribute
  overlap (Jaccard) and metric-score proximity;
* :class:`NeighborhoodRecommender` — given one or more focus insights,
  build queries biased towards their attributes and re-rank results by a
  blend of insight strength and similarity to the focus set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.insight import EvaluationContext, Insight
from repro.core.query import InsightQuery
from repro.core.ranking import RankingEngine, RankingResult


def attribute_jaccard(a: Insight, b: Insight) -> float:
    """Jaccard similarity of the attribute sets of two insights."""
    set_a, set_b = set(a.attributes), set(b.attributes)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def score_proximity(a: Insight, b: Insight, scale: float = 1.0) -> float:
    """Proximity of two metric scores, in [0, 1].

    Scores from different insight classes are not directly comparable, so
    proximity across classes is attenuated by 0.5.
    """
    difference = abs(a.score - b.score)
    proximity = max(0.0, 1.0 - difference / max(scale, 1e-12))
    if a.insight_class != b.insight_class:
        proximity *= 0.5
    return proximity


def insight_similarity(a: Insight, b: Insight, attribute_weight: float = 0.6,
                       score_scale: float = 1.0) -> float:
    """Combined similarity: attribute overlap + metric proximity."""
    if not 0.0 <= attribute_weight <= 1.0:
        raise ValueError("attribute_weight must be in [0, 1]")
    return (
        attribute_weight * attribute_jaccard(a, b)
        + (1.0 - attribute_weight) * score_proximity(a, b, scale=score_scale)
    )


@dataclass
class NeighborhoodConfig:
    """Tuning knobs for nearby-insight recommendation."""

    attribute_weight: float = 0.6
    score_scale: float = 1.0
    #: Blend between the insight's own strength and its similarity to the
    #: focus set when re-ranking (1.0 = strength only).
    strength_weight: float = 0.5
    #: How many candidates to pull from each class before re-ranking.
    candidate_pool: int = 20


class NeighborhoodRecommender:
    """Recommends insights near a set of focused insights."""

    def __init__(self, engine: RankingEngine, config: NeighborhoodConfig | None = None):
        self._engine = engine
        self._config = config or NeighborhoodConfig()

    def similarity_to_focus(self, insight: Insight, focus: list[Insight]) -> float:
        """Maximum similarity between an insight and any focused insight."""
        if not focus:
            return 0.0
        return max(
            insight_similarity(
                insight,
                focused,
                attribute_weight=self._config.attribute_weight,
                score_scale=self._config.score_scale,
            )
            for focused in focus
        )

    def nearby(
        self,
        focus: list[Insight],
        insight_class: str,
        context: EvaluationContext,
        top_k: int = 5,
        base_query: InsightQuery | None = None,
    ) -> RankingResult:
        """Insights from ``insight_class`` in the neighborhood of ``focus``.

        The query is biased towards the focus attributes: if any focus
        attribute appears in the class's candidate tuples, candidates
        containing at least one focus attribute are preferred; the pool is
        then re-ranked by a blend of strength and similarity.
        """
        config = self._config
        query = base_query or InsightQuery(insight_class=insight_class)
        pool_query = query.with_top_k(max(config.candidate_pool, top_k))
        focus_attributes = {
            attribute for insight in focus for attribute in insight.attributes
        }

        # First try restricting to candidates that mention a focus attribute.
        pooled: list[Insight] = []
        seen: set[tuple[str, tuple[str, ...]]] = set()
        n_candidates = n_scored = 0
        if focus_attributes:
            for attribute in sorted(focus_attributes):
                fixed_query = pool_query.with_fixed(attribute)
                result = self._engine.rank(fixed_query, context)
                n_candidates += result.n_candidates
                n_scored += result.n_scored
                for insight in result.insights:
                    if insight.key not in seen:
                        seen.add(insight.key)
                        pooled.append(insight)
        # Always top up with the unconstrained pool so the neighborhood is
        # never empty just because no candidate touches the focus attributes.
        unconstrained = self._engine.rank(pool_query, context)
        n_candidates += unconstrained.n_candidates
        n_scored += unconstrained.n_scored
        for insight in unconstrained.insights:
            if insight.key not in seen:
                seen.add(insight.key)
                pooled.append(insight)

        strength_weight = config.strength_weight
        max_score = max((abs(i.score) for i in pooled), default=1.0) or 1.0

        def blended(insight: Insight) -> float:
            normalised_strength = abs(insight.score) / max_score
            similarity = self.similarity_to_focus(insight, focus)
            return strength_weight * normalised_strength + (1 - strength_weight) * similarity

        # Exclude the focused insights themselves from the recommendations.
        focus_keys = {insight.key for insight in focus}
        pooled = [insight for insight in pooled if insight.key not in focus_keys]
        pooled.sort(key=lambda insight: (-blended(insight), insight.attributes))
        return RankingResult(
            query=query.with_top_k(top_k),
            insights=pooled[:top_k],
            n_candidates=n_candidates,
            n_scored=n_scored,
            n_admitted=len(pooled),
            details={"focus": [list(insight.attributes) for insight in focus]},
        )
