"""Insight similarity and "nearby" insight recommendation.

"Two insights can be considered similar if their metric scores are similar
or if the sets of fixed attributes are similar" (paper section 2.1).  When
the user focuses an insight, "Foresight updates its recommendations by
choosing a subset of insights within the neighborhood of the focused
insight" (section 4.1).  This module implements both pieces:

* :func:`insight_similarity` — a [0, 1] similarity combining attribute
  overlap (Jaccard) and metric-score proximity;
* :class:`NeighborhoodRecommender` — given one or more focus insights,
  build queries biased towards their attributes and re-rank results by a
  blend of insight strength and similarity to the focus set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import shard
from repro.core.insight import EvaluationContext, Insight
from repro.core.pipeline import PipelineStats
from repro.core.query import InsightQuery
from repro.core.ranking import RankingEngine, RankingResult


def attribute_jaccard(a: Insight, b: Insight) -> float:
    """Jaccard similarity of the attribute sets of two insights."""
    set_a, set_b = set(a.attributes), set(b.attributes)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def score_proximity(a: Insight, b: Insight, scale: float = 1.0) -> float:
    """Proximity of two metric scores, in [0, 1].

    Scores from different insight classes are not directly comparable, so
    proximity across classes is attenuated by 0.5.
    """
    difference = abs(a.score - b.score)
    proximity = max(0.0, 1.0 - difference / max(scale, 1e-12))
    if a.insight_class != b.insight_class:
        proximity *= 0.5
    return proximity


def insight_similarity(a: Insight, b: Insight, attribute_weight: float = 0.6,
                       score_scale: float = 1.0) -> float:
    """Combined similarity: attribute overlap + metric proximity."""
    if not 0.0 <= attribute_weight <= 1.0:
        raise ValueError("attribute_weight must be in [0, 1]")
    return (
        attribute_weight * attribute_jaccard(a, b)
        + (1.0 - attribute_weight) * score_proximity(a, b, scale=score_scale)
    )


@dataclass
class NeighborhoodConfig:
    """Tuning knobs for nearby-insight recommendation."""

    attribute_weight: float = 0.6
    score_scale: float = 1.0
    #: Blend between the insight's own strength and its similarity to the
    #: focus set when re-ranking (1.0 = strength only).
    strength_weight: float = 0.5
    #: How many candidates to pull from each class before re-ranking.
    candidate_pool: int = 20


class NeighborhoodRecommender:
    """Recommends insights near a set of focused insights."""

    def __init__(self, engine: RankingEngine, config: NeighborhoodConfig | None = None):
        self._engine = engine
        self._config = config or NeighborhoodConfig()

    def similarity_to_focus(self, insight: Insight, focus: list[Insight]) -> float:
        """Maximum similarity between an insight and any focused insight."""
        if not focus:
            return 0.0
        return max(
            insight_similarity(
                insight,
                focused,
                attribute_weight=self._config.attribute_weight,
                score_scale=self._config.score_scale,
            )
            for focused in focus
        )

    def nearby(
        self,
        focus: list[Insight],
        insight_class: str,
        context: EvaluationContext,
        top_k: int = 5,
        base_query: InsightQuery | None = None,
    ) -> RankingResult:
        """Insights from ``insight_class`` in the neighborhood of ``focus``.

        The query is biased towards the focus attributes: if any focus
        attribute appears in the class's candidate tuples, candidates
        containing at least one focus attribute are preferred; the pool is
        then re-ranked by a blend of strength and similarity.

        All pool queries (one per focus attribute plus the unconstrained
        top-up) execute as **one** pipeline run, so they share a single
        candidate enumeration and their score stages shard across the
        engine's executor exactly like the main serving path; the blended
        re-ranking itself is likewise sharded over the executor's
        workers.  Both fan-outs are order-preserving and per-item pure,
        so parallel and serial recommendations are identical.
        """
        config = self._config
        query = base_query or InsightQuery(insight_class=insight_class)
        pool_query = query.with_top_k(max(config.candidate_pool, top_k))
        focus_attributes = {
            attribute for insight in focus for attribute in insight.attributes
        }

        # One pipeline execution for the whole pool: the per-attribute
        # queries first (preferring candidates that mention a focus
        # attribute), the unconstrained top-up last so the neighborhood
        # is never empty just because no candidate touches the focus.
        queries = [
            pool_query.with_fixed(attribute)
            for attribute in sorted(focus_attributes)
        ]
        queries.append(pool_query)
        stats = PipelineStats()
        results = self._engine.pipeline.execute(queries, context, stats=stats)

        pooled: list[Insight] = []
        seen: set[tuple[str, tuple[str, ...]]] = set()
        n_candidates = n_scored = 0
        for result in results:
            n_candidates += result.n_candidates
            n_scored += result.n_scored
            for insight in result.insights:
                if insight.key not in seen:
                    seen.add(insight.key)
                    pooled.append(insight)

        # Normalisation uses the full pool (focus included) so excluding
        # the focus insights below never rescales the survivors.
        strength_weight = config.strength_weight
        max_score = max((abs(i.score) for i in pooled), default=1.0) or 1.0

        # Exclude the focused insights themselves from the recommendations.
        focus_keys = {insight.key for insight in focus}
        pooled = [insight for insight in pooled if insight.key not in focus_keys]

        def blended(insight: Insight) -> float:
            normalised_strength = abs(insight.score) / max_score
            similarity = self.similarity_to_focus(insight, focus)
            return strength_weight * normalised_strength + (1 - strength_weight) * similarity

        blended_scores = self._blend_scores(pooled, blended)
        order = sorted(
            range(len(pooled)),
            key=lambda i: (-blended_scores[i], pooled[i].attributes),
        )
        pooled = [pooled[i] for i in order]
        return RankingResult(
            query=query.with_top_k(top_k),
            insights=pooled[:top_k],
            n_candidates=n_candidates,
            n_scored=n_scored,
            n_admitted=len(pooled),
            details={
                "focus": [list(insight.attributes) for insight in focus],
                "pipeline": stats.as_dict(),
            },
        )

    def _blend_scores(self, pooled, blended) -> list[float]:
        """Blended scores for the pool, sharded across the engine executor.

        Chunk boundaries are a pure function of the pool size and each
        blended score depends only on its own insight, so concatenating
        the chunk results is identical to one serial pass.
        """
        executor = self._engine.pipeline.executor
        if executor.max_workers > 1 and len(pooled) > 1:
            chunks = shard(
                pooled, executor.max_workers, executor.config.min_chunk_size
            )
            if len(chunks) > 1:
                parts = executor.map(
                    lambda chunk: [blended(insight) for insight in chunk],
                    chunks,
                )
                return [score for part in parts for score in part]
        return [blended(insight) for insight in pooled]
