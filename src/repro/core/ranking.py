"""The ranking engine: execute an insight query against a table.

Execution is delegated to the staged query pipeline
(:class:`repro.core.pipeline.QueryPipeline`), which runs the classic
four steps — enumerate the candidate attribute tuples, apply the query's
attribute constraints, score the survivors (batched / sketch-backed where
the class supports it), filter by metric range and return the top-k as
:class:`~repro.core.insight.Insight` objects sorted by descending metric
value (ties broken by attribute names for determinism).

:class:`RankingEngine` remains the single-query execution façade used by
the engine and the neighborhood recommender; multi-query callers (the
carousel view, the serving layer) go through the pipeline directly so that
classes enumerating the same candidate domain share one enumeration.

:class:`RankingResult` is defined in :mod:`repro.core.pipeline` and
re-exported here for backwards compatibility.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.executor import Executor
from repro.core.insight import EvaluationContext
from repro.core.pipeline import PipelineStats, QueryPipeline, RankingResult
from repro.core.query import InsightQuery
from repro.core.registry import InsightRegistry

__all__ = ["RankingEngine", "RankingResult"]


class RankingEngine:
    """Executes insight queries using a registry of insight classes."""

    def __init__(self, registry: InsightRegistry, executor: Executor | None = None):
        self._registry = registry
        self._pipeline = QueryPipeline(registry, executor=executor)

    @property
    def registry(self) -> InsightRegistry:
        return self._registry

    @property
    def pipeline(self) -> QueryPipeline:
        """The staged pipeline this engine executes queries on."""
        return self._pipeline

    def rank(self, query: InsightQuery, context: EvaluationContext) -> RankingResult:
        """Run a query and return the ranked insights."""
        return self._pipeline.execute([query], context)[0]

    def rank_all(
        self,
        queries: Sequence[InsightQuery],
        context: EvaluationContext,
        stats: PipelineStats | None = None,
    ) -> dict[str, RankingResult]:
        """Run several queries (one carousel per insight class).

        Classes that enumerate the same candidate domain share a single
        enumeration pass (see
        :meth:`~repro.core.insight.InsightClass.candidate_domain`).
        """
        results = self._pipeline.execute(queries, context, stats=stats)
        return {
            query.insight_class: result for query, result in zip(queries, results)
        }
