"""The ranking engine: execute an insight query against a table.

Given an :class:`~repro.core.query.InsightQuery`, the engine

1. enumerates the candidate attribute tuples of the insight class,
2. applies the query's attribute constraints (fixed / excluded),
3. scores the surviving candidates (batched where the class supports it,
   sketch-backed in approximate mode),
4. applies the metric-range filter, and
5. returns the top-k candidates as :class:`~repro.core.insight.Insight`
   objects sorted by descending metric value (ties broken by attribute
   names for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.insight import EvaluationContext, Insight, InsightClass, ScoredCandidate
from repro.core.query import InsightQuery
from repro.core.registry import InsightRegistry


@dataclass
class RankingResult:
    """Ranked insights plus bookkeeping about the search."""

    query: InsightQuery
    insights: list[Insight]
    n_candidates: int = 0
    n_scored: int = 0
    n_admitted: int = 0
    truncated: bool = False
    details: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)

    def top(self) -> Insight | None:
        return self.insights[0] if self.insights else None

    def attribute_sets(self) -> list[tuple[str, ...]]:
        return [insight.attributes for insight in self.insights]


class RankingEngine:
    """Executes insight queries using a registry of insight classes."""

    def __init__(self, registry: InsightRegistry):
        self._registry = registry

    @property
    def registry(self) -> InsightRegistry:
        return self._registry

    def rank(self, query: InsightQuery, context: EvaluationContext) -> RankingResult:
        """Run a query and return the ranked insights."""
        insight_class = self._registry.get(query.insight_class)
        context = self._apply_mode(query, context)

        candidates, truncated, n_candidates = self._admissible_candidates(
            insight_class, query, context
        )
        scored = insight_class.score_all(candidates, context) if candidates else []
        admitted = [
            candidate for candidate in scored if query.admits_score(candidate.score)
        ]
        ranked = self._sort(admitted)[: query.top_k]
        insights = [insight_class.to_insight(candidate) for candidate in ranked]
        return RankingResult(
            query=query,
            insights=insights,
            n_candidates=n_candidates,
            n_scored=len(scored),
            n_admitted=len(admitted),
            truncated=truncated,
            details={"mode": context.mode},
        )

    def rank_all(
        self, queries: Sequence[InsightQuery], context: EvaluationContext
    ) -> dict[str, RankingResult]:
        """Run several queries (one carousel per insight class)."""
        return {q.insight_class: self.rank(q, context) for q in queries}

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _apply_mode(query: InsightQuery, context: EvaluationContext) -> EvaluationContext:
        if query.mode == context.mode:
            return context
        return EvaluationContext(table=context.table, store=context.store, mode=query.mode)

    @staticmethod
    def _sort(candidates: list[ScoredCandidate]) -> list[ScoredCandidate]:
        return sorted(candidates, key=lambda c: (-c.score, c.attributes))

    @staticmethod
    def _admissible_candidates(
        insight_class: InsightClass, query: InsightQuery, context: EvaluationContext
    ) -> tuple[list[tuple[str, ...]], bool, int]:
        admissible: list[tuple[str, ...]] = []
        truncated = False
        n_candidates = 0
        attribute_tags = (
            {field.name: field.tags for field in context.table.schema}
            if query.required_tags
            else {}
        )
        for attributes in insight_class.candidates(context.table):
            n_candidates += 1
            if not query.admits_attributes(attributes):
                continue
            if not query.admits_tags(attribute_tags, attributes):
                continue
            admissible.append(attributes)
            if (
                query.max_candidates is not None
                and len(admissible) >= query.max_candidates
            ):
                truncated = True
                break
        return admissible, truncated, n_candidates
