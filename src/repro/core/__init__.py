"""Core contribution: the insight framework, ranking engine and exploration API."""

from repro.core.executor import (
    Executor,
    ExecutorConfig,
    ParallelExecutor,
    SerialExecutor,
    create_executor,
)
from repro.core.insight import (
    EvaluationContext,
    Insight,
    InsightClass,
    MODE_APPROXIMATE,
    MODE_EXACT,
    ScoredCandidate,
)
from repro.core.registry import InsightRegistry, default_registry
from repro.core.query import InsightQuery, MetricRange, query
from repro.core.ranking import RankingEngine, RankingResult
from repro.core.neighborhood import (
    NeighborhoodConfig,
    NeighborhoodRecommender,
    attribute_jaccard,
    insight_similarity,
    score_proximity,
)
from repro.core.engine import Carousel, EngineConfig, Foresight
from repro.core.session import ExplorationSession, SessionEvent
from repro.core.classes import (
    DependenceInsight,
    DispersionInsight,
    HeavyTailsInsight,
    HeterogeneousFrequenciesInsight,
    LinearRelationshipInsight,
    MissingValuesInsight,
    MonotonicRelationshipInsight,
    MultimodalityInsight,
    NormalityInsight,
    OutlierInsight,
    SegmentationInsight,
    SkewInsight,
)

__all__ = [
    "Carousel",
    "DependenceInsight",
    "DispersionInsight",
    "EngineConfig",
    "EvaluationContext",
    "Executor",
    "ExecutorConfig",
    "ExplorationSession",
    "Foresight",
    "ParallelExecutor",
    "SerialExecutor",
    "create_executor",
    "HeavyTailsInsight",
    "HeterogeneousFrequenciesInsight",
    "Insight",
    "InsightClass",
    "InsightQuery",
    "InsightRegistry",
    "LinearRelationshipInsight",
    "MODE_APPROXIMATE",
    "MODE_EXACT",
    "MetricRange",
    "MissingValuesInsight",
    "MonotonicRelationshipInsight",
    "MultimodalityInsight",
    "NeighborhoodConfig",
    "NeighborhoodRecommender",
    "NormalityInsight",
    "OutlierInsight",
    "RankingEngine",
    "RankingResult",
    "ScoredCandidate",
    "SegmentationInsight",
    "SessionEvent",
    "SkewInsight",
    "attribute_jaccard",
    "default_registry",
    "insight_similarity",
    "query",
    "score_proximity",
]
