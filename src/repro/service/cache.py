"""LRU result cache for the serving layer.

Responses are cached under ``(dataset, dataset_version, canonical_query)``
keys.  Including the dataset version in the key makes stale entries
unreachable the moment a dataset is reloaded, and
:meth:`ResultCache.invalidate` additionally evicts them eagerly so the
memory is reclaimed rather than waiting for LRU pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

#: Cache keys are (dataset_name, dataset_version, canonical_query_json).
CacheKey = tuple[str, int, str]


class ResultCache:
    """A small LRU cache with per-dataset invalidation and hit statistics."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Any | None:
        """Return the cached value (refreshing its recency), or None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def invalidate(self, dataset: str | None = None) -> int:
        """Evict entries for one dataset (or everything); returns the count."""
        if dataset is None:
            evicted = len(self._entries)
            self._entries.clear()
            return evicted
        stale = [key for key in self._entries if key[0] == dataset]
        for key in stale:
            del self._entries[key]
        return len(stale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> list[CacheKey]:
        """Keys from least to most recently used."""
        return list(self._entries)

    def info(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "capacity": self._capacity,
            "size": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }
