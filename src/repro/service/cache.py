"""LRU result cache for the serving layer.

Responses are cached under ``(dataset, dataset_version, dataset_seq,
canonical_query)`` keys.  Including the dataset version and ingest
sequence number in the key makes stale entries unreachable the moment a
dataset is reloaded — or appended to — and
:meth:`ResultCache.invalidate` additionally evicts them eagerly so the
memory is reclaimed rather than waiting for LRU pressure.

The cache is thread-safe: every operation — including the LRU recency
update inside :meth:`ResultCache.get` — runs under one internal lock, so
concurrent serving threads can hit it freely and the hit/miss/eviction
counters stay exact.  Evictions are counted whether they come from LRU
pressure or from explicit invalidation; ``info()["invalidations"]``
additionally breaks out the explicit ones.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Hashable


def _value_bytes(obj: Any) -> int:
    """Size a cached response document (plain JSON-shaped, acyclic).

    Computed once per ``put`` — the miss path already paid for the full
    pipeline, so the walk is noise there — and remembered per entry so
    evictions subtract exactly what inserts added.  This keeps the
    cache's row in the memory ledger incremental: no serving-path walk.
    """
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += _value_bytes(key) + _value_bytes(value)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += _value_bytes(item)
    return total

#: Cache keys are (dataset_name, dataset_version, dataset_seq,
#: canonical_query_json).  The sequence number is the append journal
#: position: every accepted append bumps it, making entries computed
#: before the append unreachable exactly like a version bump does.
CacheKey = tuple[str, int, int, str]


class ResultCache:
    """A small LRU cache with per-dataset invalidation and hit statistics."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._sizes: dict[CacheKey, int] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Any | None:
        """Return the cached value (refreshing its recency), or None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        n_bytes = _value_bytes(value)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._bytes -= self._sizes.get(key, 0)
            self._entries[key] = value
            self._sizes[key] = n_bytes
            self._bytes += n_bytes
            while len(self._entries) > self._capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._bytes -= self._sizes.pop(evicted_key, 0)
                self._evictions += 1

    def invalidate(self, dataset: str | None = None) -> int:
        """Evict entries for one dataset (or everything); returns the count.

        Explicit removals count toward ``info()["evictions"]`` exactly
        like LRU-pressure evictions (and toward ``"invalidations"``
        specifically), so the counters account for every entry that ever
        left the cache.
        """
        with self._lock:
            if dataset is None:
                evicted = len(self._entries)
                self._entries.clear()
                self._sizes.clear()
                self._bytes = 0
            else:
                stale = [key for key in self._entries if key[0] == dataset]
                for key in stale:
                    del self._entries[key]
                    self._bytes -= self._sizes.pop(key, 0)
                evicted = len(stale)
            self._evictions += evicted
            self._invalidations += evicted
            return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[CacheKey]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._entries)

    def info(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy.

        ``evictions`` counts every removal (LRU pressure **and** explicit
        invalidation); ``invalidations`` is the explicit subset.
        ``bytes`` is the incrementally maintained resident-value estimate
        feeding the memory ledger.  Taken under the cache lock, so the
        snapshot is internally consistent even under concurrent traffic.
        """
        with self._lock:
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "bytes": self._bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }
