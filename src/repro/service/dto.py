"""Versioned, JSON-serialisable request/response DTOs for the serving layer.

The wire protocol is deliberately tiny and transport-agnostic: a client
builds an :class:`InsightRequest` (dataset name, one or many insight
classes, shared query constraints and an optional pagination cursor),
ships it as canonical JSON, and gets back an :class:`InsightResponse`
(one carousel per requested class, timing, cache/mode provenance and a
next-page cursor).  :class:`SessionState` is the analogous DTO for
:class:`~repro.core.session.ExplorationSession` persistence.

Canonicality matters: ``to_json`` always emits sorted keys with compact
separators, so equal DTOs serialise to byte-identical strings.  The
serving layer relies on this to derive cache keys, and clients can rely
on it for request de-duplication.  Unbounded metric ranges are expressed
with ``null`` rather than IEEE infinities, keeping payloads strict JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ProtocolError
from repro.core.insight import Insight
from repro.core.query import InsightQuery, MetricRange

#: Version of the request/response wire protocol.
PROTOCOL_VERSION = 1

_MODES = ("approximate", "exact")


def _canonical_json(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _check_protocol(payload: Mapping[str, Any], what: str) -> None:
    version = payload.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported {what} protocol version {version!r}; "
            f"this library speaks version {PROTOCOL_VERSION}"
        )


@dataclass(frozen=True)
class InsightRequest:
    """One serving-layer query: dataset + insight classes + constraints.

    Parameters
    ----------
    dataset:
        Name of a dataset registered in the workspace.
    insight_classes:
        One class name or a sequence of them; a multi-class request is the
        carousel view, and classes enumerating the same candidate domain
        share a single enumeration pass.
    top_k:
        Page size per class.
    fixed / excluded / tags / metric_min / metric_max / max_candidates:
        The :class:`~repro.core.query.InsightQuery` constraints, applied
        uniformly to every requested class.  ``metric_min``/``metric_max``
        of None mean unbounded.
    mode:
        ``"approximate"``, ``"exact"`` or None (engine default).
    cursor:
        Opaque pagination token from a previous response, or None for the
        first page.
    debug:
        Ask the workspace to echo this request's resource-cost snapshot
        in the response provenance (``provenance["cost"]``).  Diagnostic
        only: the flag is deliberately **excluded** from the wire dict
        and the canonical key, so a debug request shares cache entries —
        and cached payload bytes — with its non-debug twin.
    max_lag_seq:
        Staleness bound for replica routing, in journal records.  None
        (the default) demands the primary — read-your-writes
        consistency; an integer N marks the request servable by any
        read replica at most N records behind the primary (0 = only a
        fully caught-up replica).  Routing metadata, not query
        semantics: like ``debug`` it is excluded from the wire dict and
        the canonical key, so routed requests share cache entries with
        their primary-served twins.
    """

    dataset: str
    insight_classes: tuple[str, ...]
    top_k: int = 5
    fixed: tuple[str, ...] = ()
    excluded: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    metric_min: float | None = None
    metric_max: float | None = None
    mode: str | None = None
    max_candidates: int | None = None
    cursor: str | None = None
    debug: bool = False
    max_lag_seq: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.insight_classes, str):
            object.__setattr__(self, "insight_classes", (self.insight_classes,))
        else:
            object.__setattr__(self, "insight_classes", tuple(self.insight_classes))
        for attr in ("fixed", "excluded", "tags"):
            value = getattr(self, attr)
            if isinstance(value, str):
                object.__setattr__(self, attr, (value,))
            else:
                object.__setattr__(self, attr, tuple(value))
        if not self.dataset:
            raise ProtocolError("request dataset must be a non-empty string")
        if not self.insight_classes:
            raise ProtocolError("request must name at least one insight class")
        if self.top_k < 1:
            raise ProtocolError(f"request top_k must be >= 1, got {self.top_k}")
        if self.mode is not None and self.mode not in _MODES:
            raise ProtocolError(
                f"request mode must be one of {_MODES} or None, got {self.mode!r}"
            )
        if self.max_lag_seq is not None and self.max_lag_seq < 0:
            raise ProtocolError(
                f"request max_lag_seq must be >= 0, got {self.max_lag_seq}"
            )

    # -- conversion to executable queries ---------------------------------------
    def metric_range(self) -> MetricRange:
        return MetricRange.from_dict({"min": self.metric_min, "max": self.metric_max})

    def to_queries(self, default_mode: str = "approximate",
                   top_k: int | None = None) -> list[InsightQuery]:
        """One :class:`InsightQuery` per requested class.

        ``top_k`` overrides the page size (the workspace passes
        ``offset + page_size`` so later pages rank deep enough to slice).
        """
        effective_top_k = self.top_k if top_k is None else top_k
        return [
            InsightQuery(
                insight_class=name,
                top_k=effective_top_k,
                fixed_attributes=self.fixed,
                excluded_attributes=self.excluded,
                metric_range=self.metric_range(),
                mode=self.mode or default_mode,
                max_candidates=self.max_candidates,
                required_tags=self.tags,
            )
            for name in self.insight_classes
        ]

    def next_page(self, cursor: str | None) -> "InsightRequest":
        """A copy of this request pointing at the given cursor."""
        return replace(self, cursor=cursor)

    # -- wire format -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        # ``debug`` and ``max_lag_seq`` are intentionally absent: the
        # canonical key (and hence the result-cache key) must not fork
        # on a diagnostics toggle or a routing hint.  Transports that
        # need to ship them add the keys themselves (see
        # ReproClient.insights) and ``from_dict`` reads them back.
        return {
            "protocol": PROTOCOL_VERSION,
            "dataset": self.dataset,
            "insight_classes": list(self.insight_classes),
            "top_k": self.top_k,
            "fixed": list(self.fixed),
            "excluded": list(self.excluded),
            "tags": list(self.tags),
            "metric_min": self.metric_min,
            "metric_max": self.metric_max,
            "mode": self.mode,
            "max_candidates": self.max_candidates,
            "cursor": self.cursor,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InsightRequest":
        _check_protocol(payload, "request")
        try:
            dataset = payload["dataset"]
            insight_classes = payload["insight_classes"]
        except KeyError as exc:
            raise ProtocolError(f"request is missing required key {exc}") from exc
        max_candidates = payload.get("max_candidates")
        max_lag_seq = payload.get("max_lag_seq")
        return cls(
            dataset=str(dataset),
            insight_classes=insight_classes,
            top_k=int(payload.get("top_k", 5)),
            fixed=tuple(payload.get("fixed", ())),
            excluded=tuple(payload.get("excluded", ())),
            tags=tuple(payload.get("tags", ())),
            metric_min=payload.get("metric_min"),
            metric_max=payload.get("metric_max"),
            mode=payload.get("mode"),
            max_candidates=None if max_candidates is None else int(max_candidates),
            cursor=payload.get("cursor"),
            debug=bool(payload.get("debug", False)),
            max_lag_seq=None if max_lag_seq is None else int(max_lag_seq),
        )

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "InsightRequest":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("request JSON must be an object")
        return cls.from_dict(payload)

    def canonical_key(self) -> str:
        """Canonical form of the request, used in result-cache keys."""
        return self.to_json()


@dataclass
class InsightResponse:
    """One serving-layer answer: carousels + timing + provenance + cursor.

    ``carousels`` holds one entry per requested class (in request order),
    each a plain dict::

        {"insight_class": str, "label": str, "insights": [<insight dict>],
         "n_admitted": int, "truncated": bool}

    ``provenance`` records how the answer was produced: ``cache`` ("hit" /
    "miss"), evaluation ``mode``, the pipeline's enumeration and scoring
    counters (``enumerations``, ``shared_queries``, ``score_evaluations``,
    ``shared_score_queries``) and the executor width (``max_workers``).
    Responses served through :meth:`~repro.service.workspace.Workspace.handle_many`
    additionally carry a ``batch`` entry (``{"index", "size",
    "max_workers"}``) identifying the request's position in its batch;
    batch position is stamped per response and never enters the result
    cache, so a cached answer is byte-identical however it was batched.
    """

    dataset: str
    dataset_version: int
    carousels: list[dict[str, Any]] = field(default_factory=list)
    timing: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)
    next_cursor: str | None = None
    #: Ingestion sequence number of the dataset snapshot this answer was
    #: computed from: ``(dataset_version, dataset_seq)`` names the exact
    #: base load + journalled appends the engine saw.  0 means "no
    #: appends in this generation" (and is the default for payloads from
    #: pre-ingest servers).
    dataset_seq: int = 0

    # -- convenience accessors -----------------------------------------------------
    def classes(self) -> list[str]:
        return [carousel["insight_class"] for carousel in self.carousels]

    def insights_for(self, insight_class: str) -> list[Insight]:
        """The returned insights of one class, as :class:`Insight` objects."""
        for carousel in self.carousels:
            if carousel["insight_class"] == insight_class:
                return [Insight.from_dict(p) for p in carousel["insights"]]
        raise ProtocolError(
            f"response has no carousel for {insight_class!r}; "
            f"classes: {self.classes()}"
        )

    def top(self, insight_class: str | None = None) -> Insight | None:
        """Strongest insight of the given (default: first) carousel."""
        name = insight_class or (self.carousels[0]["insight_class"]
                                 if self.carousels else None)
        if name is None:
            return None
        insights = self.insights_for(name)
        return insights[0] if insights else None

    def __len__(self) -> int:
        return sum(len(carousel["insights"]) for carousel in self.carousels)

    # -- wire format -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "dataset": self.dataset,
            "dataset_version": self.dataset_version,
            "dataset_seq": self.dataset_seq,
            "carousels": [dict(carousel) for carousel in self.carousels],
            "timing": dict(self.timing),
            "provenance": dict(self.provenance),
            "next_cursor": self.next_cursor,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InsightResponse":
        _check_protocol(payload, "response")
        try:
            dataset = payload["dataset"]
            dataset_version = payload["dataset_version"]
        except KeyError as exc:
            raise ProtocolError(f"response is missing required key {exc}") from exc
        return cls(
            dataset=str(dataset),
            dataset_version=int(dataset_version),
            dataset_seq=int(payload.get("dataset_seq", 0)),
            carousels=[dict(carousel) for carousel in payload.get("carousels", [])],
            timing=dict(payload.get("timing", {})),
            provenance=dict(payload.get("provenance", {})),
            next_cursor=payload.get("next_cursor"),
        )

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "InsightResponse":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProtocolError(f"response is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("response JSON must be an object")
        return cls.from_dict(payload)


# -- error envelope ---------------------------------------------------------
def error_envelope(code: str, message: str, **details: Any) -> dict[str, Any]:
    """The structured DTO error payload every transport returns on failure.

    Shape: ``{"protocol": 1, "status": "error", "code": ..., "message":
    ...}`` plus optional detail keys (e.g. ``available`` dataset names,
    ``retry_after`` seconds).  Success payloads never carry a ``status``
    key, so ``is_error_envelope`` distinguishes the two without a schema.
    """
    payload: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "status": "error",
        "code": code,
        "message": message,
    }
    for key, value in details.items():
        if value is not None:
            payload[key] = value
    return payload


def error_envelope_json(code: str, message: str, **details: Any) -> str:
    """Canonical-JSON form of :func:`error_envelope`."""
    return _canonical_json(error_envelope(code, message, **details))


def is_error_envelope(payload: Any) -> bool:
    """True when a decoded payload is a structured error envelope."""
    return isinstance(payload, Mapping) and payload.get("status") == "error"


# SessionState is defined next to the session it persists (the DTO must
# not pull the serving layer into the core import graph); re-exported
# here as part of the public DTO namespace.
from repro.core.session import SessionState  # noqa: E402

__all__ = [
    "InsightRequest",
    "InsightResponse",
    "PROTOCOL_VERSION",
    "SessionState",
    "error_envelope",
    "error_envelope_json",
    "is_error_envelope",
]
