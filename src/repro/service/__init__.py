"""The serving layer: Workspace, DTO protocol, result cache, query pipeline.

This package separates the *serving interface* from the *execution
engine*: any transport (HTTP handler, RPC server, CLI, notebook) can park
a :class:`Workspace` behind it and exchange versioned, JSON-serialisable
:class:`InsightRequest` / :class:`InsightResponse` DTOs, while the staged
:class:`QueryPipeline` (plan → enumerate → score → rank) executes the
queries with shared candidate enumeration and the :class:`ResultCache`
absorbs repeated traffic.
"""

from repro.service.cache import ResultCache
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.dto import (
    PROTOCOL_VERSION,
    InsightRequest,
    InsightResponse,
    SessionState,
)
from repro.service.pipeline import (
    Enumeration,
    ExecutionPlan,
    PipelineStats,
    PlannedQuery,
    QueryPipeline,
    RankingResult,
    ScoredBatch,
)
from repro.service.workspace import Workspace

__all__ = [
    "Enumeration",
    "ExecutionPlan",
    "InsightRequest",
    "InsightResponse",
    "PROTOCOL_VERSION",
    "PipelineStats",
    "PlannedQuery",
    "QueryPipeline",
    "RankingResult",
    "ResultCache",
    "ScoredBatch",
    "SessionState",
    "Workspace",
    "decode_cursor",
    "encode_cursor",
]
