"""The serving layer: Workspace, DTO protocol, result cache, query pipeline.

This package separates the *serving interface* from the *execution
engine*: any transport (HTTP handler, RPC server, CLI, notebook) can park
a :class:`Workspace` behind it and exchange versioned, JSON-serialisable
:class:`InsightRequest` / :class:`InsightResponse` DTOs, while the staged
:class:`QueryPipeline` (plan → enumerate → score → rank) executes the
queries with shared candidate enumeration and the :class:`ResultCache`
absorbs repeated traffic.

The whole path is safe under concurrent callers: the cache is locked,
engine builds are single-flight, and :meth:`Workspace.handle_many` fans a
batch of requests out over a thread pool configured by
:class:`ExecutorConfig` (re-exported from :mod:`repro.core.executor`).
"""

from repro.core.executor import Executor, ExecutorConfig
from repro.service.cache import ResultCache
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.dto import (
    PROTOCOL_VERSION,
    InsightRequest,
    InsightResponse,
    SessionState,
    error_envelope,
    error_envelope_json,
    is_error_envelope,
)
from repro.service.pipeline import (
    Enumeration,
    ExecutionPlan,
    PipelineStats,
    PlannedQuery,
    QueryPipeline,
    RankingResult,
    ScoredBatch,
)
from repro.ingest.maintenance import IngestConfig
from repro.service.replica import FeedSource, LocalFeedSource, ReplicaWorkspace
from repro.service.workspace import AppendResult, Workspace

__all__ = [
    "AppendResult",
    "Enumeration",
    "FeedSource",
    "IngestConfig",
    "ExecutionPlan",
    "Executor",
    "ExecutorConfig",
    "InsightRequest",
    "InsightResponse",
    "LocalFeedSource",
    "PROTOCOL_VERSION",
    "PipelineStats",
    "PlannedQuery",
    "QueryPipeline",
    "RankingResult",
    "ReplicaWorkspace",
    "ResultCache",
    "ScoredBatch",
    "SessionState",
    "Workspace",
    "decode_cursor",
    "encode_cursor",
    "error_envelope",
    "error_envelope_json",
    "is_error_envelope",
]
